//! The typed abstract syntax tree of the query DSL.
//!
//! Every node that can fail resolution carries the [`Span`] of the text it
//! came from, so both parse errors and plan errors point at the offending
//! characters. Spans are **diagnostic only**: they deliberately compare
//! equal (`PartialEq` on [`Span`] is vacuous) so the parser round-trip
//! property — `parse(display(ast)) == ast` — holds structurally even
//! though re-rendered text has different offsets.
//!
//! [`Display`](std::fmt::Display) renders the canonical single-line form
//! of a query; the parser accepts exactly that form back (plus redundant
//! whitespace, parentheses, explicit `asc`, and the `==`/`<>` comparison
//! spellings, all of which normalize away).

use ma_vector::DataType;

use crate::expr::{ArithKind, CmpKind};

/// A half-open byte range `start..end` into the query text.
#[derive(Debug, Clone, Copy, Default, Eq)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// The union of two spans (smallest span covering both).
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Spans are diagnostics, not semantics: two ASTs that differ only in
/// source offsets are the same query, which is exactly what the
/// round-trip property needs.
impl PartialEq for Span {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The name as written.
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

impl Ident {
    /// An identifier with a synthetic (empty) span, for programmatically
    /// built ASTs (the fuzzer's generator).
    pub fn synth(name: impl Into<String>) -> Ident {
        Ident {
            name: name.into(),
            span: Span::default(),
        }
    }
}

impl std::fmt::Display for Ident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A column reference with an optional `as` alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ColSpec {
    /// Source column name.
    pub name: Ident,
    /// Output alias (`None` keeps the source name).
    pub alias: Option<Ident>,
}

impl ColSpec {
    /// `name` (no alias) with a synthetic span.
    pub fn synth(name: impl Into<String>) -> ColSpec {
        ColSpec {
            name: Ident::synth(name),
            alias: None,
        }
    }

    /// `name as alias` with synthetic spans.
    pub fn synth_as(name: impl Into<String>, alias: impl Into<String>) -> ColSpec {
        ColSpec {
            name: Ident::synth(name),
            alias: Some(Ident::synth(alias)),
        }
    }

    /// The builder-facing `"source as alias"` spec string.
    pub(crate) fn spec(&self) -> String {
        match &self.alias {
            Some(a) => format!("{} as {}", self.name.name, a.name),
            None => self.name.name.clone(),
        }
    }

    /// The output column name (alias if present).
    pub fn out_name(&self) -> &str {
        match &self.alias {
            Some(a) => &a.name,
            None => &self.name.name,
        }
    }
}

impl std::fmt::Display for ColSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} as {}", self.name, a),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A literal value as written (type assignment happens at resolution,
/// where integer literals coerce to the column type they meet).
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal (any width; coerced at resolution).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lit::Int(v) => write!(f, "{v}"),
            // `{:?}` prints the shortest digits that round-trip, and
            // always marks the value as a float ("1.0", "1e-5").
            Lit::Float(v) => write!(f, "{v:?}"),
            Lit::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        _ => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
        }
    }
}

/// A scalar expression (the `select` surface).
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Column reference.
    Col(Ident),
    /// Literal (valid only as the right operand of arithmetic).
    Lit(Lit, Span),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: ArithKind,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
    /// Widening cast, written `i32(e)` / `i64(e)` / `f64(e)`.
    Cast {
        /// Target type.
        to: DataType,
        /// Operand.
        inner: Box<ExprAst>,
        /// Span of the whole cast call.
        span: Span,
    },
    /// `substr(col, start, len)`.
    Substr {
        /// String column.
        col: Ident,
        /// 0-based byte offset.
        start: u64,
        /// Byte length.
        len: u64,
        /// Span of the whole call.
        span: Span,
    },
}

impl ExprAst {
    /// The span of the expression's text.
    pub fn span(&self) -> Span {
        match self {
            ExprAst::Col(id) => id.span,
            ExprAst::Lit(_, s) => *s,
            ExprAst::Binary { lhs, rhs, .. } => lhs.span().to(rhs.span()),
            ExprAst::Cast { span, .. } | ExprAst::Substr { span, .. } => *span,
        }
    }

    fn prec(&self) -> u8 {
        match self {
            ExprAst::Binary {
                op: ArithKind::Add | ArithKind::Sub,
                ..
            } => 1,
            ExprAst::Binary {
                op: ArithKind::Mul | ArithKind::Div,
                ..
            } => 2,
            _ => 3,
        }
    }
}

fn arith_sym(op: ArithKind) -> &'static str {
    match op {
        ArithKind::Add => "+",
        ArithKind::Sub => "-",
        ArithKind::Mul => "*",
        ArithKind::Div => "/",
    }
}

impl std::fmt::Display for ExprAst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprAst::Col(id) => write!(f, "{id}"),
            ExprAst::Lit(l, _) => write!(f, "{l}"),
            ExprAst::Binary { op, lhs, rhs } => {
                // Minimal parens: the tree is left-leaning after parsing,
                // so the left child may share this precedence but the
                // right child needs parens at equal precedence.
                let p = self.prec();
                if lhs.prec() < p {
                    write!(f, "({lhs})")?;
                } else {
                    write!(f, "{lhs}")?;
                }
                write!(f, " {} ", arith_sym(*op))?;
                if rhs.prec() <= p {
                    write!(f, "({rhs})")
                } else {
                    write!(f, "{rhs}")
                }
            }
            ExprAst::Cast { to, inner, .. } => {
                let name = match to {
                    DataType::I16 => "i16",
                    DataType::I32 => "i32",
                    DataType::I64 => "i64",
                    DataType::F64 => "f64",
                    DataType::Str => "str",
                };
                write!(f, "{name}({inner})")
            }
            ExprAst::Substr {
                col, start, len, ..
            } => {
                write!(f, "substr({col}, {start}, {len})")
            }
        }
    }
}

/// The right-hand side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CmpRhsAst {
    /// Literal, coerced to the column's type at resolution.
    Lit(Lit, Span),
    /// Another column (same type required).
    Col(Ident),
}

impl std::fmt::Display for CmpRhsAst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmpRhsAst::Lit(l, _) => write!(f, "{l}"),
            CmpRhsAst::Col(id) => write!(f, "{id}"),
        }
    }
}

/// A filter predicate (the `where` surface).
///
/// `And`/`Or` hold **two or more** branches and never nest the same
/// variant directly (the parser flattens chains); the canonical rendering
/// relies on both invariants.
#[derive(Debug, Clone, PartialEq)]
pub enum PredAst {
    /// `col op rhs`.
    Cmp {
        /// Column.
        col: Ident,
        /// Comparison operator.
        op: CmpKind,
        /// Literal or column.
        rhs: CmpRhsAst,
    },
    /// `col like "pat"` / `col not like "pat"` (`%` and `_` wildcards).
    Like {
        /// String column.
        col: Ident,
        /// Pattern.
        pattern: String,
        /// `not like`.
        negated: bool,
    },
    /// `col in ("a", "b", ...)`.
    InStr {
        /// String column.
        col: Ident,
        /// Accepted values.
        values: Vec<String>,
    },
    /// Conjunction.
    And(Vec<PredAst>),
    /// Disjunction.
    Or(Vec<PredAst>),
}

impl PredAst {
    /// The span of the predicate's text (anchored at column idents).
    pub fn span(&self) -> Span {
        match self {
            PredAst::Cmp { col, rhs, .. } => match rhs {
                CmpRhsAst::Lit(_, s) => col.span.to(*s),
                CmpRhsAst::Col(c) => col.span.to(c.span),
            },
            PredAst::Like { col, .. } | PredAst::InStr { col, .. } => col.span,
            PredAst::And(ps) | PredAst::Or(ps) => ps
                .iter()
                .map(PredAst::span)
                .reduce(Span::to)
                .unwrap_or_default(),
        }
    }
}

fn cmp_sym(op: CmpKind) -> &'static str {
    match op {
        CmpKind::Lt => "<",
        CmpKind::Le => "<=",
        CmpKind::Gt => ">",
        CmpKind::Ge => ">=",
        CmpKind::Eq => "=",
        CmpKind::Ne => "!=",
    }
}

impl std::fmt::Display for PredAst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredAst::Cmp { col, op, rhs } => write!(f, "{col} {} {rhs}", cmp_sym(*op)),
            PredAst::Like {
                col,
                pattern,
                negated,
            } => {
                let not = if *negated { "not " } else { "" };
                write!(f, "{col} {not}like {}", Lit::Str(pattern.clone()))
            }
            PredAst::InStr { col, values } => {
                write!(f, "{col} in (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", Lit::Str(v.clone()))?;
                }
                f.write_str(")")
            }
            PredAst::And(ps) => {
                // `and` binds tighter than `or`: direct `or` children need
                // parens, atoms don't.
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" and ")?;
                    }
                    if matches!(p, PredAst::Or(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            PredAst::Or(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" or ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// One `name = expr` item of a `select` stage.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// Output column name.
    pub name: Ident,
    /// Defining expression.
    pub expr: ExprAst,
}

impl std::fmt::Display for SelectItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}", self.name, self.expr)
    }
}

/// An aggregate function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count`.
    Count,
    /// `sum(col)`.
    Sum,
    /// `min(col)`.
    Min,
    /// `max(col)`.
    Max,
}

/// One aggregate of an `agg` stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    /// Function.
    pub func: AggFunc,
    /// Input column (`None` for `count`).
    pub col: Option<Ident>,
    /// Output alias (`None` uses the builder default, e.g. `sum_<col>`).
    pub alias: Option<Ident>,
}

impl std::fmt::Display for AggItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.func, &self.col) {
            (AggFunc::Count, _) => f.write_str("count")?,
            (AggFunc::Sum, Some(c)) => write!(f, "sum({c})")?,
            (AggFunc::Min, Some(c)) => write!(f, "min({c})")?,
            (AggFunc::Max, Some(c)) => write!(f, "max({c})")?,
            // Unreachable from the parser; render something parseable.
            (_, None) => f.write_str("count")?,
        }
        if let Some(a) = &self.alias {
            write!(f, " as {a}")?;
        }
        Ok(())
    }
}

/// A sort key with direction (`asc` is the default and not rendered).
#[derive(Debug, Clone, PartialEq)]
pub struct SortKeyAst {
    /// Column.
    pub col: Ident,
    /// Descending order.
    pub desc: bool,
}

impl std::fmt::Display for SortKeyAst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.col)?;
        if self.desc {
            f.write_str(" desc")?;
        }
        Ok(())
    }
}

/// Hash-join semantics selectable in the DSL (`left single` joins have
/// their own stage because they carry defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKindAst {
    /// Inner join.
    Inner,
    /// Semi join (filter to probe rows with a match).
    Semi,
    /// Anti join (filter to probe rows without a match).
    Anti,
}

impl std::fmt::Display for JoinKindAst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JoinKindAst::Inner => "inner",
            JoinKindAst::Semi => "semi",
            JoinKindAst::Anti => "anti",
        })
    }
}

/// One pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// `where <pred>`.
    Where(PredAst),
    /// `select name = expr, ...`.
    Select(Vec<SelectItem>),
    /// `keep [col, ...]` — reorder/drop/rename without computing.
    Keep(Vec<ColSpec>),
    /// `agg [aggs]` (stream) or `agg by [keys] [aggs]` (hash).
    Agg {
        /// Group keys (empty = single-group stream aggregate).
        keys: Vec<ColSpec>,
        /// Aggregates.
        aggs: Vec<AggItem>,
    },
    /// `join <kind> (<query>) on probe = build, ... payload [cols] bloom?`.
    Join {
        /// Join semantics.
        kind: JoinKindAst,
        /// Build-side query.
        query: Box<Query>,
        /// `(probe, build)` key pairs.
        on: Vec<(Ident, Ident)>,
        /// Build columns carried into the output (inner only).
        payload: Vec<ColSpec>,
        /// Bloom-filter probe acceleration.
        bloom: bool,
    },
    /// `join single (<query>) on ... payload [col default lit, ...]`.
    JoinSingle {
        /// Build-side query (unique keys required).
        query: Box<Query>,
        /// `(probe, build)` key pairs.
        on: Vec<(Ident, Ident)>,
        /// Payload columns with per-column defaults for unmatched rows.
        payload: Vec<(ColSpec, Lit)>,
    },
    /// `merge join (<query>) on right_key = left_key payload [cols]`.
    MergeJoin {
        /// Left (unique-key, materialized) query.
        query: Box<Query>,
        /// `(right, left)` key pair.
        on: (Ident, Ident),
        /// Left columns appended to the output.
        payload: Vec<ColSpec>,
    },
    /// `order by key dir, ...`.
    Order(Vec<SortKeyAst>),
    /// `top N by key dir, ...`.
    Top {
        /// Row limit.
        n: u64,
        /// Sort keys.
        keys: Vec<SortKeyAst>,
    },
}

fn write_collist<T: std::fmt::Display>(
    f: &mut std::fmt::Formatter<'_>,
    items: &[T],
) -> std::fmt::Result {
    f.write_str("[")?;
    for (i, c) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{c}")?;
    }
    f.write_str("]")
}

fn write_on(f: &mut std::fmt::Formatter<'_>, on: &[(Ident, Ident)]) -> std::fmt::Result {
    for (i, (p, b)) in on.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{p} = {b}")?;
    }
    Ok(())
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Where(p) => write!(f, "where {p}"),
            Stage::Select(items) => {
                f.write_str("select ")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{it}")?;
                }
                Ok(())
            }
            Stage::Keep(cols) => {
                f.write_str("keep ")?;
                write_collist(f, cols)
            }
            Stage::Agg { keys, aggs } => {
                f.write_str("agg ")?;
                if !keys.is_empty() {
                    f.write_str("by ")?;
                    write_collist(f, keys)?;
                    f.write_str(" ")?;
                }
                write_collist(f, aggs)
            }
            Stage::Join {
                kind,
                query,
                on,
                payload,
                bloom,
            } => {
                write!(f, "join {kind} ({query}) on ")?;
                write_on(f, on)?;
                if !payload.is_empty() {
                    f.write_str(" payload ")?;
                    write_collist(f, payload)?;
                }
                if *bloom {
                    f.write_str(" bloom")?;
                }
                Ok(())
            }
            Stage::JoinSingle { query, on, payload } => {
                write!(f, "join single ({query}) on ")?;
                write_on(f, on)?;
                f.write_str(" payload [")?;
                for (i, (c, d)) in payload.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{c} default {d}")?;
                }
                f.write_str("]")
            }
            Stage::MergeJoin { query, on, payload } => {
                write!(f, "merge join ({query}) on {} = {}", on.0, on.1)?;
                if !payload.is_empty() {
                    f.write_str(" payload ")?;
                    write_collist(f, payload)?;
                }
                Ok(())
            }
            Stage::Order(keys) => {
                f.write_str("order by ")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}")?;
                }
                Ok(())
            }
            Stage::Top { n, keys } => {
                write!(f, "top {n} by ")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k}")?;
                }
                Ok(())
            }
        }
    }
}

impl Stage {
    /// A coarse span for the stage (used when a plan error has no finer
    /// anchor): the span of the first identifier-ish token inside it.
    pub fn span(&self) -> Span {
        match self {
            Stage::Where(p) => p.span(),
            Stage::Select(items) => items.first().map(|i| i.name.span).unwrap_or_default(),
            Stage::Keep(cols) => cols.first().map(|c| c.name.span).unwrap_or_default(),
            Stage::Agg { keys, aggs } => keys
                .first()
                .map(|c| c.name.span)
                .or_else(|| aggs.first().and_then(|a| a.col.as_ref()).map(|c| c.span))
                .unwrap_or_default(),
            Stage::Join { on, .. } | Stage::JoinSingle { on, .. } => {
                on.first().map(|(p, _)| p.span).unwrap_or_default()
            }
            Stage::MergeJoin { on, .. } => on.0.span,
            Stage::Order(keys) | Stage::Top { keys, .. } => {
                keys.first().map(|k| k.col.span).unwrap_or_default()
            }
        }
    }
}

/// A whole query: a source scan plus a pipeline of stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Scanned table.
    pub table: Ident,
    /// Scanned columns (with optional aliases).
    pub cols: Vec<ColSpec>,
    /// Pipeline stages, applied in order.
    pub stages: Vec<Stage>,
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "from {} ", self.table)?;
        write_collist(f, &self.cols)?;
        for s in &self.stages {
            write!(f, " | {s}")?;
        }
        Ok(())
    }
}
