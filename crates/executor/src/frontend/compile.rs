//! AST → [`PlanBuilder`] compilation (name/type resolution).
//!
//! The compiler walks the parsed [`Query`] stage by stage, peeking at the
//! builder's schema between stages to:
//!
//! * coerce integer literals to the column type they meet (`l_shipdate <=
//!   19980902` compares an `i32` column against an `i32` value, with a
//!   range check — the builder itself requires exact [`Value`] types);
//! * pick the typed aggregate (`sum` over an `i64` column is `sum_i64`,
//!   over `f64` is `sum_f64`);
//! * attach a [`Span`] to every resolution failure, so a
//!   [`FrontendError::Plan`] points at the offending text just like a
//!   parse error does.
//!
//! Stats labels are generated automatically (`f0`, `p1`, `a2`, ... in
//! stage order, one shared counter across subqueries) so DSL text stays
//! label-free while every primitive-instantiating node still gets the
//! unique label the verifier and the stats registry demand.

use ma_vector::{DataType, Schema};

use super::ast::{
    AggFunc, AggItem, CmpRhsAst, ExprAst, JoinKindAst, Lit, PredAst, Query, SortKeyAst, Span, Stage,
};
use super::FrontendError;
use crate::expr::{CmpKind, Value};
use crate::ops::JoinKind;
use crate::plan::expr::resolve_col;
use crate::plan::{
    asc, col, count, desc, lit_f64, lit_i64, max_f64, max_i64, min_f64, min_i64, substr, sum_f64,
    sum_i64, Agg, Catalog, NamedExpr, NamedPred, PlanBuilder, PlanError, SortSpec,
};

/// Compiles a parsed query against `catalog` into a finished
/// [`crate::plan::LogicalPlan`] builder. Resolution failures carry the
/// span of the stage (or finer: the literal/column) that caused them.
pub fn compile(q: &Query, catalog: &dyn Catalog) -> Result<PlanBuilder, FrontendError> {
    let mut labels = 0usize;
    compile_query(q, catalog, &mut labels)
}

fn plan_err<T>(err: PlanError, span: Span) -> Result<T, FrontendError> {
    Err(FrontendError::Plan { err, span })
}

/// Surfaces a builder-recorded error with `span`, or passes the builder
/// through untouched.
fn check(pb: PlanBuilder, span: Span) -> Result<PlanBuilder, FrontendError> {
    if pb.peek_schema().is_some() {
        return Ok(pb);
    }
    match pb.build() {
        Err(err) => plan_err(err, span),
        Ok(_) => plan_err(
            PlanError::Invalid("builder lost its schema without an error".into()),
            span,
        ),
    }
}

fn schema_or(pb: &PlanBuilder) -> Schema {
    // `check` runs after every stage, so the schema is always present
    // here; an empty schema only feeds a later, better-spanned error.
    pb.peek_schema()
        .cloned()
        .unwrap_or_else(|| Schema::new(vec![]))
}

fn next_label(labels: &mut usize, prefix: &str) -> String {
    let l = format!("{prefix}{labels}");
    *labels += 1;
    l
}

fn compile_query(
    q: &Query,
    catalog: &dyn Catalog,
    labels: &mut usize,
) -> Result<PlanBuilder, FrontendError> {
    let specs: Vec<String> = q.cols.iter().map(|c| c.spec()).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let mut pb = check(
        PlanBuilder::scan(catalog, &q.table.name, &spec_refs),
        q.table.span,
    )?;
    for stage in &q.stages {
        pb = compile_stage(pb, stage, catalog, labels)?;
    }
    Ok(pb)
}

fn compile_stage(
    pb: PlanBuilder,
    stage: &Stage,
    catalog: &dyn Catalog,
    labels: &mut usize,
) -> Result<PlanBuilder, FrontendError> {
    let span = stage.span();
    let schema = schema_or(&pb);
    match stage {
        Stage::Where(p) => {
            let pred = compile_pred(p, &schema)?;
            let label = next_label(labels, "f");
            check(pb.filter(pred, &label), span)
        }
        Stage::Select(items) => {
            let mut out: Vec<(&str, NamedExpr)> = Vec::with_capacity(items.len());
            for it in items {
                out.push((&it.name.name, compile_expr(&it.expr, &schema)?));
            }
            let label = next_label(labels, "p");
            check(pb.project(out, &label), span)
        }
        Stage::Keep(cols) => {
            let specs: Vec<String> = cols.iter().map(|c| c.spec()).collect();
            let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
            check(pb.keep(&refs), span)
        }
        Stage::Agg { keys, aggs } => {
            let compiled: Vec<Agg> = aggs
                .iter()
                .map(|a| compile_agg(a, &schema))
                .collect::<Result<_, _>>()?;
            let label = next_label(labels, "a");
            if keys.is_empty() {
                check(pb.stream_agg(compiled, &label), span)
            } else {
                let specs: Vec<String> = keys.iter().map(|c| c.spec()).collect();
                let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
                check(pb.hash_agg(&refs, compiled, &label), span)
            }
        }
        Stage::Join {
            kind,
            query,
            on,
            payload,
            bloom,
        } => {
            let build = compile_query(query, catalog, labels)?;
            let pairs: Vec<(&str, &str)> = on
                .iter()
                .map(|(p, b)| (p.name.as_str(), b.name.as_str()))
                .collect();
            let specs: Vec<String> = payload.iter().map(|c| c.spec()).collect();
            let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
            let kind = match kind {
                JoinKindAst::Inner => JoinKind::Inner,
                JoinKindAst::Semi => JoinKind::Semi,
                JoinKindAst::Anti => JoinKind::Anti,
            };
            let label = next_label(labels, "j");
            check(
                pb.hash_join(build, &pairs, &refs, kind, *bloom, &label),
                span,
            )
        }
        Stage::JoinSingle { query, on, payload } => {
            let build = compile_query(query, catalog, labels)?;
            let build_schema = schema_or(&build);
            let pairs: Vec<(&str, &str)> = on
                .iter()
                .map(|(p, b)| (p.name.as_str(), b.name.as_str()))
                .collect();
            let mut specs: Vec<(String, Value)> = Vec::with_capacity(payload.len());
            for (c, d) in payload {
                let i = resolve_col(&build_schema, &c.name.name).map_err(|err| {
                    FrontendError::Plan {
                        err,
                        span: c.name.span,
                    }
                })?;
                let ty = build_schema.field(i).ty;
                let v = coerce_lit(d, ty, c.name.span, "left-single default")?;
                specs.push((c.spec(), v));
            }
            let refs: Vec<(&str, Value)> =
                specs.iter().map(|(s, v)| (s.as_str(), v.clone())).collect();
            let label = next_label(labels, "j");
            check(pb.left_single_join(build, &pairs, &refs, &label), span)
        }
        Stage::MergeJoin { query, on, payload } => {
            let left = compile_query(query, catalog, labels)?;
            let specs: Vec<String> = payload.iter().map(|c| c.spec()).collect();
            let refs: Vec<&str> = specs.iter().map(String::as_str).collect();
            let label = next_label(labels, "m");
            check(
                pb.merge_join(left, (&on.0.name, &on.1.name), &refs, &label),
                span,
            )
        }
        Stage::Order(keys) => check(pb.sort(&sort_specs(keys)), span),
        Stage::Top { n, keys } => check(pb.top_n(&sort_specs(keys), *n as usize), span),
    }
}

fn sort_specs(keys: &[SortKeyAst]) -> Vec<SortSpec> {
    keys.iter()
        .map(|k| {
            if k.desc {
                desc(&k.col.name)
            } else {
                asc(&k.col.name)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// literals
// ---------------------------------------------------------------------------

/// Coerces a written literal to the column type it meets. Integer
/// literals narrow with a range check; everything else must match.
fn coerce_lit(lit: &Lit, ty: DataType, span: Span, ctx: &str) -> Result<Value, FrontendError> {
    let mismatch = |found: DataType| {
        plan_err(
            PlanError::TypeMismatch {
                context: ctx.to_string(),
                expected: ty.to_string(),
                found,
            },
            span,
        )
    };
    match (lit, ty) {
        (Lit::Int(v), DataType::I16) => match i16::try_from(*v) {
            Ok(x) => Ok(Value::I16(x)),
            Err(_) => plan_err(
                PlanError::Invalid(format!(
                    "literal {v} out of range for an i16 column ({ctx})"
                )),
                span,
            ),
        },
        (Lit::Int(v), DataType::I32) => match i32::try_from(*v) {
            Ok(x) => Ok(Value::I32(x)),
            Err(_) => plan_err(
                PlanError::Invalid(format!(
                    "literal {v} out of range for an i32 column ({ctx})"
                )),
                span,
            ),
        },
        (Lit::Int(v), DataType::I64) => Ok(Value::I64(*v)),
        (Lit::Int(v), DataType::F64) => Ok(Value::F64(*v as f64)),
        (Lit::Int(_), DataType::Str) => mismatch(DataType::I64),
        (Lit::Float(v), DataType::F64) => Ok(Value::F64(*v)),
        (Lit::Float(_), _) => mismatch(DataType::F64),
        (Lit::Str(s), DataType::Str) => Ok(Value::Str(s.clone())),
        (Lit::Str(_), _) => mismatch(DataType::Str),
    }
}

// ---------------------------------------------------------------------------
// predicates
// ---------------------------------------------------------------------------

fn compile_pred(p: &PredAst, schema: &Schema) -> Result<NamedPred, FrontendError> {
    match p {
        PredAst::Cmp { col, op, rhs } => {
            let i = resolve_col(schema, &col.name).map_err(|err| FrontendError::Plan {
                err,
                span: col.span,
            })?;
            let ty = schema.field(i).ty;
            match rhs {
                CmpRhsAst::Lit(lit, lspan) => {
                    if ty == DataType::Str && !matches!(op, CmpKind::Eq | CmpKind::Ne) {
                        return plan_err(
                            PlanError::TypeMismatch {
                                context: format!("ordering comparison on {}", col.name),
                                expected: "a numeric column (strings support only = and !=)".into(),
                                found: DataType::Str,
                            },
                            col.span.to(*lspan),
                        );
                    }
                    let v = coerce_lit(
                        lit,
                        ty,
                        col.span.to(*lspan),
                        &format!("comparison on {}", col.name),
                    )?;
                    Ok(NamedPred::cmp_val(&col.name, *op, v))
                }
                CmpRhsAst::Col(other) => {
                    let j =
                        resolve_col(schema, &other.name).map_err(|err| FrontendError::Plan {
                            err,
                            span: other.span,
                        })?;
                    let oty = schema.field(j).ty;
                    if oty != ty {
                        return plan_err(
                            PlanError::TypeMismatch {
                                context: format!("comparison {} vs {}", col.name, other.name),
                                expected: ty.to_string(),
                                found: oty,
                            },
                            col.span.to(other.span),
                        );
                    }
                    Ok(NamedPred::cmp_col(&col.name, *op, &other.name))
                }
            }
        }
        PredAst::Like {
            col,
            pattern,
            negated,
        } => {
            if *negated {
                Ok(NamedPred::not_like(&col.name, pattern))
            } else {
                Ok(NamedPred::like(&col.name, pattern))
            }
        }
        PredAst::InStr { col, values } => Ok(NamedPred::in_str(&col.name, values.iter().cloned())),
        PredAst::And(ps) => Ok(NamedPred::And(
            ps.iter()
                .map(|p| compile_pred(p, schema))
                .collect::<Result<_, _>>()?,
        )),
        PredAst::Or(ps) => Ok(NamedPred::Or(
            ps.iter()
                .map(|p| compile_pred(p, schema))
                .collect::<Result<_, _>>()?,
        )),
    }
}

// ---------------------------------------------------------------------------
// expressions
// ---------------------------------------------------------------------------

/// Best-effort type of an expression (`None` defers the failure to the
/// builder's own resolution). Mirrors the evaluator's rules: arithmetic
/// carries its left operand's type, casts their target, `substr` is a
/// string.
fn infer_ty(e: &ExprAst, schema: &Schema) -> Option<DataType> {
    match e {
        ExprAst::Col(id) => schema.index_of(&id.name).map(|i| schema.field(i).ty),
        ExprAst::Lit(Lit::Int(_), _) => Some(DataType::I64),
        ExprAst::Lit(Lit::Float(_), _) => Some(DataType::F64),
        ExprAst::Lit(Lit::Str(_), _) => Some(DataType::Str),
        ExprAst::Binary { lhs, .. } => infer_ty(lhs, schema),
        ExprAst::Cast { to, .. } => Some(*to),
        ExprAst::Substr { .. } => Some(DataType::Str),
    }
}

fn compile_expr(e: &ExprAst, schema: &Schema) -> Result<NamedExpr, FrontendError> {
    match e {
        ExprAst::Col(id) => {
            // Pre-resolve for the span; the builder will resolve again.
            resolve_col(schema, &id.name)
                .map_err(|err| FrontendError::Plan { err, span: id.span })?;
            Ok(col(&id.name))
        }
        ExprAst::Lit(_, span) => plan_err(
            PlanError::Invalid(
                "a bare literal is not a projection; combine it with a column".into(),
            ),
            *span,
        ),
        ExprAst::Binary { op, lhs, rhs } => {
            if let ExprAst::Lit(_, lspan) = lhs.as_ref() {
                return plan_err(
                    PlanError::Invalid(
                        "a literal may only be the right operand of arithmetic".into(),
                    ),
                    *lspan,
                );
            }
            let l = compile_expr(lhs, schema)?;
            let r = match rhs.as_ref() {
                ExprAst::Lit(lit, lspan) => {
                    // The evaluator needs both operands the same type:
                    // coerce the literal to the left side's type.
                    let lty = infer_ty(lhs, schema).unwrap_or(DataType::I64);
                    match (lit, lty) {
                        (Lit::Int(v), DataType::I64) => lit_i64(*v),
                        (Lit::Int(v), DataType::F64) => lit_f64(*v as f64),
                        (Lit::Float(v), DataType::F64) => lit_f64(*v),
                        _ => {
                            return plan_err(
                                PlanError::TypeMismatch {
                                    context: "arithmetic literal".into(),
                                    expected: format!(
                                        "a {lty} literal (arithmetic runs on i64/f64; cast first)"
                                    ),
                                    found: match lit {
                                        Lit::Float(_) => DataType::F64,
                                        Lit::Str(_) => DataType::Str,
                                        Lit::Int(_) => DataType::I64,
                                    },
                                },
                                *lspan,
                            )
                        }
                    }
                }
                other => compile_expr(other, schema)?,
            };
            Ok(match op {
                crate::expr::ArithKind::Add => l.add(r),
                crate::expr::ArithKind::Sub => l.sub(r),
                crate::expr::ArithKind::Mul => l.mul(r),
                crate::expr::ArithKind::Div => l.div(r),
            })
        }
        ExprAst::Cast { to, inner, .. } => Ok(compile_expr(inner, schema)?.cast(*to)),
        ExprAst::Substr {
            col: c, start, len, ..
        } => Ok(substr(&c.name, *start as usize, *len as usize)),
    }
}

// ---------------------------------------------------------------------------
// aggregates
// ---------------------------------------------------------------------------

fn compile_agg(a: &AggItem, schema: &Schema) -> Result<Agg, FrontendError> {
    let agg = match (a.func, &a.col) {
        (AggFunc::Count, _) => count(),
        (f, Some(c)) => {
            let i = resolve_col(schema, &c.name)
                .map_err(|err| FrontendError::Plan { err, span: c.span })?;
            let ty = schema.field(i).ty;
            let name = match f {
                AggFunc::Sum => "sum",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
                AggFunc::Count => unreachable!("count handled above"),
            };
            match (f, ty) {
                (AggFunc::Sum, DataType::I64) => sum_i64(&c.name),
                (AggFunc::Sum, DataType::F64) => sum_f64(&c.name),
                (AggFunc::Min, DataType::I64) => min_i64(&c.name),
                (AggFunc::Min, DataType::F64) => min_f64(&c.name),
                (AggFunc::Max, DataType::I64) => max_i64(&c.name),
                (AggFunc::Max, DataType::F64) => max_f64(&c.name),
                _ => {
                    return plan_err(
                        PlanError::TypeMismatch {
                            context: format!("{name}({})", c.name),
                            expected: "an i64 or f64 column (cast first)".into(),
                            found: ty,
                        },
                        c.span,
                    )
                }
            }
        }
        (_, None) => {
            return plan_err(
                PlanError::Invalid("sum/min/max need a column argument".into()),
                Span::default(),
            )
        }
    };
    Ok(match &a.alias {
        Some(al) => agg.named(&al.name),
        None => agg,
    })
}
