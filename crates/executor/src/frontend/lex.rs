//! Tokenizer for the query DSL.
//!
//! Produces a flat token stream with byte spans. Keywords are reserved:
//! an identifier spelled like a keyword is a [`ParseErrorKind::ReservedWord`]
//! wherever a plain identifier is required, which keeps the grammar LL(1)
//! and the canonical rendering unambiguous.

use super::ast::Span;

/// A lexical or syntactic error, anchored to the offending bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where.
    pub span: Span,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A character the lexer has no token for.
    UnexpectedChar(char),
    /// A string literal with no closing quote.
    UnterminatedString,
    /// A numeric literal that does not fit its type.
    BadNumber(String),
    /// The parser needed one thing and saw another.
    UnexpectedToken {
        /// What the grammar required at this point.
        expected: &'static str,
        /// What was actually there.
        found: String,
    },
    /// A keyword used where a plain identifier is required.
    ReservedWord(String),
    /// Well-formed query followed by extra tokens.
    TrailingInput,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}..{}: ", self.span.start, self.span.end)?;
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::UnterminatedString => f.write_str("unterminated string literal"),
            ParseErrorKind::BadNumber(s) => write!(f, "bad numeric literal `{s}`"),
            ParseErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::ReservedWord(w) => {
                write!(f, "`{w}` is a reserved word and cannot be an identifier")
            }
            ParseErrorKind::TrailingInput => f.write_str("trailing input after query"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Every reserved word of the DSL grammar.
pub const KEYWORDS: &[&str] = &[
    "from", "where", "select", "keep", "agg", "by", "count", "sum", "min", "max", "join", "inner",
    "semi", "anti", "single", "merge", "on", "payload", "default", "bloom", "order", "top", "asc",
    "desc", "and", "or", "not", "like", "in", "as", "i16", "i32", "i64", "f64", "substr",
];

/// One token with its span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokenKind,
    /// Source bytes.
    pub span: Span,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Plain identifier (not a keyword).
    Ident(String),
    /// Reserved word (one of [`KEYWORDS`]).
    Keyword(&'static str),
    /// Integer literal (always non-negative; `-` is a separate token).
    Int(i64),
    /// Float literal (non-negative, same deal).
    Float(f64),
    /// String literal, unescaped.
    Str(String),
    /// Punctuation / operator, normalized (`==` → `=`, `<>` → `!=`).
    Sym(&'static str),
    /// End of input (span at the end of the text).
    Eof,
}

impl TokenKind {
    /// A short human name for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Keyword(k) => format!("`{k}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v:?}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::Sym(s) => format!("`{s}`"),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

fn keyword(word: &str) -> Option<&'static str> {
    KEYWORDS.iter().find(|k| **k == word).copied()
}

/// Tokenizes `text` (ending with an [`TokenKind::Eof`] token).
pub fn lex(text: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &text[start..i];
                let span = Span { start, end: i };
                let kind = match keyword(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_string()),
                };
                toks.push(Token { kind, span });
            }
            b'0'..=b'9' => {
                let start = i;
                let mut float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    // Only a well-formed exponent makes this a float;
                    // `12e` would otherwise swallow an identifier head.
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let lit = &text[start..i];
                let span = Span { start, end: i };
                let kind = if float {
                    match lit.parse::<f64>() {
                        Ok(v) => TokenKind::Float(v),
                        Err(_) => {
                            return Err(ParseError {
                                kind: ParseErrorKind::BadNumber(lit.to_string()),
                                span,
                            })
                        }
                    }
                } else {
                    match lit.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        Err(_) => {
                            return Err(ParseError {
                                kind: ParseErrorKind::BadNumber(lit.to_string()),
                                span,
                            })
                        }
                    }
                };
                toks.push(Token { kind, span });
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            closed = true;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            s.push(bytes[i + 1] as char);
                            i += 2;
                        }
                        _ => {
                            // Strings are treated as bytes; the DSL only
                            // meets ASCII TPC-H data.
                            s.push(bytes[i] as char);
                            i += 1;
                        }
                    }
                }
                if !closed {
                    return Err(ParseError {
                        kind: ParseErrorKind::UnterminatedString,
                        span: Span { start, end: i },
                    });
                }
                toks.push(Token {
                    kind: TokenKind::Str(s),
                    span: Span { start, end: i },
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &text[i..i + 2]
                } else {
                    ""
                };
                let (sym, w): (&'static str, usize) = match two {
                    "<=" => ("<=", 2),
                    ">=" => (">=", 2),
                    "!=" => ("!=", 2),
                    "<>" => ("!=", 2),
                    "==" => ("=", 2),
                    _ => match b {
                        b'|' => ("|", 1),
                        b'[' => ("[", 1),
                        b']' => ("]", 1),
                        b'(' => ("(", 1),
                        b')' => (")", 1),
                        b',' => (",", 1),
                        b'=' => ("=", 1),
                        b'<' => ("<", 1),
                        b'>' => (">", 1),
                        b'+' => ("+", 1),
                        b'-' => ("-", 1),
                        b'*' => ("*", 1),
                        b'/' => ("/", 1),
                        other => {
                            return Err(ParseError {
                                kind: ParseErrorKind::UnexpectedChar(other as char),
                                span: Span {
                                    start: i,
                                    end: i + 1,
                                },
                            })
                        }
                    },
                };
                toks.push(Token {
                    kind: TokenKind::Sym(sym),
                    span: Span {
                        start: i,
                        end: i + w,
                    },
                });
                i += w;
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        span: Span {
            start: bytes.len(),
            end: bytes.len(),
        },
    });
    Ok(toks)
}
