//! Hard-coded flavor heuristics — the competing approach of §4.2.
//!
//! "One could for instance hard-code to use No-Branching selection
//! implementations between 10% and 90% observed selectivity. Similarly,
//! above 30% selectivity a primitive like map_mul could ignore the selection
//! vector [...]. Finally, depending on the bloom filter size, we could
//! decide to use Fission or not. We developed such heuristics, tuning them
//! to the characteristics of Machine 1."
//!
//! Implemented as a [`Policy`] that decides on the *hint* the executor
//! supplies before each call (observed selectivity, input density, or bloom
//! size), so the engine machinery is identical across modes.

use ma_core::policy::Policy;

/// Which rule a heuristic instance applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeuristicRule {
    /// Selection primitives: no-branching when the *observed* selectivity of
    /// the previous calls lies in `[lo, hi]`, branching outside.
    /// The hint is the last call's output selectivity.
    Selection {
        /// Lower selectivity bound (inclusive).
        lo: f64,
        /// Upper selectivity bound (inclusive).
        hi: f64,
    },
    /// Map primitives: full computation when input density (live/len) is at
    /// least `threshold`. Data-type dependent (Fig. 8): smaller types gain
    /// more from SIMD, so their threshold is lower.
    FullComputation {
        /// Minimum input density for full computation.
        threshold: f64,
    },
    /// Bloom lookups: fission when the filter exceeds `bytes`.
    Fission {
        /// Filter size above which fission is used.
        bytes: f64,
    },
    /// No rule: always the default flavor.
    Off,
}

/// A policy that applies a [`HeuristicRule`] against the latest hint.
#[derive(Debug, Clone)]
pub struct HeuristicPolicy {
    rule: HeuristicRule,
    arms: usize,
    /// Flavor index to use when the rule does not fire (the default).
    base: usize,
    /// Flavor index when the rule fires.
    alt: usize,
    hint: f64,
}

impl HeuristicPolicy {
    /// Creates the policy. `base`/`alt` are flavor indices within the
    /// instance's flavor set.
    pub fn new(rule: HeuristicRule, arms: usize, base: usize, alt: usize) -> Self {
        assert!(base < arms && alt < arms);
        HeuristicPolicy {
            rule,
            arms,
            base,
            alt,
            hint: f64::NAN,
        }
    }

    fn fires(&self) -> bool {
        if self.hint.is_nan() {
            return false;
        }
        match self.rule {
            HeuristicRule::Selection { lo, hi } => self.hint >= lo && self.hint <= hi,
            HeuristicRule::FullComputation { threshold } => self.hint >= threshold,
            HeuristicRule::Fission { bytes } => self.hint > bytes,
            HeuristicRule::Off => false,
        }
    }
}

impl Policy for HeuristicPolicy {
    fn choose(&mut self) -> usize {
        if self.fires() {
            self.alt
        } else {
            self.base
        }
    }

    fn observe(&mut self, _flavor: usize, _tuples: u64, _ticks: u64) {}

    fn arms(&self) -> usize {
        self.arms
    }

    fn name(&self) -> String {
        format!("heuristic({:?})", self.rule)
    }

    fn hint(&mut self, value: f64) {
        self.hint = value;
    }
}

/// The Machine-1-tuned thresholds of §4.2.
pub mod tuned {
    use super::HeuristicRule;

    /// No-branching between 10% and 90% observed selectivity.
    pub const SELECTION: HeuristicRule = HeuristicRule::Selection { lo: 0.10, hi: 0.90 };

    /// Full computation above 30% density for 32-bit ints (the paper's
    /// example); shifted per type following Fig. 8: 16-bit gains from 10%,
    /// 64-bit never gains.
    pub fn full_computation(elem_bytes: usize) -> HeuristicRule {
        match elem_bytes {
            2 => HeuristicRule::FullComputation { threshold: 0.10 },
            4 => HeuristicRule::FullComputation { threshold: 0.30 },
            // 64-bit values: SIMD gain never pays for the extra work.
            _ => HeuristicRule::Off,
        }
    }

    /// Fission for bloom filters beyond 1 MB (machine 1's cross-over,
    /// Fig. 6).
    pub const FISSION: HeuristicRule = HeuristicRule::Fission {
        bytes: (1 << 20) as f64,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_rule_window() {
        let mut p = HeuristicPolicy::new(tuned::SELECTION, 2, 0, 1);
        // No hint yet: default.
        assert_eq!(p.choose(), 0);
        p.hint(0.5);
        assert_eq!(p.choose(), 1, "mid selectivity → no-branching");
        p.hint(0.95);
        assert_eq!(p.choose(), 0, "high selectivity → branching");
        p.hint(0.05);
        assert_eq!(p.choose(), 0, "low selectivity → branching");
        p.hint(0.10);
        assert_eq!(p.choose(), 1, "inclusive lower bound");
    }

    #[test]
    fn full_computation_rule_by_type() {
        let mut p16 = HeuristicPolicy::new(tuned::full_computation(2), 2, 0, 1);
        p16.hint(0.15);
        assert_eq!(p16.choose(), 1);
        let mut p32 = HeuristicPolicy::new(tuned::full_computation(4), 2, 0, 1);
        p32.hint(0.15);
        assert_eq!(p32.choose(), 0);
        p32.hint(0.35);
        assert_eq!(p32.choose(), 1);
        let mut p64 = HeuristicPolicy::new(tuned::full_computation(8), 2, 0, 1);
        p64.hint(0.99);
        assert_eq!(p64.choose(), 0, "64-bit never goes full");
    }

    #[test]
    fn fission_rule_by_size() {
        let mut p = HeuristicPolicy::new(tuned::FISSION, 2, 0, 1);
        p.hint((64 << 10) as f64);
        assert_eq!(p.choose(), 0, "small filter stays fused");
        p.hint((4 << 20) as f64);
        assert_eq!(p.choose(), 1, "large filter → fission");
    }

    #[test]
    fn off_rule_never_fires() {
        let mut p = HeuristicPolicy::new(HeuristicRule::Off, 3, 2, 0);
        p.hint(1e9);
        assert_eq!(p.choose(), 2);
    }
}
