//! The exchange runtime seam: channels and threads behind a trait.
//!
//! Every thread-crossing operation the exchange layer performs — spawning
//! a worker, sending/receiving a batch on a bounded channel, joining a
//! handle — goes through [`Rt`], so the *same* union/teardown code runs
//! on two runtimes:
//!
//! * [`StdRt`] — `std::thread` + `std::sync::mpsc`, the production
//!   runtime (zero-cost: the trait methods inline to the std calls);
//! * the model runtime (`ops::model_check`, test builds only) — a
//!   cooperative scheduler that serializes the same operations and
//!   explores their interleavings exhaustively, proving the teardown
//!   protocol (no deadlock, no lost wakeup, no tuple loss) under every
//!   bounded schedule rather than the few a live run happens to hit.
//!
//! The trait is deliberately *thin*: exactly the operations
//! `ops::exchange` uses, with `std`'s semantics (bounded rendezvous
//! channel, send fails once the receiver is gone, recv fails once all
//! senders are gone). Anything richer would let the model drift from
//! what production executes.

/// Sending half of a bounded channel ([`std::sync::mpsc::SyncSender`]
/// semantics: `send` blocks while the channel is full and fails — giving
/// the value back — once the receiver is gone).
pub(crate) trait RtSender<T>: Clone + Send + 'static {
    /// Blocking send; `Err(msg)` means the receiving half was dropped.
    fn send(&self, msg: T) -> Result<(), T>;
}

/// Receiving half of a bounded channel (`recv` blocks while the channel
/// is empty and fails once every sender is gone).
pub(crate) trait RtReceiver<T>: Send + 'static {
    /// Blocking receive; `Err(())` means all senders hung up.
    fn recv(&self) -> Result<T, ()>;
}

/// A worker-thread handle; joining reaps the worker's panic payload.
pub(crate) trait RtJoinHandle {
    /// Blocks until the worker exits.
    fn join(self) -> std::thread::Result<()>;
}

/// A runtime the exchange layer can run on: bounded channels plus worker
/// threads.
pub(crate) trait Rt: 'static {
    /// Sender type for a channel of `T`.
    type Sender<T: Send + 'static>: RtSender<T>;
    /// Receiver type for a channel of `T`.
    type Receiver<T: Send + 'static>: RtReceiver<T>;
    /// Worker handle type.
    type JoinHandle: RtJoinHandle;

    /// A bounded channel with capacity `bound`.
    fn sync_channel<T: Send + 'static>(bound: usize) -> (Self::Sender<T>, Self::Receiver<T>);

    /// Spawns a worker.
    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle;
}

/// The production runtime: OS threads and `std::sync::mpsc` channels.
pub(crate) struct StdRt;

impl<T: Send + 'static> RtSender<T> for std::sync::mpsc::SyncSender<T> {
    fn send(&self, msg: T) -> Result<(), T> {
        std::sync::mpsc::SyncSender::send(self, msg).map_err(|e| e.0)
    }
}

impl<T: Send + 'static> RtReceiver<T> for std::sync::mpsc::Receiver<T> {
    fn recv(&self) -> Result<T, ()> {
        std::sync::mpsc::Receiver::recv(self).map_err(|_| ())
    }
}

impl RtJoinHandle for std::thread::JoinHandle<()> {
    fn join(self) -> std::thread::Result<()> {
        std::thread::JoinHandle::join(self)
    }
}

impl Rt for StdRt {
    type Sender<T: Send + 'static> = std::sync::mpsc::SyncSender<T>;
    type Receiver<T: Send + 'static> = std::sync::mpsc::Receiver<T>;
    type JoinHandle = std::thread::JoinHandle<()>;

    fn sync_channel<T: Send + 'static>(bound: usize) -> (Self::Sender<T>, Self::Receiver<T>) {
        std::sync::mpsc::sync_channel(bound)
    }

    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle {
        std::thread::spawn(f)
    }
}
