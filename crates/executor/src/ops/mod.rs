//! Physical operators of the vector-at-a-time engine.

mod aggregate;
pub(crate) mod exchange;
pub(crate) mod fetch;
mod hash_join;
mod merge_join;
mod project;
mod scan;
mod select;
mod sort;
pub(crate) mod xrt;

pub use aggregate::{AggSpec, HashAggregate, StreamAggregate};
pub use exchange::{
    ConsumerFactory, FragmentFactory, HashPartitionExchange, MergeExchange, Parallel, RoutedLane,
};
pub use hash_join::{HashJoin, JoinKind};
pub use merge_join::MergeJoin;
pub use project::{ProjItem, Project};
pub use scan::Scan;
pub use select::Select;
pub use sort::{materialize, Limit, Sort, SortKey};

use std::sync::Arc;

use ma_vector::{DataChunk, DataType, StrVec, Vector};

use crate::ExecError;

/// A pull-based vectorized operator.
pub trait Operator {
    /// Produces the next chunk, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError>;

    /// Output column types.
    fn out_types(&self) -> &[DataType];
}

/// Boxed operator, the unit plans compose. `Send` so whole pipelines can
/// move to scan worker threads (see [`Parallel`]).
pub type BoxOp = Box<dyn Operator + Send>;

/// Drains an operator, returning all chunks.
pub fn collect(op: &mut dyn Operator) -> Result<Vec<DataChunk>, ExecError> {
    let mut out = Vec::new();
    while let Some(chunk) = op.next()? {
        out.push(chunk);
    }
    Ok(out)
}

/// Total live rows across collected chunks.
pub fn total_rows(chunks: &[DataChunk]) -> usize {
    chunks.iter().map(DataChunk::live_count).sum()
}

// ---------------------------------------------------------------------------
// materialized row store, shared by joins and sort
// ---------------------------------------------------------------------------

/// A fully materialized, densely packed column set (only live rows of the
/// appended chunks are kept). Joins materialize their build side into one;
/// `Sort` materializes its whole input.
pub struct RowStore {
    types: Vec<DataType>,
    cols: Vec<StoreCol>,
    rows: usize,
}

enum StoreCol {
    I16(Vec<i16>),
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    Str {
        bytes: Vec<u8>,
        views: Vec<(u32, u32)>,
    },
}

impl RowStore {
    /// An empty store with the given column types.
    pub fn new(types: Vec<DataType>) -> Self {
        let cols = types
            .iter()
            .map(|t| match t {
                DataType::I16 => StoreCol::I16(Vec::new()),
                DataType::I32 => StoreCol::I32(Vec::new()),
                DataType::I64 => StoreCol::I64(Vec::new()),
                DataType::F64 => StoreCol::F64(Vec::new()),
                DataType::Str => StoreCol::Str {
                    bytes: Vec::new(),
                    views: Vec::new(),
                },
            })
            .collect();
        RowStore {
            types,
            cols,
            rows: 0,
        }
    }

    /// Column types.
    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    /// Rows stored.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes of live stored data (length-based, not capacity): scalar width
    /// × rows per numeric column, packed bytes + 8 bytes per view for `Str`.
    /// Reported by the byte-accounting facade against proven bounds.
    pub fn bytes(&self) -> u64 {
        self.cols
            .iter()
            .map(|c| match c {
                StoreCol::I16(v) => v.len() as u64 * 2,
                StoreCol::I32(v) => v.len() as u64 * 4,
                StoreCol::I64(v) => v.len() as u64 * 8,
                StoreCol::F64(v) => v.len() as u64 * 8,
                StoreCol::Str { bytes, views } => bytes.len() as u64 + views.len() as u64 * 8,
            })
            .sum()
    }

    /// Appends the live rows of `chunk`, taking columns `col_idx` in order.
    pub fn append(&mut self, chunk: &DataChunk, col_idx: &[usize]) {
        debug_assert_eq!(col_idx.len(), self.cols.len());
        let positions = chunk.live_positions();
        for (store, &ci) in self.cols.iter_mut().zip(col_idx) {
            let v = chunk.column(ci);
            match (store, v.as_ref()) {
                (StoreCol::I16(dst), Vector::I16(src)) => {
                    dst.extend(positions.iter().map(|&p| src[p]));
                }
                (StoreCol::I32(dst), Vector::I32(src)) => {
                    dst.extend(positions.iter().map(|&p| src[p]));
                }
                (StoreCol::I64(dst), Vector::I64(src)) => {
                    dst.extend(positions.iter().map(|&p| src[p]));
                }
                (StoreCol::F64(dst), Vector::F64(src)) => {
                    dst.extend(positions.iter().map(|&p| src[p]));
                }
                (StoreCol::Str { bytes, views }, Vector::Str(src)) => {
                    for &p in &positions {
                        let s = src.get(p);
                        let off = bytes.len() as u32;
                        bytes.extend_from_slice(s.as_bytes());
                        views.push((off, s.len() as u32));
                    }
                }
                _ => panic!("RowStore::append type mismatch"),
            }
        }
        self.rows += positions.len();
    }

    /// Freezes into full-length vectors (one per column).
    pub fn freeze(self) -> FrozenStore {
        let cols = self
            .cols
            .into_iter()
            .map(|c| match c {
                StoreCol::I16(v) => Vector::I16(v),
                StoreCol::I32(v) => Vector::I32(v),
                StoreCol::I64(v) => Vector::I64(v),
                StoreCol::F64(v) => Vector::F64(v),
                StoreCol::Str { bytes, views } => {
                    Vector::Str(StrVec::from_views(bytes.into(), views))
                }
            })
            .collect();
        FrozenStore {
            types: self.types,
            cols,
            rows: self.rows,
        }
    }
}

/// An immutable materialized column set.
pub struct FrozenStore {
    types: Vec<DataType>,
    cols: Vec<Vector>,
    rows: usize,
}

impl FrozenStore {
    /// Column types.
    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    /// Rows stored.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column `i` as a full-length vector.
    pub fn col(&self, i: usize) -> &Vector {
        &self.cols[i]
    }

    /// Gathers `rows` of column `i` into a fresh vector (plain gather; the
    /// adaptive `map_fetch` path is used by joins, which fetch through
    /// primitive instances instead).
    pub fn gather(&self, i: usize, rows: &[u32]) -> Vector {
        match &self.cols[i] {
            Vector::I16(v) => Vector::I16(rows.iter().map(|&r| v[r as usize]).collect()),
            Vector::I32(v) => Vector::I32(rows.iter().map(|&r| v[r as usize]).collect()),
            Vector::I64(v) => Vector::I64(rows.iter().map(|&r| v[r as usize]).collect()),
            Vector::F64(v) => Vector::F64(rows.iter().map(|&r| v[r as usize]).collect()),
            Vector::Str(v) => {
                let mut out = v.writable_like(rows.len());
                for (j, &r) in rows.iter().enumerate() {
                    out.views_mut()[j] = v.views()[r as usize];
                }
                Vector::Str(out)
            }
        }
    }

    /// Emits the stored rows as dense chunks of at most `vector_size` rows.
    pub fn to_chunks(&self, vector_size: usize) -> Vec<DataChunk> {
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.rows {
            let n = (self.rows - start).min(vector_size);
            let rows: Vec<u32> = (start as u32..start.saturating_add(n) as u32).collect();
            let cols = (0..self.cols.len())
                .map(|i| Arc::new(self.gather(i, &rows)))
                .collect();
            out.push(DataChunk::new(cols));
            start += n;
        }
        out
    }
}

/// Length-based data bytes of one chunk: scalar width × length per numeric
/// column; per-view string byte lengths plus 8 bytes per view for `Str`
/// (arena bytes actually referenced, not the shared arena's full size).
/// The exchange operators report this per received chunk against the
/// analyzer's chunk bound.
pub fn chunk_bytes(chunk: &DataChunk) -> u64 {
    chunk
        .columns()
        .iter()
        .map(|c| match c.as_ref() {
            Vector::I16(v) => v.len() as u64 * 2,
            Vector::I32(v) => v.len() as u64 * 4,
            Vector::I64(v) => v.len() as u64 * 8,
            Vector::F64(v) => v.len() as u64 * 8,
            Vector::Str(sv) => sv
                .views()
                .iter()
                .map(|&(_, len)| u64::from(len) + 8)
                .sum::<u64>(),
        })
        .sum()
}

/// Extracts a column's live values as `i64` (key normalization for joins
/// and group tables; all TPC-H join keys are integers).
pub(crate) fn normalize_keys_i64(v: &Vector, out: &mut Vec<i64>) {
    out.clear();
    match v {
        Vector::I16(s) => out.extend(s.iter().map(|&x| x as i64)),
        Vector::I32(s) => out.extend(s.iter().map(|&x| x as i64)),
        Vector::I64(s) => out.extend_from_slice(s),
        other => panic!(
            "join/group keys must be integers, got {}",
            other.data_type()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_vector::SelVec;

    fn chunk(vals: &[i64], strs: &[&str]) -> DataChunk {
        DataChunk::new(vec![
            Arc::new(Vector::I64(vals.to_vec())),
            Arc::new(Vector::Str(StrVec::from_strings(strs))),
        ])
    }

    #[test]
    fn row_store_appends_live_rows_only() {
        let mut rs = RowStore::new(vec![DataType::I64, DataType::Str]);
        let mut c = chunk(&[1, 2, 3, 4], &["a", "b", "c", "d"]);
        c.set_sel(Some(SelVec::from_positions(vec![1, 3])));
        rs.append(&c, &[0, 1]);
        let c2 = chunk(&[5], &["e"]);
        rs.append(&c2, &[0, 1]);
        assert_eq!(rs.rows(), 3);
        let f = rs.freeze();
        assert_eq!(f.col(0).as_i64(), &[2, 4, 5]);
        let sv = f.col(1).as_str_vec();
        assert_eq!(sv.get(0), "b");
        assert_eq!(sv.get(2), "e");
    }

    #[test]
    fn frozen_gather_and_chunks() {
        let mut rs = RowStore::new(vec![DataType::I64]);
        for i in 0..5 {
            let c = DataChunk::new(vec![Arc::new(Vector::I64(vec![i * 10]))]);
            rs.append(&c, &[0]);
        }
        let f = rs.freeze();
        assert_eq!(f.gather(0, &[4, 0]).as_i64(), &[40, 0]);
        let chunks = f.to_chunks(2);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].column(0).as_i64(), &[0, 10]);
        assert_eq!(chunks[2].column(0).as_i64(), &[40]);
        assert_eq!(total_rows(&chunks), 5);
    }

    #[test]
    fn normalize_keys() {
        let mut out = Vec::new();
        normalize_keys_i64(&Vector::I32(vec![1, -2]), &mut out);
        assert_eq!(out, vec![1, -2]);
        normalize_keys_i64(&Vector::I16(vec![7]), &mut out);
        assert_eq!(out, vec![7]);
        normalize_keys_i64(&Vector::I64(vec![5, 6]), &mut out);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    #[should_panic(expected = "keys must be integers")]
    fn normalize_rejects_floats() {
        let mut out = Vec::new();
        normalize_keys_i64(&Vector::F64(vec![1.0]), &mut out);
    }
}
