//! Hash join with optional bloom-filter probe acceleration.
//!
//! The build side is materialized into a chained hash table; probing is
//! vectorized: a `map_hash_*`/`map_rehash_*` instance chain computes the
//! probe hash vector, the optional `sel_bloomfilter` instance (the loop
//! fission flavor set, §2) pre-filters probe positions, and matched output
//! columns are produced by adaptive `map_fetch_*` gathers (the Fig. 4(d)
//! primitive). The chain walk itself is plain code — §4.1 notes Vectorwise's
//! hash-table lookup also bypasses the expression evaluator.

use std::sync::Arc;

use ma_primitives::hashing::{combine_hash, hash_u64};
use ma_primitives::{BloomFilter, MapHash, MapRehash, SelBloom};
use ma_vector::{DataChunk, DataType, SelVec, Vector};

use crate::adaptive::HeurKind;
use crate::expr::Value;
use crate::ops::fetch::FetchInst;
use crate::ops::{normalize_keys_i64, BoxOp, FrozenStore, Operator, RowStore};
use crate::{ExecError, PrimInstance, QueryContext};

/// Join semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// All matching pairs; output = probe columns ++ build payload.
    Inner,
    /// Probe tuples with at least one match (selection-vector narrowing).
    Semi,
    /// Probe tuples with no match.
    Anti,
    /// At most one match per probe tuple (unique build keys); unmatched
    /// tuples get default payload values. Used for e.g. Q13's
    /// customer ⟕ per-customer order counts.
    LeftSingle,
}

enum ProbeHashStep {
    First(PrimInstance<MapHash<i64>>, usize),
    Rest(PrimInstance<MapRehash<i64>>, usize),
}

struct BuildSide {
    /// Normalized key columns, one `Vec<i64>` per key.
    keys: Vec<Vec<i64>>,
    payload: FrozenStore,
    heads: Vec<u32>,
    chain: Vec<u32>,
    mask: u64,
    bloom: Option<BloomFilter>,
}

const NIL: u32 = u32::MAX;

/// The *build phase* of a hash join, separated from probing: accumulates
/// build-side chunks into normalized key columns plus a payload row store,
/// then freezes them into the chained hash table a probe phase walks.
///
/// The split keeps the phases independently composable: a plain
/// [`HashJoin`] drains its build child through one `JoinBuild`, and a
/// *partitioned* join (see `plan::lower`) runs one `JoinBuild`-backed
/// [`HashJoin`] per key partition behind a
/// [`crate::ops::HashPartitionExchange`] — P private build tables, no
/// shared-state contention.
struct JoinBuild {
    key_idx: Vec<usize>,
    payload_idx: Vec<usize>,
    keys: Vec<Vec<i64>>,
    payload: RowStore,
    scratch: Vec<i64>,
}

impl JoinBuild {
    fn new(
        key_idx: Vec<usize>,
        payload_idx: Vec<usize>,
        payload_types: Vec<DataType>,
        row_hint: Option<usize>,
    ) -> Self {
        let nkeys = key_idx.len();
        // Pre-reserve the key vectors to the planner's proven build-row
        // bound — clamped so a wild estimate can't allocate unbounded
        // memory up front (the vectors still grow on demand past it).
        let cap = row_hint.map_or(0, |h| h.min(1 << 16));
        JoinBuild {
            key_idx,
            payload_idx,
            keys: vec![Vec::with_capacity(cap); nkeys],
            payload: RowStore::new(payload_types),
            scratch: Vec::new(),
        }
    }

    /// Appends one build-side chunk (live rows only).
    fn add(&mut self, chunk: &DataChunk) {
        let positions = chunk.live_positions();
        for (kv, &ci) in self.keys.iter_mut().zip(&self.key_idx) {
            normalize_keys_i64(chunk.column(ci), &mut self.scratch);
            kv.extend(positions.iter().map(|&p| self.scratch[p]));
        }
        self.payload.append(chunk, &self.payload_idx);
    }

    /// Freezes the accumulated rows into a chained hash table (plus an
    /// optional bloom filter over the row hashes). The build side bypasses
    /// the expression evaluator, like Vectorwise (§4.1).
    fn finish(self, want_bloom: bool, tracker: Option<&crate::adaptive::MemTracker>) -> BuildSide {
        let rows = self.keys[0].len();
        let mut row_hashes = vec![0u64; rows];
        for (k, kv) in self.keys.iter().enumerate() {
            if k == 0 {
                for (h, &v) in row_hashes.iter_mut().zip(kv) {
                    *h = hash_u64(v as u64);
                }
            } else {
                for (h, &v) in row_hashes.iter_mut().zip(kv) {
                    *h = combine_hash(*h, v as u64);
                }
            }
        }
        let slots = rows.saturating_mul(2).next_power_of_two().max(64);
        let mut heads = vec![NIL; slots];
        let mut chain = vec![NIL; rows];
        let mask = slots as u64 - 1;
        for (r, &h) in row_hashes.iter().enumerate() {
            let s = (h & mask) as usize;
            chain[r] = heads[s];
            heads[s] = r as u32;
        }
        let bloom = want_bloom.then(|| {
            let mut bf = BloomFilter::for_keys(rows);
            for &h in &row_hashes {
                bf.insert_hash(h);
            }
            bf
        });
        if let Some(t) = tracker {
            // Live bytes at the build's high-water point: normalized keys,
            // payload rows, the transient hash column, and the chained
            // table (heads + chain) plus the optional bloom filter.
            let key_bytes: u64 = self.keys.iter().map(|k| (k.len() * 8) as u64).sum();
            let table = (row_hashes.len() * 8) as u64
                + (heads.len() * 4) as u64
                + (chain.len() * 4) as u64
                + bloom.as_ref().map_or(0, |b| b.bytes() as u64);
            t.record(
                key_bytes
                    .saturating_add(self.payload.bytes())
                    .saturating_add(table),
            );
        }
        BuildSide {
            keys: self.keys,
            payload: self.payload.freeze(),
            heads,
            chain,
            mask,
            bloom,
        }
    }
}

impl BuildSide {
    fn probe_chain(&self, hash: u64) -> u32 {
        self.heads[(hash & self.mask) as usize]
    }

    fn key_matches(&self, row: u32, probe_keys: &[Vec<i64>], pos: usize) -> bool {
        self.keys
            .iter()
            .zip(probe_keys)
            .all(|(bk, pk)| bk[row as usize] == pk[pos])
    }
}

/// Hash join operator.
pub struct HashJoin {
    build: Option<BoxOp>,
    probe: BoxOp,
    build_key_idx: Vec<usize>,
    probe_key_idx: Vec<usize>,
    payload_idx: Vec<usize>,
    kind: JoinKind,
    types: Vec<DataType>,
    vector_size: usize,

    probe_hash_steps: Vec<ProbeHashStep>,
    bloom_inst: Option<PrimInstance<SelBloom>>,
    probe_fetch: Vec<FetchInst>,
    payload_fetch: Vec<FetchInst>,
    defaults: Vec<Value>,

    built: Option<BuildSide>,
    /// Planner-proven build-row bound, used to pre-size build allocations.
    build_hint: Option<usize>,
    /// Byte-accounting slot the build phase reports its high-water to.
    tracker: Option<crate::adaptive::MemTracker>,
    /// Pending inner-join matches: source chunk + (probe pos, build row).
    pending: Option<(DataChunk, Vec<u32>, Vec<u32>, usize)>,
    // scratch
    hashes: Vec<u64>,
    probe_keys: Vec<Vec<i64>>,
}

impl HashJoin {
    /// Builds a hash join.
    ///
    /// * `build_keys`/`probe_keys`: integer key columns (index-aligned).
    /// * `payload`: build-side columns appended to the output
    ///   (Inner/LeftSingle only).
    /// * `defaults`: LeftSingle payload values for unmatched probe tuples
    ///   (must match payload types; empty otherwise).
    /// * `use_bloom`: pre-filter probe positions with a bloom filter.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        build: BoxOp,
        probe: BoxOp,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        payload: Vec<usize>,
        kind: JoinKind,
        use_bloom: bool,
        defaults: Vec<Value>,
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        if build_keys.is_empty() || build_keys.len() != probe_keys.len() {
            return Err(ExecError::Plan("join key lists must match".into()));
        }
        let build_types = build.out_types().to_vec();
        let probe_types = probe.out_types().to_vec();
        for &k in &build_keys {
            if k >= build_types.len() {
                return Err(ExecError::Plan(format!("build key {k} out of range")));
            }
        }
        for &k in &probe_keys {
            if k >= probe_types.len() {
                return Err(ExecError::Plan(format!("probe key {k} out of range")));
            }
        }
        let payload_types: Vec<DataType> = payload
            .iter()
            .map(|&i| {
                build_types
                    .get(i)
                    .copied()
                    .ok_or_else(|| ExecError::Plan(format!("payload column {i} out of range")))
            })
            .collect::<Result<_, _>>()?;

        let types: Vec<DataType> = match kind {
            JoinKind::Inner | JoinKind::LeftSingle => probe_types
                .iter()
                .copied()
                .chain(payload_types.iter().copied())
                .collect(),
            JoinKind::Semi | JoinKind::Anti => probe_types.clone(),
        };
        if kind == JoinKind::LeftSingle {
            if defaults.len() != payload_types.len() {
                return Err(ExecError::Plan(
                    "LeftSingle needs one default per payload column".into(),
                ));
            }
            for (d, t) in defaults.iter().zip(&payload_types) {
                if d.data_type() != *t {
                    return Err(ExecError::Plan(format!(
                        "default type {} does not match payload {t}",
                        d.data_type()
                    )));
                }
            }
        }

        let mut probe_hash_steps = Vec::new();
        for (k, &c) in probe_keys.iter().enumerate() {
            probe_hash_steps.push(if k == 0 {
                ProbeHashStep::First(
                    ctx.instance(
                        "map_hash_i64_col",
                        format!("{label}/map_hash"),
                        HeurKind::None,
                    )?,
                    c,
                )
            } else {
                ProbeHashStep::Rest(
                    ctx.instance(
                        "map_rehash_i64_col",
                        format!("{label}/map_rehash"),
                        HeurKind::None,
                    )?,
                    c,
                )
            });
        }
        let bloom_inst = if use_bloom {
            Some(ctx.instance(
                "sel_bloomfilter",
                format!("{label}/sel_bloomfilter"),
                HeurKind::Fission,
            )?)
        } else {
            None
        };
        // Inner joins gather probe columns through fetch instances.
        let probe_fetch = if kind == JoinKind::Inner {
            probe_types
                .iter()
                .map(|&t| FetchInst::create(t, ctx, label))
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };
        let payload_fetch = if kind == JoinKind::Inner {
            payload_types
                .iter()
                .map(|&t| FetchInst::create(t, ctx, label))
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };

        let nkeys = build_keys.len();
        Ok(HashJoin {
            build: Some(build),
            probe,
            build_key_idx: build_keys,
            probe_key_idx: probe_keys,
            payload_idx: payload,
            kind,
            types,
            vector_size: ctx.vector_size(),
            probe_hash_steps,
            bloom_inst,
            probe_fetch,
            payload_fetch,
            defaults,
            built: None,
            build_hint: None,
            tracker: None,
            pending: None,
            hashes: Vec::new(),
            probe_keys: vec![Vec::new(); nkeys],
        })
    }

    /// Sets the planner-proven build-row bound, pre-sizing build
    /// allocations (clamped inside `JoinBuild::new`).
    pub fn with_build_rows(mut self, rows: usize) -> Self {
        self.build_hint = Some(rows);
        self
    }

    /// Attaches a byte-accounting tracker the build phase reports to.
    pub fn with_tracker(mut self, tracker: crate::adaptive::MemTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Drains the build child through the build phase.
    fn do_build(&mut self) -> Result<(), ExecError> {
        let mut child = self.build.take().expect("build called once");
        let build_types = child.out_types().to_vec();
        let payload_types: Vec<DataType> =
            self.payload_idx.iter().map(|&i| build_types[i]).collect();
        let mut build = JoinBuild::new(
            self.build_key_idx.clone(),
            self.payload_idx.clone(),
            payload_types,
            self.build_hint,
        );
        while let Some(chunk) = child.next()? {
            build.add(&chunk);
        }
        self.built = Some(build.finish(self.bloom_inst.is_some(), self.tracker.as_ref()));
        Ok(())
    }

    /// Emits up to `vector_size` pending inner-join pairs as one chunk.
    fn emit_pending(&mut self) -> Option<DataChunk> {
        let (chunk, ppos, brow, offset) = self.pending.as_mut()?;
        let n = (ppos.len() - *offset).min(self.vector_size);
        if n == 0 {
            self.pending = None;
            return None;
        }
        let pp = &ppos[*offset..][..n];
        let bb = &brow[*offset..][..n];
        let built = self.built.as_ref().expect("built");
        let mut cols: Vec<Arc<Vector>> = Vec::with_capacity(self.types.len());
        for (ci, inst) in self.probe_fetch.iter_mut().enumerate() {
            cols.push(Arc::new(inst.fetch(chunk.column(ci), pp)));
        }
        for (pi, inst) in self.payload_fetch.iter_mut().enumerate() {
            cols.push(Arc::new(inst.fetch(built.payload.col(pi), bb)));
        }
        *offset += n;
        let done = *offset >= ppos.len();
        let out = DataChunk::new(cols);
        if done {
            self.pending = None;
        }
        Some(out)
    }

    /// Probes one chunk; returns an output chunk unless everything was
    /// filtered out.
    fn probe_chunk(&mut self, chunk: DataChunk) -> Option<DataChunk> {
        let n = chunk.len();
        let sel_owned = chunk.sel().cloned();
        let sel = sel_owned.as_ref().map(SelVec::as_slice);
        let live = chunk.live_count() as u64;

        // Normalize probe keys.
        for (kv, &ci) in self.probe_keys.iter_mut().zip(&self.probe_key_idx) {
            normalize_keys_i64(chunk.column(ci), kv);
        }
        // Hash pipeline.
        self.hashes.resize(n.max(self.hashes.len()), 0);
        let hashes = &mut self.hashes[..n];
        for step in &mut self.probe_hash_steps {
            match step {
                ProbeHashStep::First(inst, c) => {
                    let keys =
                        &self.probe_keys[self.probe_key_idx.iter().position(|x| x == c).unwrap()];
                    inst.invoke(live, |f| f(hashes, keys, sel));
                }
                ProbeHashStep::Rest(inst, c) => {
                    let keys =
                        &self.probe_keys[self.probe_key_idx.iter().position(|x| x == c).unwrap()];
                    inst.invoke(live, |f| f(hashes, keys, sel));
                }
            }
        }

        let built = self.built.as_ref().expect("built");

        // Bloom pre-filter (candidates that *may* match).
        let mut bloom_buf: Vec<u32>;
        let candidates: &[u32] = match (&mut self.bloom_inst, &built.bloom) {
            (Some(inst), Some(bf)) => {
                let cap = live as usize;
                bloom_buf = vec![0u32; cap];
                inst.hint(bf.bytes() as f64);
                let k = inst.invoke(live, |f| f(&mut bloom_buf, bf, hashes, sel));
                bloom_buf.truncate(k);
                &bloom_buf
            }
            _ => {
                bloom_buf = match sel {
                    Some(s) => s.to_vec(),
                    None => (0..n as u32).collect(),
                };
                &bloom_buf
            }
        };

        match self.kind {
            JoinKind::Inner => {
                let mut ppos = Vec::new();
                let mut brow = Vec::new();
                for &i in candidates {
                    let mut r = built.probe_chain(hashes[i as usize]);
                    while r != NIL {
                        if built.key_matches(r, &self.probe_keys, i as usize) {
                            ppos.push(i);
                            brow.push(r);
                        }
                        r = built.chain[r as usize];
                    }
                }
                if ppos.is_empty() {
                    return None;
                }
                self.pending = Some((chunk, ppos, brow, 0));
                self.emit_pending()
            }
            JoinKind::Semi | JoinKind::Anti => {
                let mut matched = vec![false; n];
                for &i in candidates {
                    let mut r = built.probe_chain(hashes[i as usize]);
                    while r != NIL {
                        if built.key_matches(r, &self.probe_keys, i as usize) {
                            matched[i as usize] = true;
                            break;
                        }
                        r = built.chain[r as usize];
                    }
                }
                let want = self.kind == JoinKind::Semi;
                let positions: Vec<u32> = match sel {
                    Some(s) => s
                        .iter()
                        .copied()
                        .filter(|&i| matched[i as usize] == want)
                        .collect(),
                    None => (0..n as u32)
                        .filter(|&i| matched[i as usize] == want)
                        .collect(),
                };
                if positions.is_empty() {
                    return None;
                }
                Some(chunk.with_sel(Some(SelVec::from_positions(positions))))
            }
            JoinKind::LeftSingle => {
                // One output row per live probe tuple; payload from the
                // unique match or the defaults.
                let mut match_row = vec![NIL; n];
                for &i in candidates {
                    let mut r = built.probe_chain(hashes[i as usize]);
                    while r != NIL {
                        if built.key_matches(r, &self.probe_keys, i as usize) {
                            match_row[i as usize] = r;
                            break;
                        }
                        r = built.chain[r as usize];
                    }
                }
                let mut cols: Vec<Arc<Vector>> = chunk.columns().to_vec();
                for (pi, d) in self.defaults.iter().enumerate() {
                    let src = built.payload.col(pi);
                    let col = left_single_payload(src, &match_row, d, sel, n);
                    cols.push(Arc::new(col));
                }
                let mut out = DataChunk::new(cols);
                out.set_sel(sel_owned);
                Some(out)
            }
        }
    }
}

/// Builds a LeftSingle payload column: match value or default.
fn left_single_payload(
    src: &Vector,
    match_row: &[u32],
    default: &Value,
    sel: Option<&[u32]>,
    n: usize,
) -> Vector {
    macro_rules! fill {
        ($srcv:expr, $d:expr, $variant:ident, $zero:expr) => {{
            let mut out = vec![$zero; n];
            let apply = |i: usize, out: &mut Vec<_>| {
                out[i] = if match_row[i] == NIL {
                    $d
                } else {
                    $srcv[match_row[i] as usize]
                };
            };
            match sel {
                Some(s) => {
                    for &i in s {
                        apply(i as usize, &mut out);
                    }
                }
                None => {
                    for i in 0..n {
                        apply(i, &mut out);
                    }
                }
            }
            Vector::$variant(out)
        }};
    }
    match (src, default) {
        (Vector::I16(v), Value::I16(d)) => fill!(v, *d, I16, 0i16),
        (Vector::I32(v), Value::I32(d)) => fill!(v, *d, I32, 0i32),
        (Vector::I64(v), Value::I64(d)) => fill!(v, *d, I64, 0i64),
        (Vector::F64(v), Value::F64(d)) => fill!(v, *d, F64, 0f64),
        _ => panic!("LeftSingle payload only supports numeric columns"),
    }
}

impl Operator for HashJoin {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if self.built.is_none() {
            self.do_build()?;
        }
        if let Some(out) = self.emit_pending() {
            return Ok(Some(out));
        }
        loop {
            let Some(chunk) = self.probe.next()? else {
                return Ok(None);
            };
            if chunk.live_count() == 0 {
                continue;
            }
            if let Some(out) = self.probe_chunk(chunk) {
                return Ok(Some(out));
            }
        }
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::ops::{collect, total_rows, Scan};
    use ma_primitives::build_dictionary;
    use ma_vector::{ColumnBuilder, Table};

    fn ctx() -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), ExecConfig::fixed_default())
    }

    /// Dim table: key 0..n, name "n{key}".
    fn dim(n: usize) -> BoxOp {
        let mut k = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, n);
        for i in 0..n {
            k.push_i32(i as i32);
            s.push_str(&format!("n{i}"));
        }
        let t = Arc::new(
            Table::new(
                "d",
                vec![("k".into(), k.finish()), ("s".into(), s.finish())],
            )
            .unwrap(),
        );
        Box::new(Scan::new(t, &["k", "s"], 128).unwrap())
    }

    /// Fact table: fk = i % m, v = i.
    fn fact(n: usize, m: usize) -> BoxOp {
        let mut fk = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut v = ColumnBuilder::with_capacity(DataType::I64, n);
        for i in 0..n {
            fk.push_i32((i % m) as i32);
            v.push_i64(i as i64);
        }
        let t = Arc::new(
            Table::new(
                "f",
                vec![("fk".into(), fk.finish()), ("v".into(), v.finish())],
            )
            .unwrap(),
        );
        Box::new(Scan::new(t, &["fk", "v"], 128).unwrap())
    }

    fn join(kind: JoinKind, use_bloom: bool, dim_n: usize, fact_n: usize) -> HashJoin {
        let c = ctx();
        HashJoin::new(
            dim(dim_n),
            fact(fact_n, 10),
            vec![0],
            vec![0],
            if matches!(kind, JoinKind::Inner) {
                vec![1]
            } else {
                vec![]
            },
            kind,
            use_bloom,
            vec![],
            &c,
            "t",
        )
        .unwrap()
    }

    #[test]
    fn inner_join_matches_and_fetches_payload() {
        // dim keys 0..5; fact fk cycles 0..10 → half the fact rows match.
        let mut j = join(JoinKind::Inner, false, 5, 1000);
        assert_eq!(
            j.out_types(),
            &[DataType::I32, DataType::I64, DataType::Str]
        );
        let chunks = collect(&mut j).unwrap();
        assert_eq!(total_rows(&chunks), 500);
        for ch in &chunks {
            for p in ch.live_positions() {
                let fk = ch.column(0).as_i32()[p];
                assert!(fk < 5);
                assert_eq!(ch.column(2).as_str_vec().get(p), format!("n{fk}"));
                // v % 10 == fk by construction
                assert_eq!(ch.column(1).as_i64()[p] % 10, fk as i64);
            }
        }
    }

    #[test]
    fn inner_join_with_bloom_gives_same_result() {
        let plain = collect(&mut join(JoinKind::Inner, false, 5, 1000)).unwrap();
        let bloom = collect(&mut join(JoinKind::Inner, true, 5, 1000)).unwrap();
        assert_eq!(total_rows(&plain), total_rows(&bloom));
        let sum = |chunks: &[DataChunk]| -> i64 {
            chunks
                .iter()
                .flat_map(|c| {
                    c.live_positions()
                        .into_iter()
                        .map(move |p| c.column(1).as_i64()[p])
                })
                .sum()
        };
        assert_eq!(sum(&plain), sum(&bloom));
    }

    #[test]
    fn semi_and_anti_partition_probe() {
        let semi = collect(&mut join(JoinKind::Semi, false, 5, 1000)).unwrap();
        let anti = collect(&mut join(JoinKind::Anti, false, 5, 1000)).unwrap();
        assert_eq!(total_rows(&semi), 500);
        assert_eq!(total_rows(&anti), 500);
        for ch in &semi {
            for p in ch.live_positions() {
                assert!(ch.column(0).as_i32()[p] < 5);
            }
        }
        for ch in &anti {
            for p in ch.live_positions() {
                assert!(ch.column(0).as_i32()[p] >= 5);
            }
        }
    }

    #[test]
    fn anti_with_bloom_keeps_filtered_positions() {
        let plain = collect(&mut join(JoinKind::Anti, false, 7, 500)).unwrap();
        let bloom = collect(&mut join(JoinKind::Anti, true, 7, 500)).unwrap();
        assert_eq!(total_rows(&plain), total_rows(&bloom));
    }

    #[test]
    fn one_to_many_expansion() {
        // dim key 0..2, fact fk = i % 10 → keys 0,1 match 100 rows each...
        // plus duplicate build rows: make dim with duplicated keys to force
        // multiple matches per probe row.
        let c = ctx();
        let mut k = ColumnBuilder::with_capacity(DataType::I32, 4);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, 4);
        for (key, name) in [(0, "a"), (0, "b"), (1, "c"), (2, "d")] {
            k.push_i32(key);
            s.push_str(name);
        }
        let t = Arc::new(
            Table::new(
                "d",
                vec![("k".into(), k.finish()), ("s".into(), s.finish())],
            )
            .unwrap(),
        );
        let build: BoxOp = Box::new(Scan::new(t, &["k", "s"], 128).unwrap());
        let mut j = HashJoin::new(
            build,
            fact(10, 10),
            vec![0],
            vec![0],
            vec![1],
            JoinKind::Inner,
            false,
            vec![],
            &c,
            "t",
        )
        .unwrap();
        let chunks = collect(&mut j).unwrap();
        // fk=0 matches 2 build rows; fk=1 and fk=2 match 1 each → 4 rows.
        assert_eq!(total_rows(&chunks), 4);
    }

    #[test]
    fn left_single_fills_defaults() {
        let c = ctx();
        // build: counts per key (0..3); probe: keys 0..6
        let mut k = ColumnBuilder::with_capacity(DataType::I32, 3);
        let mut cnt = ColumnBuilder::with_capacity(DataType::I64, 3);
        for i in 0..3i32 {
            k.push_i32(i);
            cnt.push_i64(i as i64 * 100);
        }
        let t = Arc::new(
            Table::new(
                "b",
                vec![("k".into(), k.finish()), ("c".into(), cnt.finish())],
            )
            .unwrap(),
        );
        let build: BoxOp = Box::new(Scan::new(t, &["k", "c"], 128).unwrap());
        let mut j = HashJoin::new(
            build,
            fact(6, 6),
            vec![0],
            vec![0],
            vec![1],
            JoinKind::LeftSingle,
            false,
            vec![Value::I64(0)],
            &c,
            "t",
        )
        .unwrap();
        let chunks = collect(&mut j).unwrap();
        assert_eq!(total_rows(&chunks), 6);
        let ch = &chunks[0];
        for p in ch.live_positions() {
            let key = ch.column(0).as_i32()[p];
            let got = ch.column(2).as_i64()[p];
            let expect = if key < 3 { key as i64 * 100 } else { 0 };
            assert_eq!(got, expect, "key {key}");
        }
    }

    #[test]
    fn pending_matches_split_into_vector_sized_chunks() {
        // Single build key matching every fact row → expansion of 5000 rows
        // must be emitted in ≤1024-row chunks.
        let c = ctx();
        let mut k = ColumnBuilder::with_capacity(DataType::I32, 1);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, 1);
        k.push_i32(0);
        s.push_str("only");
        let t = Arc::new(
            Table::new(
                "d",
                vec![("k".into(), k.finish()), ("s".into(), s.finish())],
            )
            .unwrap(),
        );
        let build: BoxOp = Box::new(Scan::new(t, &["k", "s"], 128).unwrap());
        let mut j = HashJoin::new(
            build,
            fact(5000, 1),
            vec![0],
            vec![0],
            vec![1],
            JoinKind::Inner,
            false,
            vec![],
            &c,
            "t",
        )
        .unwrap();
        let chunks = collect(&mut j).unwrap();
        assert_eq!(total_rows(&chunks), 5000);
        for ch in &chunks {
            assert!(ch.len() <= 1024);
        }
    }

    #[test]
    fn key_list_mismatch_rejected() {
        let c = ctx();
        assert!(HashJoin::new(
            dim(5),
            fact(10, 10),
            vec![0],
            vec![0, 1],
            vec![],
            JoinKind::Semi,
            false,
            vec![],
            &c,
            "t"
        )
        .is_err());
    }
}
