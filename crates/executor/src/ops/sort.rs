//! Sort, top-N and limit operators (result finalization; plain code — the
//! paper's flavor sets do not cover sorting).

use std::cmp::Ordering;

use ma_vector::{DataChunk, DataType, Vector};

use crate::ops::{BoxOp, FrozenStore, Operator, RowStore};
use crate::ExecError;

/// One sort key: column index + direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column index in the child's schema.
    pub col: usize,
    /// Descending order when true.
    pub desc: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(col: usize) -> Self {
        SortKey { col, desc: false }
    }
    /// Descending key.
    pub fn desc(col: usize) -> Self {
        SortKey { col, desc: true }
    }
}

/// Full sort (optionally truncated to `limit` rows — a top-N).
pub struct Sort {
    child: Option<BoxOp>,
    keys: Vec<SortKey>,
    limit: Option<usize>,
    types: Vec<DataType>,
    vector_size: usize,
    out: Option<std::vec::IntoIter<DataChunk>>,
    tracker: Option<crate::adaptive::MemTracker>,
}

impl Sort {
    /// Builds a sort over `keys` (leftmost is primary).
    pub fn new(
        child: BoxOp,
        keys: Vec<SortKey>,
        limit: Option<usize>,
        vector_size: usize,
    ) -> Result<Self, ExecError> {
        let types = child.out_types().to_vec();
        for k in &keys {
            if k.col >= types.len() {
                return Err(ExecError::Plan(format!("sort key {} out of range", k.col)));
            }
        }
        Ok(Sort {
            child: Some(child),
            keys,
            limit,
            types,
            vector_size,
            out: None,
            tracker: None,
        })
    }

    /// Attaches a byte-accounting tracker the sort reports its buffered
    /// bytes to.
    pub fn with_tracker(mut self, tracker: crate::adaptive::MemTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    fn run(&mut self) -> Result<Vec<DataChunk>, ExecError> {
        let mut child = self.child.take().expect("run once");
        let mut store = RowStore::new(self.types.clone());
        let all: Vec<usize> = (0..self.types.len()).collect();
        while let Some(chunk) = child.next()? {
            store.append(&chunk, &all);
        }
        let store_bytes = store.bytes();
        let frozen = store.freeze();
        let mut idx: Vec<u32> = (0..frozen.rows() as u32).collect();
        let keys = &self.keys;
        idx.sort_by(|&a, &b| {
            for k in keys {
                let ord = compare_at(frozen.col(k.col), a as usize, b as usize);
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        if let Some(l) = self.limit {
            idx.truncate(l);
        }
        // Emit in sorted order, chunked.
        let mut chunks = Vec::new();
        let mut start = 0;
        while start < idx.len() {
            let n = (idx.len() - start).min(self.vector_size);
            let rows = &idx[start..][..n];
            let cols = (0..self.types.len())
                .map(|i| std::sync::Arc::new(frozen.gather(i, rows)))
                .collect();
            chunks.push(DataChunk::new(cols));
            start += n;
        }
        if let Some(t) = &self.tracker {
            // High-water point: the buffered input, the permutation index,
            // and the re-gathered output chunks all live at once.
            let out_bytes: u64 = chunks.iter().map(crate::ops::chunk_bytes).sum();
            t.record(
                store_bytes
                    .saturating_add((idx.len() * 4) as u64)
                    .saturating_add(out_bytes),
            );
        }
        Ok(chunks)
    }
}

fn compare_at(v: &Vector, a: usize, b: usize) -> Ordering {
    match v {
        Vector::I16(x) => x[a].cmp(&x[b]),
        Vector::I32(x) => x[a].cmp(&x[b]),
        Vector::I64(x) => x[a].cmp(&x[b]),
        Vector::F64(x) => x[a].partial_cmp(&x[b]).unwrap_or(Ordering::Equal),
        Vector::Str(x) => x.get(a).cmp(x.get(b)),
    }
}

impl Operator for Sort {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if self.out.is_none() {
            let chunks = self.run()?;
            self.out = Some(chunks.into_iter());
        }
        Ok(self.out.as_mut().unwrap().next())
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

/// Emits at most `n` live rows from the child, preserving order.
pub struct Limit {
    child: BoxOp,
    remaining: usize,
    types: Vec<DataType>,
}

impl Limit {
    /// Builds a limit of `n` rows.
    pub fn new(child: BoxOp, n: usize) -> Self {
        let types = child.out_types().to_vec();
        Limit {
            child,
            remaining: n,
            types,
        }
    }
}

impl Operator for Limit {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(chunk) = self.child.next()? else {
            return Ok(None);
        };
        let live = chunk.live_count();
        if live <= self.remaining {
            self.remaining -= live;
            return Ok(Some(chunk));
        }
        // Keep only the first `remaining` live positions.
        let keep: Vec<u32> = chunk
            .live_positions()
            .into_iter()
            .take(self.remaining)
            .map(|p| p as u32)
            .collect();
        self.remaining = 0;
        Ok(Some(
            chunk.with_sel(Some(ma_vector::SelVec::from_positions(keep))),
        ))
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

/// Convenience: fully materializes an operator's output into one
/// [`FrozenStore`] (used by query runners to produce result tables).
pub fn materialize(op: &mut dyn Operator) -> Result<FrozenStore, ExecError> {
    let types = op.out_types().to_vec();
    let all: Vec<usize> = (0..types.len()).collect();
    let mut store = RowStore::new(types);
    while let Some(chunk) = op.next()? {
        store.append(&chunk, &all);
    }
    Ok(store.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, total_rows, Scan};
    use ma_vector::{ColumnBuilder, Table};
    use std::sync::Arc;

    fn scan() -> BoxOp {
        let vals = [5i64, 1, 9, 1, 7, 3];
        let names = ["e", "a", "f", "b", "d", "c"];
        let mut v = ColumnBuilder::with_capacity(DataType::I64, 6);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, 6);
        for i in 0..6 {
            v.push_i64(vals[i]);
            s.push_str(names[i]);
        }
        let t = Arc::new(
            Table::new(
                "t",
                vec![("v".into(), v.finish()), ("s".into(), s.finish())],
            )
            .unwrap(),
        );
        Box::new(Scan::new(t, &["v", "s"], 4).unwrap())
    }

    #[test]
    fn sorts_ascending_with_tiebreak() {
        let mut sort =
            Sort::new(scan(), vec![SortKey::asc(0), SortKey::asc(1)], None, 1024).unwrap();
        let chunks = collect(&mut sort).unwrap();
        assert_eq!(total_rows(&chunks), 6);
        let ch = &chunks[0];
        assert_eq!(ch.column(0).as_i64(), &[1, 1, 3, 5, 7, 9]);
        // ties on v=1 broken by s: "a" before "b"
        assert_eq!(ch.column(1).as_str_vec().get(0), "a");
        assert_eq!(ch.column(1).as_str_vec().get(1), "b");
    }

    #[test]
    fn sorts_descending_with_limit() {
        let mut sort = Sort::new(scan(), vec![SortKey::desc(0)], Some(2), 1024).unwrap();
        let chunks = collect(&mut sort).unwrap();
        assert_eq!(total_rows(&chunks), 2);
        assert_eq!(chunks[0].column(0).as_i64(), &[9, 7]);
    }

    #[test]
    fn string_sort() {
        let mut sort = Sort::new(scan(), vec![SortKey::asc(1)], None, 1024).unwrap();
        let chunks = collect(&mut sort).unwrap();
        let s = chunks[0].column(1).as_str_vec();
        let got: Vec<&str> = s.iter().collect();
        assert_eq!(got, vec!["a", "b", "c", "d", "e", "f"]);
    }

    #[test]
    fn limit_stops_midstream() {
        let mut lim = Limit::new(scan(), 3);
        let chunks = collect(&mut lim).unwrap();
        assert_eq!(total_rows(&chunks), 3);
    }

    #[test]
    fn materialize_collects_everything() {
        let mut s = scan();
        let f = materialize(s.as_mut()).unwrap();
        assert_eq!(f.rows(), 6);
        assert_eq!(f.col(0).as_i64()[2], 9);
    }

    #[test]
    fn bad_sort_key_rejected() {
        assert!(Sort::new(scan(), vec![SortKey::asc(5)], None, 1024).is_err());
    }
}
