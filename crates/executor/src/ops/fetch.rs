//! Typed adaptive gather instances (`map_fetch_*`), shared by the join
//! operators. One instance per output column — the Fig. 4(d) primitive.

use ma_primitives::{MapFetch, MapFetchStr};
use ma_vector::{DataType, Vector};

use crate::adaptive::HeurKind;
use crate::{ExecError, PrimInstance, QueryContext};

pub(crate) enum FetchInst {
    I16(PrimInstance<MapFetch<i16>>),
    I32(PrimInstance<MapFetch<i32>>),
    I64(PrimInstance<MapFetch<i64>>),
    F64(PrimInstance<MapFetch<f64>>),
    Str(PrimInstance<MapFetchStr>),
}

impl FetchInst {
    pub(crate) fn create(ty: DataType, ctx: &QueryContext, label: &str) -> Result<Self, ExecError> {
        let sig = format!("map_fetch_{}_col", ty.sig_name());
        let lbl = format!("{label}/{sig}");
        Ok(match ty {
            DataType::I16 => FetchInst::I16(ctx.instance(&sig, lbl, HeurKind::None)?),
            DataType::I32 => FetchInst::I32(ctx.instance(&sig, lbl, HeurKind::None)?),
            DataType::I64 => FetchInst::I64(ctx.instance(&sig, lbl, HeurKind::None)?),
            DataType::F64 => FetchInst::F64(ctx.instance(&sig, lbl, HeurKind::None)?),
            DataType::Str => FetchInst::Str(ctx.instance(&sig, lbl, HeurKind::None)?),
        })
    }

    /// Dense gather: `out[j] = src[idx[j]]`.
    pub(crate) fn fetch(&mut self, src: &Vector, idx: &[u32]) -> Vector {
        let n = idx.len();
        match self {
            FetchInst::I16(inst) => {
                let s = src.as_i16();
                let mut out = vec![0i16; n];
                inst.invoke(n as u64, |f| f(&mut out, s, idx, None));
                Vector::I16(out)
            }
            FetchInst::I32(inst) => {
                let s = src.as_i32();
                let mut out = vec![0i32; n];
                inst.invoke(n as u64, |f| f(&mut out, s, idx, None));
                Vector::I32(out)
            }
            FetchInst::I64(inst) => {
                let s = src.as_i64();
                let mut out = vec![0i64; n];
                inst.invoke(n as u64, |f| f(&mut out, s, idx, None));
                Vector::I64(out)
            }
            FetchInst::F64(inst) => {
                let s = src.as_f64();
                let mut out = vec![0f64; n];
                inst.invoke(n as u64, |f| f(&mut out, s, idx, None));
                Vector::F64(out)
            }
            FetchInst::Str(inst) => {
                let s = src.as_str_vec();
                let mut out = s.writable_like(n);
                inst.invoke(n as u64, |f| f(&mut out, s, idx, None));
                Vector::Str(out)
            }
        }
    }
}
