//! Selection operator: narrows the selection vector via `sel_*` primitives.

use ma_vector::{DataChunk, DataType, SelVec};

use crate::eval::CompiledPred;
use crate::expr::Pred;
use crate::ops::{BoxOp, Operator};
use crate::{ExecError, QueryContext};

/// Filters tuples by a compiled predicate. Column data is never copied —
/// only the selection vector narrows (§1.1 *Selection Vector*).
pub struct Select {
    child: BoxOp,
    pred: CompiledPred,
    types: Vec<DataType>,
}

impl Select {
    /// Compiles `pred` against the child's schema.
    pub fn new(
        child: BoxOp,
        pred: &Pred,
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        let types = child.out_types().to_vec();
        let pred = CompiledPred::compile(pred, &types, ctx, label)?;
        Ok(Select { child, pred, types })
    }
}

impl Operator for Select {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        loop {
            let Some(chunk) = self.child.next()? else {
                return Ok(None);
            };
            let sel_in = chunk.sel().map(SelVec::as_slice);
            let out = self.pred.apply(&chunk, sel_in);
            if !out.is_empty() {
                return Ok(Some(chunk.with_sel(Some(out))));
            }
            // Whole chunk filtered out: pull the next one.
        }
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::expr::{CmpKind, Value};
    use crate::ops::{collect, total_rows, Scan};
    use ma_primitives::build_dictionary;
    use ma_vector::{ColumnBuilder, Table};
    use std::sync::Arc;

    fn ctx() -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), ExecConfig::fixed_default())
    }

    fn scan(n: usize) -> BoxOp {
        let mut a = ColumnBuilder::with_capacity(DataType::I32, n);
        for i in 0..n {
            a.push_i32(i as i32);
        }
        let t = Arc::new(Table::new("t", vec![("a".into(), a.finish())]).unwrap());
        Box::new(Scan::new(t, &["a"], 256).unwrap())
    }

    #[test]
    fn filters_and_preserves_columns() {
        let c = ctx();
        let pred = Pred::cmp_val(0, CmpKind::Lt, Value::I32(100));
        let mut sel = Select::new(scan(1000), &pred, &c, "t").unwrap();
        let chunks = collect(&mut sel).unwrap();
        assert_eq!(total_rows(&chunks), 100);
        // Column data untouched; only sel narrows.
        assert_eq!(chunks[0].len(), 256);
        assert_eq!(chunks[0].live_count(), 100);
    }

    #[test]
    fn empty_chunks_are_skipped() {
        let c = ctx();
        // Only rows 900..=999 pass; the first 3 chunks of 256 produce
        // nothing and must be skipped transparently.
        let pred = Pred::cmp_val(0, CmpKind::Ge, Value::I32(900));
        let mut sel = Select::new(scan(1000), &pred, &c, "t").unwrap();
        let chunks = collect(&mut sel).unwrap();
        assert_eq!(total_rows(&chunks), 100);
        assert!(chunks.len() <= 2);
    }

    #[test]
    fn stacked_selects_compose() {
        let c = ctx();
        let p1 = Pred::cmp_val(0, CmpKind::Lt, Value::I32(500));
        let p2 = Pred::cmp_val(0, CmpKind::Ge, Value::I32(400));
        let s1 = Select::new(scan(1000), &p1, &c, "s1").unwrap();
        let mut s2 = Select::new(Box::new(s1), &p2, &c, "s2").unwrap();
        let chunks = collect(&mut s2).unwrap();
        assert_eq!(total_rows(&chunks), 100);
        for ch in &chunks {
            for p in ch.live_positions() {
                let v = ch.column(0).as_i32()[p];
                assert!((400..500).contains(&v));
            }
        }
    }

    #[test]
    fn nothing_passes() {
        let c = ctx();
        let pred = Pred::cmp_val(0, CmpKind::Lt, Value::I32(-5));
        let mut sel = Select::new(scan(100), &pred, &c, "t").unwrap();
        assert!(sel.next().unwrap().is_none());
    }
}
