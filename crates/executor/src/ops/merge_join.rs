//! Merge join over sorted inputs, driven by the flavored
//! `mergejoin_i64_col_i64_col` kernel (Fig. 4c / Fig. 5).
//!
//! The left side must be key-sorted with *unique* keys (e.g. `orders` by
//! `o_orderkey`); the right side key-sorted, possibly with duplicates (e.g.
//! `lineitem` by `l_orderkey`). TPC-H generates both clustered this way,
//! which is exactly the setting in which Vectorwise's plans pick merge
//! joins for Q4/Q12.

use std::sync::Arc;

use ma_primitives::MergeJoinFn;
use ma_vector::{DataChunk, DataType, SelVec, Vector};

use crate::adaptive::HeurKind;
use crate::ops::fetch::FetchInst;
use crate::ops::{normalize_keys_i64, BoxOp, FrozenStore, Operator, RowStore};
use crate::{ExecError, PrimInstance, QueryContext};

/// Inner merge join: output = right columns (gathered at matches) ++ left
/// payload columns (fetched by match index).
pub struct MergeJoin {
    left: Option<BoxOp>,
    right: BoxOp,
    left_key: usize,
    right_key: usize,
    payload_idx: Vec<usize>,
    types: Vec<DataType>,

    kernel: PrimInstance<MergeJoinFn>,
    right_fetch: Vec<FetchInst>,
    payload_fetch: Vec<FetchInst>,

    lkeys: Vec<i64>,
    payload: Option<FrozenStore>,
    cursor: usize,
    // scratch
    rkeys: Vec<i64>,
}

impl MergeJoin {
    /// Builds the operator; `payload` lists left-side columns appended to
    /// the output.
    pub fn new(
        left: BoxOp,
        right: BoxOp,
        left_key: usize,
        right_key: usize,
        payload: Vec<usize>,
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        let left_types = left.out_types().to_vec();
        let right_types = right.out_types().to_vec();
        if left_key >= left_types.len() || right_key >= right_types.len() {
            return Err(ExecError::Plan("merge join key out of range".into()));
        }
        let payload_types: Vec<DataType> = payload
            .iter()
            .map(|&i| {
                left_types
                    .get(i)
                    .copied()
                    .ok_or_else(|| ExecError::Plan(format!("payload column {i} out of range")))
            })
            .collect::<Result<_, _>>()?;
        let types: Vec<DataType> = right_types
            .iter()
            .copied()
            .chain(payload_types.iter().copied())
            .collect();

        let kernel = ctx.instance(
            "mergejoin_i64_col_i64_col",
            format!("{label}/mergejoin"),
            HeurKind::None,
        )?;
        let right_fetch = right_types
            .iter()
            .map(|&t| FetchInst::create(t, ctx, label))
            .collect::<Result<_, _>>()?;
        let payload_fetch = payload_types
            .iter()
            .map(|&t| FetchInst::create(t, ctx, label))
            .collect::<Result<_, _>>()?;

        Ok(MergeJoin {
            left: Some(left),
            right,
            left_key,
            right_key,
            payload_idx: payload,
            types,
            kernel,
            right_fetch,
            payload_fetch,
            lkeys: Vec::new(),
            payload: None,
            cursor: 0,
            rkeys: Vec::new(),
        })
    }

    fn materialize_left(&mut self) -> Result<(), ExecError> {
        let mut child = self.left.take().expect("materialize once");
        let left_types = child.out_types().to_vec();
        let payload_types: Vec<DataType> =
            self.payload_idx.iter().map(|&i| left_types[i]).collect();
        let mut payload = RowStore::new(payload_types);
        let mut scratch = Vec::new();
        let mut last: Option<i64> = None;
        while let Some(chunk) = child.next()? {
            let positions = chunk.live_positions();
            normalize_keys_i64(chunk.column(self.left_key), &mut scratch);
            for &p in &positions {
                let k = scratch[p];
                if let Some(prev) = last {
                    debug_assert!(prev < k, "merge join left keys must be sorted and unique");
                }
                last = Some(k);
                self.lkeys.push(k);
            }
            payload.append(&chunk, &self.payload_idx);
        }
        self.payload = Some(payload.freeze());
        Ok(())
    }
}

impl Operator for MergeJoin {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if self.payload.is_none() {
            self.materialize_left()?;
        }
        loop {
            let Some(chunk) = self.right.next()? else {
                return Ok(None);
            };
            let live = chunk.live_count();
            if live == 0 {
                continue;
            }
            let sel_owned = chunk.sel().cloned();
            let sel = sel_owned.as_ref().map(SelVec::as_slice);
            normalize_keys_i64(chunk.column(self.right_key), &mut self.rkeys);

            let mut rpos = vec![0u32; live];
            let mut lidx = vec![0u32; live];
            let mut cursor = self.cursor;
            let lkeys = &self.lkeys;
            let rkeys = &self.rkeys;
            let k = self.kernel.invoke(live as u64, |f| {
                f(&mut cursor, lkeys, rkeys, sel, &mut rpos, &mut lidx)
            });
            self.cursor = cursor;
            if k == 0 {
                continue;
            }
            rpos.truncate(k);
            lidx.truncate(k);

            let payload = self.payload.as_ref().expect("materialized");
            let mut cols: Vec<Arc<Vector>> = Vec::with_capacity(self.types.len());
            for (ci, inst) in self.right_fetch.iter_mut().enumerate() {
                cols.push(Arc::new(inst.fetch(chunk.column(ci), &rpos)));
            }
            for (pi, inst) in self.payload_fetch.iter_mut().enumerate() {
                cols.push(Arc::new(inst.fetch(payload.col(pi), &lidx)));
            }
            return Ok(Some(DataChunk::new(cols)));
        }
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::expr::{CmpKind, Pred, Value};
    use crate::ops::{collect, total_rows, Scan, Select};
    use ma_primitives::build_dictionary;
    use ma_vector::{ColumnBuilder, Table};

    fn ctx() -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), ExecConfig::fixed_default())
    }

    /// Left: unique sorted keys 0,2,4,..., payload = key*10.
    fn left(n: usize) -> BoxOp {
        let mut k = ColumnBuilder::with_capacity(DataType::I64, n);
        let mut p = ColumnBuilder::with_capacity(DataType::I64, n);
        for i in 0..n {
            k.push_i64((i * 2) as i64);
            p.push_i64((i * 20) as i64);
        }
        let t = Arc::new(
            Table::new(
                "l",
                vec![("k".into(), k.finish()), ("p".into(), p.finish())],
            )
            .unwrap(),
        );
        Box::new(Scan::new(t, &["k", "p"], 64).unwrap())
    }

    /// Right: sorted keys 0,1,2,... with duplicates (each key ×2).
    fn right(n: usize) -> BoxOp {
        let mut k = ColumnBuilder::with_capacity(DataType::I64, n);
        let mut v = ColumnBuilder::with_capacity(DataType::I32, n);
        for i in 0..n {
            k.push_i64((i / 2) as i64);
            v.push_i32(i as i32);
        }
        let t = Arc::new(
            Table::new(
                "r",
                vec![("k".into(), k.finish()), ("v".into(), v.finish())],
            )
            .unwrap(),
        );
        Box::new(Scan::new(t, &["k", "v"], 64).unwrap())
    }

    #[test]
    fn joins_sorted_inputs_across_chunks() {
        let c = ctx();
        let mut j = MergeJoin::new(left(100), right(400), 0, 0, vec![1], &c, "t").unwrap();
        assert_eq!(
            j.out_types(),
            &[DataType::I64, DataType::I32, DataType::I64]
        );
        let chunks = collect(&mut j).unwrap();
        // Right keys 0..199; left keys = even 0..198 → 100 matching keys × 2
        // duplicates = 200 rows.
        assert_eq!(total_rows(&chunks), 200);
        for ch in &chunks {
            for p in ch.live_positions() {
                let k = ch.column(0).as_i64()[p];
                assert_eq!(k % 2, 0);
                assert_eq!(ch.column(2).as_i64()[p], k * 10);
            }
        }
    }

    #[test]
    fn respects_right_selection_vector() {
        let c = ctx();
        let pred = Pred::cmp_val(1, CmpKind::Lt, Value::I32(100));
        let sel = Select::new(right(400), &pred, &c, "s").unwrap();
        let mut j = MergeJoin::new(left(100), Box::new(sel), 0, 0, vec![1], &c, "t").unwrap();
        let chunks = collect(&mut j).unwrap();
        // v < 100 → right rows 0..99 → keys 0..49, even keys 0..48 → 25 keys × 2.
        assert_eq!(total_rows(&chunks), 50);
    }

    #[test]
    fn empty_right_side() {
        let c = ctx();
        let pred = Pred::cmp_val(1, CmpKind::Lt, Value::I32(-1));
        let sel = Select::new(right(100), &pred, &c, "s").unwrap();
        let mut j = MergeJoin::new(left(10), Box::new(sel), 0, 0, vec![], &c, "t").unwrap();
        assert!(j.next().unwrap().is_none());
    }
}
