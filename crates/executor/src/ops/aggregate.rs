//! Aggregation operators.
//!
//! [`HashAggregate`] implements vectorized hash aggregation exactly as §1
//! sketches: per input vector it computes a hash vector (`map_hash_*` /
//! `map_rehash_*` instances), finds-or-inserts group ids
//! (`hash_insertcheck_*`, the primitive of Fig. 4e), then updates
//! accumulators with grouped `aggr_*` primitives. [`StreamAggregate`]
//! handles the ungrouped case with `aggr0_*` primitives.

use std::sync::Arc;

use ma_primitives::{
    AggrCountGrouped, AggrMinMaxF64, AggrMinMaxF64Grouped, AggrMinMaxI64, AggrMinMaxI64Grouped,
    AggrSumF64, AggrSumF64Grouped, AggrSumI64, AggrSumI64Grouped, GroupInsertCheck, GroupTable,
    MapHash, MapHashStr, MapRehash, MapRehashStr, StrGroupInsertCheck, StrGroupTable,
};
use ma_vector::{ColumnBuilder, DataChunk, DataType, SelVec, StrVec, Vector};

use crate::adaptive::HeurKind;
use crate::ops::{normalize_keys_i64, BoxOp, Operator, RowStore};
use crate::{ExecError, PrimInstance, QueryContext};

/// An aggregate function over an input column (by index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// 128-bit-accumulated sum of an `i64` column, emitted as `i64`.
    SumI64(usize),
    /// Sum of an `f64` column.
    SumF64(usize),
    /// `COUNT(*)` over live tuples.
    CountStar,
    /// Minimum of an `i64` column.
    MinI64(usize),
    /// Maximum of an `i64` column.
    MaxI64(usize),
    /// Minimum of an `f64` column.
    MinF64(usize),
    /// Maximum of an `f64` column.
    MaxF64(usize),
}

impl AggSpec {
    fn out_type(&self) -> DataType {
        match self {
            AggSpec::SumI64(_) | AggSpec::CountStar | AggSpec::MinI64(_) | AggSpec::MaxI64(_) => {
                DataType::I64
            }
            AggSpec::SumF64(_) | AggSpec::MinF64(_) | AggSpec::MaxF64(_) => DataType::F64,
        }
    }
}

// --- grouped accumulator buffers -------------------------------------------

enum AccBuf {
    SumI64 {
        inst: PrimInstance<AggrSumI64Grouped>,
        accs: Vec<i128>,
        col: usize,
    },
    SumF64 {
        inst: PrimInstance<AggrSumF64Grouped>,
        accs: Vec<f64>,
        col: usize,
    },
    Count {
        inst: PrimInstance<AggrCountGrouped>,
        accs: Vec<i64>,
    },
    MinI64 {
        inst: PrimInstance<AggrMinMaxI64Grouped>,
        accs: Vec<i64>,
        col: usize,
    },
    MaxI64 {
        inst: PrimInstance<AggrMinMaxI64Grouped>,
        accs: Vec<i64>,
        col: usize,
    },
    MinF64 {
        inst: PrimInstance<AggrMinMaxF64Grouped>,
        accs: Vec<f64>,
        col: usize,
    },
    MaxF64 {
        inst: PrimInstance<AggrMinMaxF64Grouped>,
        accs: Vec<f64>,
        col: usize,
    },
}

impl AccBuf {
    /// Live accumulator bytes (length-based): 16 per group for the
    /// 128-bit sums, 8 otherwise. Reported by the byte-accounting facade.
    fn bytes(&self) -> u64 {
        match self {
            AccBuf::SumI64 { accs, .. } => (accs.len() as u64).saturating_mul(16),
            AccBuf::SumF64 { accs, .. }
            | AccBuf::MinF64 { accs, .. }
            | AccBuf::MaxF64 { accs, .. } => (accs.len() as u64).saturating_mul(8),
            AccBuf::Count { accs, .. } => (accs.len() as u64).saturating_mul(8),
            AccBuf::MinI64 { accs, .. } | AccBuf::MaxI64 { accs, .. } => {
                (accs.len() as u64).saturating_mul(8)
            }
        }
    }

    fn create(spec: AggSpec, ctx: &QueryContext, label: &str) -> Result<Self, ExecError> {
        Ok(match spec {
            AggSpec::SumI64(col) => AccBuf::SumI64 {
                inst: ctx.instance(
                    "aggr_sum128_i64_col",
                    format!("{label}/aggr_sum128_i64"),
                    HeurKind::None,
                )?,
                accs: Vec::new(),
                col,
            },
            AggSpec::SumF64(col) => AccBuf::SumF64 {
                inst: ctx.instance(
                    "aggr_sum_f64_col",
                    format!("{label}/aggr_sum_f64"),
                    HeurKind::None,
                )?,
                accs: Vec::new(),
                col,
            },
            AggSpec::CountStar => AccBuf::Count {
                inst: ctx.instance("aggr_count", format!("{label}/aggr_count"), HeurKind::None)?,
                accs: Vec::new(),
            },
            AggSpec::MinI64(col) => AccBuf::MinI64 {
                inst: ctx.instance(
                    "aggr_min_i64_col",
                    format!("{label}/aggr_min_i64"),
                    HeurKind::None,
                )?,
                accs: Vec::new(),
                col,
            },
            AggSpec::MaxI64(col) => AccBuf::MaxI64 {
                inst: ctx.instance(
                    "aggr_max_i64_col",
                    format!("{label}/aggr_max_i64"),
                    HeurKind::None,
                )?,
                accs: Vec::new(),
                col,
            },
            AggSpec::MinF64(col) => AccBuf::MinF64 {
                inst: ctx.instance(
                    "aggr_min_f64_col",
                    format!("{label}/aggr_min_f64"),
                    HeurKind::None,
                )?,
                accs: Vec::new(),
                col,
            },
            AggSpec::MaxF64(col) => AccBuf::MaxF64 {
                inst: ctx.instance(
                    "aggr_max_f64_col",
                    format!("{label}/aggr_max_f64"),
                    HeurKind::None,
                )?,
                accs: Vec::new(),
                col,
            },
        })
    }

    fn grow(&mut self, groups: usize) {
        match self {
            AccBuf::SumI64 { accs, .. } => accs.resize(groups, 0),
            AccBuf::SumF64 { accs, .. } => accs.resize(groups, 0.0),
            AccBuf::Count { accs, .. } => accs.resize(groups, 0),
            AccBuf::MinI64 { accs, .. } => accs.resize(groups, i64::MAX),
            AccBuf::MaxI64 { accs, .. } => accs.resize(groups, i64::MIN),
            AccBuf::MinF64 { accs, .. } => accs.resize(groups, f64::INFINITY),
            AccBuf::MaxF64 { accs, .. } => accs.resize(groups, f64::NEG_INFINITY),
        }
    }

    fn update(&mut self, chunk: &DataChunk, gids: &[u32], sel: Option<&[u32]>, live: u64) {
        match self {
            AccBuf::SumI64 { inst, accs, col } => {
                let c = chunk.column(*col).as_i64();
                inst.invoke(live, |f| f(accs, gids, c, sel));
            }
            AccBuf::SumF64 { inst, accs, col } => {
                let c = chunk.column(*col).as_f64();
                inst.invoke(live, |f| f(accs, gids, c, sel));
            }
            AccBuf::Count { inst, accs } => {
                inst.invoke(live, |f| f(accs, gids, sel));
            }
            AccBuf::MinI64 { inst, accs, col } | AccBuf::MaxI64 { inst, accs, col } => {
                let c = chunk.column(*col).as_i64();
                inst.invoke(live, |f| f(accs, gids, c, sel));
            }
            AccBuf::MinF64 { inst, accs, col } | AccBuf::MaxF64 { inst, accs, col } => {
                let c = chunk.column(*col).as_f64();
                inst.invoke(live, |f| f(accs, gids, c, sel));
            }
        }
    }

    fn finish(self) -> Vector {
        match self {
            AccBuf::SumI64 { accs, .. } => Vector::I64(
                accs.into_iter()
                    .map(|v| i64::try_from(v).expect("sum exceeds i64 output range"))
                    .collect(),
            ),
            AccBuf::SumF64 { accs, .. } => Vector::F64(accs),
            AccBuf::Count { accs, .. } => Vector::I64(accs),
            AccBuf::MinI64 { accs, .. } | AccBuf::MaxI64 { accs, .. } => Vector::I64(accs),
            AccBuf::MinF64 { accs, .. } | AccBuf::MaxF64 { accs, .. } => Vector::F64(accs),
        }
    }
}

// --- key handling -----------------------------------------------------------

enum HashStep {
    /// First key column, integer: hash the normalized i64 scratch.
    HashI64(PrimInstance<MapHash<i64>>, usize),
    /// Subsequent integer key column: combine.
    RehashI64(PrimInstance<MapRehash<i64>>, usize),
    /// First key column, string.
    HashStr(PrimInstance<MapHashStr>, usize),
    /// Subsequent string key column.
    RehashStr(PrimInstance<MapRehashStr>, usize),
}

enum KeyTable {
    /// One integer key column: `GroupTable` on the normalized value.
    Int {
        table: GroupTable,
        insert: PrimInstance<GroupInsertCheck>,
    },
    /// One string key column, or several columns serialized into a scratch
    /// string key: `StrGroupTable` (the Fig. 4(e) path).
    Str {
        table: StrGroupTable,
        insert: PrimInstance<StrGroupInsertCheck>,
        /// `None`: use the single string key column directly.
        /// `Some(_)`: serialize these columns per tuple.
        serialize: Option<Vec<usize>>,
    },
}

/// How many new groups to reserve room for before an insertcheck pass:
/// `live` (every live tuple may open a group) clamped to the groups a
/// proven bound still permits — a sound bound guarantees at most
/// `hint - groups` further distinct keys, so the clamp never
/// under-reserves (the group tables never rehash inside `find_or_insert`,
/// and probing a *present* key terminates at any load factor, so a
/// zero-room pass over already-seen keys is safe). An unsound bound is
/// caught by the post-pass group-count guard in `consume_chunk`: the
/// table's ≤50% load invariant leaves at least `hint` free slots of
/// headroom, so the offending pass still terminates and errors out.
fn clamped_reserve(live: usize, groups: usize, hint: Option<usize>) -> usize {
    match hint {
        Some(h) => live.min(h.saturating_sub(groups)),
        None => live,
    }
}

/// Serializes one tuple's group-key columns into a scratch string.
/// Integers are fixed-width hex (order-irrelevant, collision-free);
/// strings are length-prefixed to keep the encoding injective.
fn serialize_key(chunk: &DataChunk, cols: &[usize], pos: usize, out: &mut String) {
    use std::fmt::Write;
    out.clear();
    for &c in cols {
        match chunk.column(c).as_ref() {
            Vector::I16(v) => write!(out, "{:04x};", v[pos] as u16).unwrap(),
            Vector::I32(v) => write!(out, "{:08x};", v[pos] as u32).unwrap(),
            Vector::I64(v) => write!(out, "{:016x};", v[pos] as u64).unwrap(),
            Vector::Str(v) => {
                let s = v.get(pos);
                write!(out, "{:04x}", s.len() as u16).unwrap();
                out.push_str(s);
                out.push(';');
            }
            Vector::F64(_) => panic!("f64 group keys unsupported"),
        }
    }
}

// --- the operator ------------------------------------------------------------

/// Hash aggregation: `GROUP BY group_cols` computing `specs`.
pub struct HashAggregate {
    child: BoxOp,
    group_cols: Vec<usize>,
    hash_steps: Vec<HashStep>,
    key_table: KeyTable,
    accs: Vec<AccBuf>,
    key_builders: Vec<ColumnBuilder>,
    types: Vec<DataType>,
    vector_size: usize,
    done: Option<std::vec::IntoIter<DataChunk>>,
    /// The analyzer's proven distinct-group bound, when lowered from a
    /// plan: clamps speculative reservations (`with_group_bound`).
    group_hint: Option<usize>,
    /// Byte-accounting slot recording this instance's high-water mark.
    tracker: Option<crate::adaptive::MemTracker>,
    // scratch
    hashes: Vec<u64>,
    gids: Vec<u32>,
    keyscratch: Vec<i64>,
}

impl HashAggregate {
    /// Builds the operator. `group_cols` must be non-empty (use
    /// [`StreamAggregate`] otherwise); integer and string key columns are
    /// supported.
    pub fn new(
        child: BoxOp,
        group_cols: Vec<usize>,
        specs: Vec<AggSpec>,
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        if group_cols.is_empty() {
            return Err(ExecError::Plan(
                "HashAggregate requires group columns; use StreamAggregate".into(),
            ));
        }
        let in_types = child.out_types().to_vec();
        for &c in &group_cols {
            if c >= in_types.len() {
                return Err(ExecError::Plan(format!("group column {c} out of range")));
            }
        }

        // Hash pipeline over the key columns.
        let mut hash_steps = Vec::with_capacity(group_cols.len());
        for (k, &c) in group_cols.iter().enumerate() {
            let is_str = in_types[c] == DataType::Str;
            let step = match (k == 0, is_str) {
                (true, false) => HashStep::HashI64(
                    ctx.instance(
                        "map_hash_i64_col",
                        format!("{label}/map_hash"),
                        HeurKind::None,
                    )?,
                    c,
                ),
                (false, false) => HashStep::RehashI64(
                    ctx.instance(
                        "map_rehash_i64_col",
                        format!("{label}/map_rehash"),
                        HeurKind::None,
                    )?,
                    c,
                ),
                (true, true) => HashStep::HashStr(
                    ctx.instance(
                        "map_hash_str_col",
                        format!("{label}/map_hash_str"),
                        HeurKind::None,
                    )?,
                    c,
                ),
                (false, true) => HashStep::RehashStr(
                    ctx.instance(
                        "map_rehash_str_col",
                        format!("{label}/map_rehash_str"),
                        HeurKind::None,
                    )?,
                    c,
                ),
            };
            hash_steps.push(step);
        }

        // Group table choice.
        let key_table = if group_cols.len() == 1 && in_types[group_cols[0]] != DataType::Str {
            KeyTable::Int {
                table: GroupTable::new(),
                insert: ctx.instance(
                    "hash_insertcheck_u64_col",
                    format!("{label}/insertcheck_u64"),
                    HeurKind::None,
                )?,
            }
        } else {
            let serialize = if group_cols.len() == 1 {
                None
            } else {
                Some(group_cols.clone())
            };
            KeyTable::Str {
                table: StrGroupTable::new(),
                insert: ctx.instance(
                    "hash_insertcheck_str_col",
                    format!("{label}/insertcheck_str"),
                    HeurKind::None,
                )?,
                serialize,
            }
        };

        let accs = specs
            .iter()
            .map(|&s| AccBuf::create(s, ctx, label))
            .collect::<Result<Vec<_>, _>>()?;

        let mut types: Vec<DataType> = group_cols.iter().map(|&c| in_types[c]).collect();
        types.extend(specs.iter().map(AggSpec::out_type));

        let key_builders = group_cols
            .iter()
            .map(|&c| ColumnBuilder::with_capacity(in_types[c], 1024))
            .collect();

        Ok(HashAggregate {
            child,
            group_cols,
            hash_steps,
            key_table,
            accs,
            key_builders,
            types,
            vector_size: ctx.vector_size(),
            done: None,
            group_hint: None,
            tracker: None,
            hashes: Vec::new(),
            gids: Vec::new(),
            keyscratch: Vec::new(),
        })
    }

    /// Clamps speculative reservations to the analyzer's proven
    /// distinct-group bound: key builders pre-allocate `min(1024, bound)`
    /// rows, and per-chunk group-table reserves never exceed the groups
    /// the bound still permits. Call before the first chunk is consumed.
    pub fn with_group_bound(mut self, bound: usize) -> Self {
        self.group_hint = Some(bound);
        let cap = bound.min(1024);
        self.key_builders = self
            .group_cols
            .iter()
            .enumerate()
            .map(|(i, _)| ColumnBuilder::with_capacity(self.types[i], cap))
            .collect();
        self
    }

    /// Attaches a byte-accounting slot; the operator records its live
    /// table + builder + accumulator bytes after every consumed chunk.
    pub fn with_tracker(mut self, tracker: crate::adaptive::MemTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Live resident bytes of the aggregation state (length-based).
    fn resident_bytes(&self) -> u64 {
        let table = match &self.key_table {
            KeyTable::Int { table, .. } => table.bytes(),
            KeyTable::Str { table, .. } => table.bytes(),
        };
        let builders = self
            .key_builders
            .iter()
            .fold(0u64, |a, b| a.saturating_add(b.bytes() as u64));
        let accs = self
            .accs
            .iter()
            .fold(0u64, |a, b| a.saturating_add(b.bytes()));
        table.saturating_add(builders).saturating_add(accs)
    }

    fn consume_chunk(&mut self, chunk: &DataChunk) -> Result<(), ExecError> {
        let n = chunk.len();
        let sel_owned = chunk.sel().cloned();
        let sel = sel_owned.as_ref().map(SelVec::as_slice);
        let live = chunk.live_count() as u64;
        if live == 0 {
            return Ok(());
        }
        self.hashes.resize(n.max(self.hashes.len()), 0);
        self.gids.resize(n.max(self.gids.len()), 0);
        let hashes = &mut self.hashes[..n];
        let gids = &mut self.gids[..n];

        // 1. hash pipeline
        for step in &mut self.hash_steps {
            match step {
                HashStep::HashI64(inst, c) => {
                    normalize_keys_i64(chunk.column(*c), &mut self.keyscratch);
                    let keys = &self.keyscratch;
                    inst.invoke(live, |f| f(hashes, keys, sel));
                }
                HashStep::RehashI64(inst, c) => {
                    normalize_keys_i64(chunk.column(*c), &mut self.keyscratch);
                    let keys = &self.keyscratch;
                    inst.invoke(live, |f| f(hashes, keys, sel));
                }
                HashStep::HashStr(inst, c) => {
                    let keys = chunk.column(*c).as_str_vec();
                    inst.invoke(live, |f| f(hashes, keys, sel));
                }
                HashStep::RehashStr(inst, c) => {
                    let keys = chunk.column(*c).as_str_vec();
                    inst.invoke(live, |f| f(hashes, keys, sel));
                }
            }
        }

        // 2. insertcheck (group-id assignment)
        let prev_groups;
        let groups_now;
        match &mut self.key_table {
            KeyTable::Int { table, insert } => {
                prev_groups = table.groups();
                normalize_keys_i64(chunk.column(self.group_cols[0]), &mut self.keyscratch);
                let keys_u64: Vec<u64> = self.keyscratch.iter().map(|&k| k as u64).collect();
                table.reserve(clamped_reserve(
                    live as usize,
                    table.groups() as usize,
                    self.group_hint,
                ));
                groups_now = insert.invoke(live, |f| f(table, hashes, &keys_u64, gids, sel));
            }
            KeyTable::Str {
                table,
                insert,
                serialize,
            } => {
                prev_groups = table.groups();
                table.reserve(clamped_reserve(
                    live as usize,
                    table.groups() as usize,
                    self.group_hint,
                ));
                match serialize {
                    None => {
                        let keys = chunk.column(self.group_cols[0]).as_str_vec();
                        groups_now = insert.invoke(live, |f| f(table, hashes, keys, gids, sel));
                    }
                    Some(cols) => {
                        // Serialize live tuples' keys into a scratch StrVec.
                        // The hash pipeline above already hashed the raw
                        // columns; the serialized key is only the equality
                        // witness, so re-hash it for table consistency.
                        let mut strings = vec![String::new(); n];
                        let mut buf = String::new();
                        match sel {
                            Some(s) => {
                                for &i in s {
                                    serialize_key(chunk, cols, i as usize, &mut buf);
                                    strings[i as usize] = buf.clone();
                                }
                            }
                            None => {
                                for (i, slot) in strings.iter_mut().enumerate() {
                                    serialize_key(chunk, cols, i, &mut buf);
                                    *slot = buf.clone();
                                }
                            }
                        }
                        let keys = StrVec::from_strings(&strings);
                        groups_now = insert.invoke(live, |f| f(table, hashes, &keys, gids, sel));
                    }
                }
            }
        }

        // The clamped reservation above leans on the proven bound; verify
        // it held rather than trusting the analyzer blindly. (The ≤50%
        // load invariant guarantees the pass itself terminated.)
        if let Some(h) = self.group_hint {
            if groups_now as usize > h {
                return Err(ExecError::Plan(format!(
                    "proven group bound violated: {groups_now} groups exceed \
                     the analyzer's bound of {h} (unsound analysis)"
                )));
            }
        }

        // 3. record representative key values for new groups, in gid order
        // (insertcheck assigns fresh gids densely, in position order).
        if groups_now > prev_groups {
            let mut next = prev_groups;
            let positions = chunk.live_positions();
            for p in positions {
                if gids[p] == next {
                    for (b, &c) in self.key_builders.iter_mut().zip(&self.group_cols) {
                        match chunk.column(c).as_ref() {
                            Vector::I16(v) => b.push_i16(v[p]),
                            Vector::I32(v) => b.push_i32(v[p]),
                            Vector::I64(v) => b.push_i64(v[p]),
                            Vector::F64(v) => b.push_f64(v[p]),
                            Vector::Str(v) => b.push_str(v.get(p)),
                        }
                    }
                    next += 1;
                    if next == groups_now {
                        break;
                    }
                }
            }
            debug_assert_eq!(next, groups_now, "dense gid assignment violated");
        }

        // 4. update accumulators
        for acc in &mut self.accs {
            acc.grow(groups_now as usize);
            acc.update(chunk, gids, sel, live);
        }

        if let Some(t) = &self.tracker {
            t.record(self.resident_bytes());
        }
        Ok(())
    }

    fn finalize(&mut self) -> Vec<DataChunk> {
        let groups = match &self.key_table {
            KeyTable::Int { table, .. } => table.groups() as usize,
            KeyTable::Str { table, .. } => table.groups() as usize,
        };
        // Ensure accumulators cover groups even if zero chunks arrived.
        for acc in &mut self.accs {
            acc.grow(groups);
        }
        let mut store = RowStore::new(self.types.clone());
        // Build one big chunk column-wise: keys then aggregates.
        let mut cols: Vec<Arc<Vector>> = Vec::with_capacity(self.types.len());
        for b in std::mem::take(&mut self.key_builders) {
            let col = b.finish();
            cols.push(Arc::new(col.slice_vector(0, groups)));
        }
        for acc in std::mem::take(&mut self.accs) {
            cols.push(Arc::new(acc.finish()));
        }
        if groups == 0 {
            return Vec::new();
        }
        let chunk = DataChunk::new(cols);
        store.append(&chunk, &(0..self.types.len()).collect::<Vec<_>>());
        if let Some(t) = &self.tracker {
            // Emission phase: the table is still resident alongside the
            // materialized output copy (covered by the bound's output
            // term).
            let table = match &self.key_table {
                KeyTable::Int { table, .. } => table.bytes(),
                KeyTable::Str { table, .. } => table.bytes(),
            };
            t.record(table.saturating_add(store.bytes()));
        }
        store.freeze().to_chunks(self.vector_size)
    }
}

impl Operator for HashAggregate {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if self.done.is_none() {
            while let Some(chunk) = self.child.next()? {
                self.consume_chunk(&chunk)?;
            }
            self.done = Some(self.finalize().into_iter());
        }
        Ok(self.done.as_mut().unwrap().next())
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

// --- ungrouped ---------------------------------------------------------------

enum Acc0 {
    SumI64 {
        inst: PrimInstance<AggrSumI64>,
        acc: i128,
        col: usize,
    },
    SumF64 {
        inst: PrimInstance<AggrSumF64>,
        acc: f64,
        col: usize,
    },
    Count {
        acc: i64,
    },
    MinI64 {
        inst: PrimInstance<AggrMinMaxI64>,
        acc: i64,
        col: usize,
    },
    MaxI64 {
        inst: PrimInstance<AggrMinMaxI64>,
        acc: i64,
        col: usize,
    },
    MinF64 {
        inst: PrimInstance<AggrMinMaxF64>,
        acc: f64,
        col: usize,
    },
    MaxF64 {
        inst: PrimInstance<AggrMinMaxF64>,
        acc: f64,
        col: usize,
    },
}

/// Ungrouped aggregation: one output row.
pub struct StreamAggregate {
    child: BoxOp,
    accs: Vec<Acc0>,
    types: Vec<DataType>,
    done: bool,
}

impl StreamAggregate {
    /// Builds the operator over `specs`.
    pub fn new(
        child: BoxOp,
        specs: Vec<AggSpec>,
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        let types = specs.iter().map(AggSpec::out_type).collect();
        let accs = specs
            .iter()
            .map(|&s| -> Result<Acc0, ExecError> {
                Ok(match s {
                    AggSpec::SumI64(col) => Acc0::SumI64 {
                        inst: ctx.instance(
                            "aggr0_sum128_i64_col",
                            format!("{label}/aggr0_sum128_i64"),
                            HeurKind::None,
                        )?,
                        acc: 0,
                        col,
                    },
                    AggSpec::SumF64(col) => Acc0::SumF64 {
                        inst: ctx.instance(
                            "aggr0_sum_f64_col",
                            format!("{label}/aggr0_sum_f64"),
                            HeurKind::None,
                        )?,
                        acc: 0.0,
                        col,
                    },
                    AggSpec::CountStar => Acc0::Count { acc: 0 },
                    AggSpec::MinI64(col) => Acc0::MinI64 {
                        inst: ctx.instance(
                            "aggr0_min_i64_col",
                            format!("{label}/aggr0_min_i64"),
                            HeurKind::None,
                        )?,
                        acc: i64::MAX,
                        col,
                    },
                    AggSpec::MaxI64(col) => Acc0::MaxI64 {
                        inst: ctx.instance(
                            "aggr0_max_i64_col",
                            format!("{label}/aggr0_max_i64"),
                            HeurKind::None,
                        )?,
                        acc: i64::MIN,
                        col,
                    },
                    AggSpec::MinF64(col) => Acc0::MinF64 {
                        inst: ctx.instance(
                            "aggr0_min_f64_col",
                            format!("{label}/aggr0_min_f64"),
                            HeurKind::None,
                        )?,
                        acc: f64::INFINITY,
                        col,
                    },
                    AggSpec::MaxF64(col) => Acc0::MaxF64 {
                        inst: ctx.instance(
                            "aggr0_max_f64_col",
                            format!("{label}/aggr0_max_f64"),
                            HeurKind::None,
                        )?,
                        acc: f64::NEG_INFINITY,
                        col,
                    },
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StreamAggregate {
            child,
            accs,
            types,
            done: false,
        })
    }
}

impl Operator for StreamAggregate {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if self.done {
            return Ok(None);
        }
        while let Some(chunk) = self.child.next()? {
            let sel_owned = chunk.sel().cloned();
            let sel = sel_owned.as_ref().map(SelVec::as_slice);
            let live = chunk.live_count() as u64;
            for acc in &mut self.accs {
                match acc {
                    Acc0::SumI64 { inst, acc, col } => {
                        let c = chunk.column(*col).as_i64();
                        *acc += inst.invoke(live, |f| f(c, sel));
                    }
                    Acc0::SumF64 { inst, acc, col } => {
                        let c = chunk.column(*col).as_f64();
                        *acc += inst.invoke(live, |f| f(c, sel));
                    }
                    Acc0::Count { acc } => *acc += live as i64,
                    Acc0::MinI64 { inst, acc, col } => {
                        let c = chunk.column(*col).as_i64();
                        *acc = (*acc).min(inst.invoke(live, |f| f(c, sel)));
                    }
                    Acc0::MaxI64 { inst, acc, col } => {
                        let c = chunk.column(*col).as_i64();
                        *acc = (*acc).max(inst.invoke(live, |f| f(c, sel)));
                    }
                    Acc0::MinF64 { inst, acc, col } => {
                        let c = chunk.column(*col).as_f64();
                        *acc = (*acc).min(inst.invoke(live, |f| f(c, sel)));
                    }
                    Acc0::MaxF64 { inst, acc, col } => {
                        let c = chunk.column(*col).as_f64();
                        *acc = (*acc).max(inst.invoke(live, |f| f(c, sel)));
                    }
                }
            }
        }
        self.done = true;
        let cols = self
            .accs
            .iter()
            .map(|acc| {
                Arc::new(match acc {
                    Acc0::SumI64 { acc, .. } => {
                        Vector::I64(vec![i64::try_from(*acc).expect("sum overflow")])
                    }
                    Acc0::SumF64 { acc, .. } => Vector::F64(vec![*acc]),
                    Acc0::Count { acc } => Vector::I64(vec![*acc]),
                    Acc0::MinI64 { acc, .. } | Acc0::MaxI64 { acc, .. } => Vector::I64(vec![*acc]),
                    Acc0::MinF64 { acc, .. } | Acc0::MaxF64 { acc, .. } => Vector::F64(vec![*acc]),
                })
            })
            .collect();
        Ok(Some(DataChunk::new(cols)))
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::expr::{CmpKind, Pred, Value};
    use crate::ops::{collect, total_rows, Scan, Select};
    use ma_primitives::build_dictionary;
    use ma_vector::Table;

    fn ctx() -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), ExecConfig::fixed_default())
    }

    /// Table: k in 0..7 cycling, v = row index, s in {"a","b","c"} cycling.
    fn scan(n: usize) -> BoxOp {
        let mut k = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut v = ColumnBuilder::with_capacity(DataType::I64, n);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, n);
        let names = ["a", "b", "c"];
        for i in 0..n {
            k.push_i32((i % 7) as i32);
            v.push_i64(i as i64);
            s.push_str(names[i % 3]);
        }
        let t = Arc::new(
            Table::new(
                "t",
                vec![
                    ("k".into(), k.finish()),
                    ("v".into(), v.finish()),
                    ("s".into(), s.finish()),
                ],
            )
            .unwrap(),
        );
        Box::new(Scan::new(t, &["k", "v", "s"], 128).unwrap())
    }

    #[test]
    fn single_int_key_grouping() {
        let c = ctx();
        let mut agg = HashAggregate::new(
            scan(700),
            vec![0],
            vec![AggSpec::CountStar, AggSpec::SumI64(1)],
            &c,
            "t",
        )
        .unwrap();
        let chunks = collect(&mut agg).unwrap();
        assert_eq!(total_rows(&chunks), 7);
        let ch = &chunks[0];
        // Each key occurs 100 times.
        for g in 0..7 {
            assert_eq!(ch.column(1).as_i64()[g], 100);
        }
        // Sums: key appears at rows key, key+7, ... → sum = 100*key + 7*(0+..+99)
        for g in 0..7 {
            let key = ch.column(0).as_i32()[g] as i64;
            assert_eq!(ch.column(2).as_i64()[g], 100 * key + 7 * 4950);
        }
    }

    #[test]
    fn single_str_key_grouping() {
        let c = ctx();
        let mut agg =
            HashAggregate::new(scan(300), vec![2], vec![AggSpec::CountStar], &c, "t").unwrap();
        let chunks = collect(&mut agg).unwrap();
        assert_eq!(total_rows(&chunks), 3);
        let ch = &chunks[0];
        for g in 0..3 {
            assert_eq!(ch.column(1).as_i64()[g], 100);
            assert!(["a", "b", "c"].contains(&ch.column(0).as_str_vec().get(g)));
        }
    }

    #[test]
    fn multi_key_grouping() {
        let c = ctx();
        // (k mod 7, s mod 3): 21 distinct pairs over 2100 rows → 100 each.
        let mut agg = HashAggregate::new(
            scan(2100),
            vec![0, 2],
            vec![AggSpec::CountStar, AggSpec::MinI64(1), AggSpec::MaxI64(1)],
            &c,
            "t",
        )
        .unwrap();
        let chunks = collect(&mut agg).unwrap();
        assert_eq!(total_rows(&chunks), 21);
        for ch in &chunks {
            for p in ch.live_positions() {
                assert_eq!(ch.column(2).as_i64()[p], 100);
                let min = ch.column(3).as_i64()[p];
                let max = ch.column(4).as_i64()[p];
                assert!(min < max);
                // rows repeat with period 21
                assert_eq!((max - min) % 21, 0);
            }
        }
    }

    #[test]
    fn grouping_respects_selection_vector() {
        let c = ctx();
        let pred = Pred::cmp_val(1, CmpKind::Lt, Value::I64(70));
        let sel = Select::new(scan(700), &pred, &c, "s").unwrap();
        let mut agg =
            HashAggregate::new(Box::new(sel), vec![0], vec![AggSpec::CountStar], &c, "t").unwrap();
        let chunks = collect(&mut agg).unwrap();
        assert_eq!(total_rows(&chunks), 7);
        let ch = &chunks[0];
        let total: i64 = (0..7).map(|g| ch.column(1).as_i64()[g]).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn stream_aggregate_totals() {
        let c = ctx();
        let mut agg = StreamAggregate::new(
            scan(100),
            vec![
                AggSpec::SumI64(1),
                AggSpec::CountStar,
                AggSpec::MinI64(1),
                AggSpec::MaxI64(1),
            ],
            &c,
            "t",
        )
        .unwrap();
        let chunks = collect(&mut agg).unwrap();
        assert_eq!(chunks.len(), 1);
        let ch = &chunks[0];
        assert_eq!(ch.len(), 1);
        assert_eq!(ch.column(0).as_i64()[0], 4950);
        assert_eq!(ch.column(1).as_i64()[0], 100);
        assert_eq!(ch.column(2).as_i64()[0], 0);
        assert_eq!(ch.column(3).as_i64()[0], 99);
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let c = ctx();
        let pred = Pred::cmp_val(1, CmpKind::Lt, Value::I64(-1));
        let sel = Select::new(scan(100), &pred, &c, "s").unwrap();
        let mut agg =
            HashAggregate::new(Box::new(sel), vec![0], vec![AggSpec::CountStar], &c, "t").unwrap();
        assert!(agg.next().unwrap().is_none());
    }

    #[test]
    fn empty_group_cols_rejected() {
        let c = ctx();
        assert!(HashAggregate::new(scan(10), vec![], vec![AggSpec::CountStar], &c, "t").is_err());
    }

    #[test]
    fn f64_aggregates() {
        let c = ctx();
        // Project v to f64 via a scan of v only — easier: sum f64 over cast
        // is covered in eval tests; here use MinF64/MaxF64 over f64 column
        // derived from v with Project.
        use crate::expr::Expr;
        use crate::ops::{ProjItem, Project};
        let p = Project::new(
            scan(50),
            vec![
                ProjItem::Pass(0),
                ProjItem::Expr(Expr::cast(DataType::F64, Expr::col(1))),
            ],
            &c,
            "p",
        )
        .unwrap();
        let mut agg = StreamAggregate::new(
            Box::new(p),
            vec![AggSpec::SumF64(1), AggSpec::MinF64(1), AggSpec::MaxF64(1)],
            &c,
            "t",
        )
        .unwrap();
        let ch = agg.next().unwrap().unwrap();
        assert_eq!(ch.column(0).as_f64()[0], 1225.0);
        assert_eq!(ch.column(1).as_f64()[0], 0.0);
        assert_eq!(ch.column(2).as_f64()[0], 49.0);
    }
}
