//! The exchange operators: [`Parallel`] runs N copies of a plan fragment
//! on worker threads and streams their union to the parent (Vectorwise's
//! `Xchg`); [`PartitionedExchange`] additionally *repartitions* the
//! producers' tuples by a key hash so that P consumer pipelines each see a
//! disjoint, complete key range (Vectorwise's `XchgHashSplit`).
//!
//! Each fragment is built by a caller-supplied factory — typically a
//! morsel-driven [`crate::ops::Scan`] over a shared
//! [`ma_vector::MorselQueue`], optionally topped by per-worker `Select` /
//! `Project` stages. Because the factory runs once per worker, every worker
//! owns *its own* primitive instances and therefore its own bandit state;
//! their statistics merge in the shared [`crate::QueryContext`] registry
//! (see DESIGN.md, "Per-worker statistics merge").
//!
//! Fragments are constructed eagerly on the caller thread, so instance
//! creation order — and with it policy seeding — is deterministic. Chunks
//! flow through a bounded channel for backpressure; their arrival *order*
//! is nondeterministic, which is fine for the blocking operators
//! (aggregate/sort/join builds) that consume exchange output: results are
//! order-insensitive, as `tests/parallel_determinism.rs` verifies.

use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;

use ma_vector::{DataChunk, DataType, SelVec, Vector};

use crate::ops::{BoxOp, Operator};
use crate::ExecError;

/// Builds one worker's plan fragment. Arguments: worker index, worker
/// count.
pub type FragmentFactory<'a> = dyn Fn(usize, usize) -> Result<BoxOp, ExecError> + 'a;

/// Chunks per channel message. Sending a batch per message amortizes the
/// futex-backed send/recv (which costs microseconds when the peer sleeps)
/// over a morsel's worth of chunks — without this, per-chunk channel
/// overhead eats the parallel gain, and on a single hardware thread (CI
/// containers) it dominates outright.
const CHUNKS_PER_MESSAGE: usize = 8;

/// Batches in flight per worker before producers block. Kept tight: chunks
/// sitting in the channel are chunks evicted from cache, and the
/// vector-at-a-time model lives on produce-then-consume cache residency.
const CHANNEL_DEPTH_PER_WORKER: usize = 2;

type Batch = Result<Vec<DataChunk>, ExecError>;

/// The receiving half every exchange shares: a bounded batch channel plus
/// the worker threads feeding it.
///
/// `next()` streams buffered chunks, refills from the channel, and — when
/// every sender is gone — joins the workers to reap panics. Dropping a
/// `Union` mid-stream closes the receiver *first*, so workers blocked on a
/// full channel fail their send and exit before the joins run (bounded by
/// one in-flight batch of work per worker).
struct Union {
    /// `None` once the stream ended (workers joined) — further `next()`
    /// calls return `None`.
    rx: Option<Receiver<Batch>>,
    handles: Vec<JoinHandle<()>>,
    /// Chunks of the last received batch, drained front to back.
    buffered: std::collections::VecDeque<DataChunk>,
}

impl Union {
    /// Spawns one worker per operator, all feeding a bounded channel.
    fn spawn(ops: Vec<BoxOp>) -> Union {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Batch>(ops.len() * CHANNEL_DEPTH_PER_WORKER);
        let handles = ops
            .into_iter()
            .map(|op| {
                let tx = tx.clone();
                std::thread::spawn(move || run_worker(op, &tx))
            })
            .collect();
        Union::over(rx, handles)
    }

    /// A union over an existing channel and worker set.
    fn over(rx: Receiver<Batch>, handles: Vec<JoinHandle<()>>) -> Union {
        Union {
            rx: Some(rx),
            handles,
            buffered: std::collections::VecDeque::new(),
        }
    }

    /// An already-exhausted union (placeholder during state swaps).
    fn done() -> Union {
        Union {
            rx: None,
            handles: Vec::new(),
            buffered: std::collections::VecDeque::new(),
        }
    }

    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        loop {
            if let Some(chunk) = self.buffered.pop_front() {
                return Ok(Some(chunk));
            }
            let Some(rx) = &self.rx else {
                return Ok(None);
            };
            match rx.recv() {
                Ok(Ok(batch)) => self.buffered.extend(batch),
                Ok(Err(e)) => {
                    // An error is terminal: close the channel (unblocking
                    // the remaining workers) and reap them, so a caller
                    // that polls again sees end-of-stream rather than the
                    // surviving workers' output resuming as if nothing
                    // happened. A concurrent worker *panic* outranks the
                    // error — it is the stronger defect signal.
                    self.rx = None;
                    self.buffered.clear();
                    let mut panic_payload = None;
                    for h in self.handles.drain(..) {
                        if let Err(payload) = h.join() {
                            panic_payload.get_or_insert(payload);
                        }
                    }
                    if let Some(payload) = panic_payload {
                        std::panic::resume_unwind(payload);
                    }
                    return Err(e);
                }
                Err(_) => {
                    // All senders gone: every worker finished. Join to
                    // reap panics.
                    self.rx = None;
                    for h in self.handles.drain(..) {
                        if let Err(payload) = h.join() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                    return Ok(None);
                }
            }
        }
    }
}

impl Drop for Union {
    fn drop(&mut self) {
        // Close the receiver before joining: blocked senders unblock.
        self.rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

enum State {
    /// Fragments built, workers not yet started.
    Pending(Vec<BoxOp>),
    /// Workers running (or finished).
    Running(Union),
}

/// Streaming union over `n` plan-fragment workers.
pub struct Parallel {
    state: State,
    types: Vec<DataType>,
}

impl Parallel {
    /// Builds `workers` fragments via `factory` (all on the calling
    /// thread). Workers start lazily on the first [`Operator::next`] call.
    pub fn new(workers: usize, factory: &FragmentFactory<'_>) -> Result<Self, ExecError> {
        let n = workers.max(1);
        let ops: Vec<BoxOp> = (0..n).map(|w| factory(w, n)).collect::<Result<_, _>>()?;
        let types = ops[0].out_types().to_vec();
        for (w, op) in ops.iter().enumerate() {
            if op.out_types() != types.as_slice() {
                return Err(ExecError::Plan(format!(
                    "parallel fragment {w} disagrees on output types"
                )));
            }
        }
        Ok(Parallel {
            state: State::Pending(ops),
            types,
        })
    }
}

fn run_worker(mut op: BoxOp, tx: &SyncSender<Batch>) {
    let mut batch = Vec::with_capacity(CHUNKS_PER_MESSAGE);
    loop {
        match op.next() {
            Ok(Some(chunk)) => {
                batch.push(chunk);
                if batch.len() >= CHUNKS_PER_MESSAGE {
                    // A send error means the receiver hung up (parent
                    // dropped mid-stream, e.g. under a Limit): stop
                    // producing.
                    if tx.send(Ok(std::mem::take(&mut batch))).is_err() {
                        return;
                    }
                    batch.reserve(CHUNKS_PER_MESSAGE);
                }
            }
            Ok(None) => {
                if !batch.is_empty() {
                    let _ = tx.send(Ok(batch));
                }
                return;
            }
            Err(e) => {
                if !batch.is_empty() {
                    let _ = tx.send(Ok(std::mem::take(&mut batch)));
                }
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

impl Operator for Parallel {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if let State::Pending(_) = self.state {
            let State::Pending(ops) =
                std::mem::replace(&mut self.state, State::Running(Union::done()))
            else {
                unreachable!()
            };
            self.state = State::Running(Union::spawn(ops));
        }
        let State::Running(union) = &mut self.state else {
            unreachable!()
        };
        union.next()
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

// ---------------------------------------------------------------------------
// hash-partitioning exchange
// ---------------------------------------------------------------------------

/// Builds one partition's consumer pipeline over its tuple stream.
/// Arguments: the partition's source operator, partition index.
pub type ConsumerFactory<'a> = dyn Fn(BoxOp, usize) -> Result<BoxOp, ExecError> + 'a;

/// Finalizer of splitmix64: cheap, well-mixed 64-bit hash for routing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Folds one key column into the per-tuple routing hashes at `positions`.
///
/// The routing hash is deliberately *not* an adaptive primitive: every
/// producer must route a given key to the same partition, and the split
/// must stay identical run to run, so a fixed function is the simple,
/// correct choice. Integer widths normalize through `i64` (consistent with
/// the group tables' key normalization).
fn fold_key_hashes(v: &Vector, positions: &[usize], hashes: &mut [u64]) {
    match v {
        Vector::I16(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ (c[p] as i64 as u64));
            }
        }
        Vector::I32(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ (c[p] as i64 as u64));
            }
        }
        Vector::I64(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ (c[p] as u64));
            }
        }
        Vector::Str(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ fnv1a(c.get(p)));
            }
        }
        // Rejected at construction (`PartitionedExchange::new`).
        Vector::F64(_) => unreachable!("f64 partition keys rejected at construction"),
    }
}

/// Splits `chunk`'s live positions by key hash into `routed` (one ascending
/// position list per partition).
fn route_chunk(
    chunk: &DataChunk,
    key_cols: &[usize],
    hashes: &mut Vec<u64>,
    routed: &mut [Vec<u32>],
) {
    let positions = chunk.live_positions();
    hashes.clear();
    hashes.resize(chunk.len(), 0);
    for &c in key_cols {
        fold_key_hashes(chunk.column(c), &positions, hashes);
    }
    let nparts = routed.len() as u64;
    for &p in &positions {
        routed[(hashes[p] % nparts) as usize].push(p as u32);
    }
}

/// A producer worker that routes every output tuple to its key partition.
///
/// Tuples are split with *selection vectors* over the producer's chunks —
/// columns are `Arc`-shared, never copied — and batched per partition with
/// the same channel discipline as [`Parallel`] workers.
///
/// A consumer may stop before draining its partition (the public
/// [`ConsumerFactory`] contract doesn't forbid it — think a future
/// limit-style consumer): its slot goes *dead* and the worker keeps
/// feeding the live partitions. Only when every partition is dead (parent
/// hung up) does the worker stop early.
fn run_partitioning_worker(mut op: BoxOp, key_cols: &[usize], txs: Vec<SyncSender<Batch>>) {
    let nparts = txs.len();
    let mut txs: Vec<Option<SyncSender<Batch>>> = txs.into_iter().map(Some).collect();
    let mut batches: Vec<Vec<DataChunk>> = (0..nparts)
        .map(|_| Vec::with_capacity(CHUNKS_PER_MESSAGE))
        .collect();
    let mut hashes: Vec<u64> = Vec::new();
    let mut routed: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    loop {
        match op.next() {
            Ok(Some(chunk)) => {
                route_chunk(&chunk, key_cols, &mut hashes, &mut routed);
                for (pid, positions) in routed.iter_mut().enumerate() {
                    let sel = SelVec::from_positions(std::mem::take(positions));
                    if sel.is_empty() || txs[pid].is_none() {
                        continue;
                    }
                    batches[pid].push(chunk.with_sel(Some(sel)));
                    if batches[pid].len() >= CHUNKS_PER_MESSAGE {
                        send_or_kill(&mut txs, pid, Ok(std::mem::take(&mut batches[pid])));
                    }
                }
                if txs.iter().all(Option::is_none) {
                    return;
                }
            }
            Ok(None) => {
                for (pid, batch) in batches.into_iter().enumerate() {
                    if !batch.is_empty() {
                        send_or_kill(&mut txs, pid, Ok(batch));
                    }
                }
                return;
            }
            Err(e) => {
                // Deliver the error to the first live partition — its
                // consumer forwards it to the union; the others just see
                // their channels close. If every send fails, all consumers
                // are gone and the error is moot.
                let mut payload: Batch = Err(e);
                for tx in txs.iter().flatten() {
                    match tx.send(payload) {
                        Ok(()) => return,
                        Err(std::sync::mpsc::SendError(p)) => payload = p,
                    }
                }
                return;
            }
        }
    }
}

/// Sends to partition `pid`; a failed send (receiver gone) marks the slot
/// dead so routing skips it from then on.
fn send_or_kill(txs: &mut [Option<SyncSender<Batch>>], pid: usize, msg: Batch) {
    if let Some(tx) = &txs[pid] {
        if tx.send(msg).is_err() {
            txs[pid] = None;
        }
    }
}

/// Source operator of one partition's consumer pipeline: streams the chunk
/// batches the producers routed to this partition (a [`Union`] with no
/// worker handles of its own — the exchange joins the producers).
struct PartitionSource {
    union: Union,
    types: Vec<DataType>,
}

impl Operator for PartitionSource {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        self.union.next()
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

enum PartState {
    /// Everything built, no thread started yet.
    Pending {
        producers: Vec<BoxOp>,
        part_txs: Vec<SyncSender<Batch>>,
        consumers: Vec<BoxOp>,
        key_cols: Vec<usize>,
    },
    /// Producers and consumers running (or finished); consumer outputs
    /// union in arrival order.
    Running(Union),
}

/// Hash-partitioning exchange: N producer fragments route tuples by
/// `hash(key columns) % P` to P consumer pipelines whose outputs union in
/// arrival order.
///
/// Because a key value lands in exactly one partition, a *blocking,
/// key-partitionable* consumer (hash aggregation today; a partitioned hash
/// join build tomorrow) computes its full answer per partition with no
/// final merge step — the union of the P outputs is the result. Each
/// consumer is built by the factory on the caller thread and owns private
/// primitive instances, so bandit state stays per-partition and merges
/// through the registry exactly like per-worker scan state.
pub struct PartitionedExchange {
    state: PartState,
    types: Vec<DataType>,
}

impl PartitionedExchange {
    /// Builds the exchange: `producers` are drained concurrently, their
    /// tuples routed by `key_cols` into `partitions` consumer pipelines
    /// built by `consumer` (all construction on the calling thread).
    pub fn new(
        producers: Vec<BoxOp>,
        key_cols: &[usize],
        partitions: usize,
        consumer: &ConsumerFactory<'_>,
    ) -> Result<Self, ExecError> {
        if producers.is_empty() {
            return Err(ExecError::Plan(
                "partitioned exchange needs producers".into(),
            ));
        }
        if key_cols.is_empty() {
            return Err(ExecError::Plan(
                "partitioned exchange needs partition key columns".into(),
            ));
        }
        let in_types = producers[0].out_types().to_vec();
        for (w, op) in producers.iter().enumerate() {
            if op.out_types() != in_types.as_slice() {
                return Err(ExecError::Plan(format!(
                    "partition producer {w} disagrees on output types"
                )));
            }
        }
        for &c in key_cols {
            match in_types.get(c) {
                None => {
                    return Err(ExecError::Plan(format!(
                        "partition key column {c} out of range"
                    )))
                }
                Some(DataType::F64) => {
                    return Err(ExecError::Plan(
                        "f64 partition keys unsupported (no hashable equality)".into(),
                    ))
                }
                Some(_) => {}
            }
        }
        let nparts = partitions.max(1);
        let mut part_txs = Vec::with_capacity(nparts);
        let mut consumers = Vec::with_capacity(nparts);
        for p in 0..nparts {
            let (tx, rx) =
                std::sync::mpsc::sync_channel::<Batch>(producers.len() * CHANNEL_DEPTH_PER_WORKER);
            let source: BoxOp = Box::new(PartitionSource {
                union: Union::over(rx, Vec::new()),
                types: in_types.clone(),
            });
            consumers.push(consumer(source, p)?);
            part_txs.push(tx);
        }
        let types = consumers[0].out_types().to_vec();
        for (p, op) in consumers.iter().enumerate() {
            if op.out_types() != types.as_slice() {
                return Err(ExecError::Plan(format!(
                    "partition consumer {p} disagrees on output types"
                )));
            }
        }
        Ok(PartitionedExchange {
            state: PartState::Pending {
                producers,
                part_txs,
                consumers,
                key_cols: key_cols.to_vec(),
            },
            types,
        })
    }

    /// Spawns producers (routing) and consumers, returning their union.
    ///
    /// On drop, the [`Union`] closes the consumer-output receiver first:
    /// consumers blocked sending fail and exit, dropping their partition
    /// receivers, which in turn unblocks any producer mid-send — the joins
    /// are bounded by in-flight batches.
    fn start(
        producers: Vec<BoxOp>,
        part_txs: Vec<SyncSender<Batch>>,
        consumers: Vec<BoxOp>,
        key_cols: Vec<usize>,
    ) -> Union {
        let (union_tx, union_rx) =
            std::sync::mpsc::sync_channel::<Batch>(consumers.len() * CHANNEL_DEPTH_PER_WORKER);
        let mut handles = Vec::with_capacity(producers.len() + consumers.len());
        for op in producers {
            let txs = part_txs.clone();
            let keys = key_cols.clone();
            handles.push(std::thread::spawn(move || {
                run_partitioning_worker(op, &keys, txs)
            }));
        }
        // Drop the construction-time senders so partition channels close
        // once every producer finishes.
        drop(part_txs);
        for op in consumers {
            let tx = union_tx.clone();
            handles.push(std::thread::spawn(move || run_worker(op, &tx)));
        }
        Union::over(union_rx, handles)
    }
}

impl Operator for PartitionedExchange {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if let PartState::Pending { .. } = self.state {
            let PartState::Pending {
                producers,
                part_txs,
                consumers,
                key_cols,
            } = std::mem::replace(&mut self.state, PartState::Running(Union::done()))
            else {
                unreachable!()
            };
            self.state = PartState::Running(PartitionedExchange::start(
                producers, part_txs, consumers, key_cols,
            ));
        }
        let PartState::Running(union) = &mut self.state else {
            unreachable!()
        };
        union.next()
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, total_rows, Scan};
    use ma_vector::{ColumnBuilder, MorselQueue, Table, VECTOR_SIZE};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let mut a = ColumnBuilder::with_capacity(DataType::I64, n);
        for i in 0..n {
            a.push_i64(i as i64);
        }
        Arc::new(Table::new("t", vec![("a".into(), a.finish())]).unwrap())
    }

    #[test]
    fn union_covers_every_row_exactly_once() {
        let t = table(10 * VECTOR_SIZE + 37);
        let rows = t.rows();
        let queue = Arc::new(MorselQueue::with_morsel(rows, VECTOR_SIZE));
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t),
                &["a"],
                VECTOR_SIZE,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(4, &factory).unwrap();
        assert_eq!(par.out_types(), &[DataType::I64]);
        let chunks = collect(&mut par).unwrap();
        assert_eq!(total_rows(&chunks), rows);
        let mut vals: Vec<i64> = chunks
            .iter()
            .flat_map(|c| c.column(0).as_i64().to_vec())
            .collect();
        vals.sort_unstable();
        assert!(vals.iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn single_worker_matches_plain_scan() {
        let t = table(3000);
        let queue = Arc::new(MorselQueue::new(t.rows()));
        let t2 = Arc::clone(&t);
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t2),
                &["a"],
                1024,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(1, &factory).unwrap();
        let got = collect(&mut par).unwrap();
        let mut plain = Scan::new(t, &["a"], 1024).unwrap();
        let want = collect(&mut plain).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.column(0).as_i64(), w.column(0).as_i64());
        }
    }

    #[test]
    fn factory_error_surfaces_at_construction() {
        let t = table(10);
        let factory = move |w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            if w == 2 {
                Err(ExecError::Plan("boom".into()))
            } else {
                Ok(Box::new(Scan::new(Arc::clone(&t), &["a"], 16)?))
            }
        };
        assert!(Parallel::new(4, &factory).is_err());
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let t = table(64 * VECTOR_SIZE);
        let queue = Arc::new(MorselQueue::with_morsel(t.rows(), VECTOR_SIZE));
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t),
                &["a"],
                VECTOR_SIZE,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(4, &factory).unwrap();
        let first = par.next().unwrap();
        assert!(first.is_some());
        drop(par); // workers blocked on a full channel must unblock
    }

    // --- PartitionedExchange ------------------------------------------------

    /// A consumer that counts its partition's tuples into one output row
    /// `(partition, count, keymod_sum)` — enough to check routing without
    /// dragging the aggregate operator into exchange tests.
    struct CountConsumer {
        child: BoxOp,
        partition: i64,
        types: Vec<DataType>,
        done: bool,
    }

    impl Operator for CountConsumer {
        fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
            if self.done {
                return Ok(None);
            }
            let mut count = 0i64;
            let mut sum = 0i64;
            while let Some(chunk) = self.child.next()? {
                for p in chunk.live_positions() {
                    count += 1;
                    sum += chunk.column(0).as_i64()[p];
                }
            }
            self.done = true;
            Ok(Some(DataChunk::new(vec![
                Arc::new(Vector::I64(vec![self.partition])),
                Arc::new(Vector::I64(vec![count])),
                Arc::new(Vector::I64(vec![sum])),
            ])))
        }

        fn out_types(&self) -> &[DataType] {
            &self.types
        }
    }

    fn partitioned_counts(workers: usize, partitions: usize, rows: usize) -> Vec<(i64, i64, i64)> {
        let t = table(rows);
        let queue = Arc::new(MorselQueue::with_morsel(rows, VECTOR_SIZE));
        let producers: Vec<BoxOp> = (0..workers)
            .map(|_| -> Result<BoxOp, ExecError> {
                Ok(Box::new(Scan::morsel(
                    Arc::clone(&t),
                    &["a"],
                    VECTOR_SIZE,
                    Arc::clone(&queue),
                )?))
            })
            .collect::<Result<_, _>>()
            .unwrap();
        let consumer = |src: BoxOp, p: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(CountConsumer {
                child: src,
                partition: p as i64,
                types: vec![DataType::I64; 3],
                done: false,
            }))
        };
        let mut ex = PartitionedExchange::new(producers, &[0], partitions, &consumer).unwrap();
        let chunks = collect(&mut ex).unwrap();
        let mut out: Vec<(i64, i64, i64)> = chunks
            .iter()
            .map(|c| {
                (
                    c.column(0).as_i64()[0],
                    c.column(1).as_i64()[0],
                    c.column(2).as_i64()[0],
                )
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn partitions_cover_every_tuple_exactly_once() {
        let rows = 7 * VECTOR_SIZE + 13;
        let got = partitioned_counts(3, 4, rows);
        assert_eq!(got.len(), 4);
        let total: i64 = got.iter().map(|&(_, c, _)| c).sum();
        assert_eq!(total as usize, rows);
        let sum: i64 = got.iter().map(|&(_, _, s)| s).sum();
        assert_eq!(sum as usize, rows * (rows - 1) / 2);
        // With unique keys and a mixing hash, no partition should be empty.
        assert!(got.iter().all(|&(_, c, _)| c > 0));
    }

    #[test]
    fn routing_is_producer_count_invariant() {
        // The per-partition tuple multiset depends only on the key hash,
        // never on which producer saw the tuple.
        let rows = 5 * VECTOR_SIZE + 99;
        assert_eq!(
            partitioned_counts(1, 4, rows),
            partitioned_counts(4, 4, rows)
        );
    }

    #[test]
    fn partitioned_exchange_rejects_bad_keys() {
        let t = table(16);
        let mk =
            || -> Vec<BoxOp> { vec![Box::new(Scan::new(Arc::clone(&t), &["a"], 16).unwrap())] };
        let consumer = |src: BoxOp, _p: usize| -> Result<BoxOp, ExecError> { Ok(src) };
        assert!(PartitionedExchange::new(mk(), &[], 2, &consumer).is_err());
        assert!(PartitionedExchange::new(mk(), &[3], 2, &consumer).is_err());
        assert!(PartitionedExchange::new(Vec::new(), &[0], 2, &consumer).is_err());
    }

    #[test]
    fn partitioned_drop_mid_stream_does_not_hang() {
        let rows = 64 * VECTOR_SIZE;
        let t = table(rows);
        let queue = Arc::new(MorselQueue::with_morsel(rows, VECTOR_SIZE));
        let producers: Vec<BoxOp> = (0..2)
            .map(|_| -> Result<BoxOp, ExecError> {
                Ok(Box::new(Scan::morsel(
                    Arc::clone(&t),
                    &["a"],
                    VECTOR_SIZE,
                    Arc::clone(&queue),
                )?))
            })
            .collect::<Result<_, _>>()
            .unwrap();
        // Pass-through consumers so chunks stream (not block) to the union.
        let consumer = |src: BoxOp, _p: usize| -> Result<BoxOp, ExecError> { Ok(src) };
        let mut ex = PartitionedExchange::new(producers, &[0], 2, &consumer).unwrap();
        assert!(ex.next().unwrap().is_some());
        drop(ex); // blocked producers/consumers must unblock
    }

    #[test]
    fn early_exiting_consumer_does_not_truncate_other_partitions() {
        // A consumer may stop before draining its partition; the producers
        // must keep feeding the remaining partitions in full.
        let rows = 9 * VECTOR_SIZE + 5;
        let reference = partitioned_counts(2, 4, rows);
        let t = table(rows);
        let queue = Arc::new(MorselQueue::with_morsel(rows, VECTOR_SIZE));
        let producers: Vec<BoxOp> = (0..2)
            .map(|_| -> Result<BoxOp, ExecError> {
                Ok(Box::new(Scan::morsel(
                    Arc::clone(&t),
                    &["a"],
                    VECTOR_SIZE,
                    Arc::clone(&queue),
                )?))
            })
            .collect::<Result<_, _>>()
            .unwrap();
        /// Immediately reports end-of-stream without draining its input.
        struct EarlyExit(Vec<DataType>);
        impl Operator for EarlyExit {
            fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
                Ok(None)
            }
            fn out_types(&self) -> &[DataType] {
                &self.0
            }
        }
        let consumer = |src: BoxOp, p: usize| -> Result<BoxOp, ExecError> {
            if p == 0 {
                Ok(Box::new(EarlyExit(vec![DataType::I64; 3])))
            } else {
                Ok(Box::new(CountConsumer {
                    child: src,
                    partition: p as i64,
                    types: vec![DataType::I64; 3],
                    done: false,
                }))
            }
        };
        let mut ex = PartitionedExchange::new(producers, &[0], 4, &consumer).unwrap();
        let chunks = collect(&mut ex).unwrap();
        let mut got: Vec<(i64, i64, i64)> = chunks
            .iter()
            .map(|c| {
                (
                    c.column(0).as_i64()[0],
                    c.column(1).as_i64()[0],
                    c.column(2).as_i64()[0],
                )
            })
            .collect();
        got.sort_unstable();
        // Partitions 1..3 must match the all-consumers reference exactly
        // (routing is deterministic); partition 0's tuples are dropped by
        // its consumer, not rerouted.
        assert_eq!(got, reference[1..].to_vec());
    }

    #[test]
    fn error_terminates_stream_for_good() {
        // After a fragment error surfaces, further polling must report
        // end-of-stream, not resume the surviving workers' output.
        struct FailAfter(usize, Vec<DataType>);
        impl Operator for FailAfter {
            fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
                if self.0 == 0 {
                    return Err(ExecError::Plan("injected".into()));
                }
                self.0 -= 1;
                Ok(Some(DataChunk::new(vec![Arc::new(Vector::I64(vec![1]))])))
            }
            fn out_types(&self) -> &[DataType] {
                &self.1
            }
        }
        let factory = |w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            // Worker 0 fails fast; the others would happily stream forever.
            let budget = if w == 0 { 2 } else { usize::MAX };
            Ok(Box::new(FailAfter(budget, vec![DataType::I64])))
        };
        let mut par = Parallel::new(3, &factory).unwrap();
        let err = loop {
            match par.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("stream ended without surfacing the error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("injected"));
        assert!(par.next().unwrap().is_none(), "stream must stay terminated");
        assert!(par.next().unwrap().is_none());
    }

    #[test]
    fn splitmix_mixes_and_fnv_differs() {
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
    }
}
