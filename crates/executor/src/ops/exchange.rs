//! The exchange operator: runs N copies of a plan fragment on worker
//! threads and streams their union to the parent (Vectorwise's `Xchg`).
//!
//! Each fragment is built by a caller-supplied factory — typically a
//! morsel-driven [`crate::ops::Scan`] over a shared
//! [`ma_vector::MorselQueue`], optionally topped by per-worker `Select` /
//! `Project` stages. Because the factory runs once per worker, every worker
//! owns *its own* primitive instances and therefore its own bandit state;
//! their statistics merge in the shared [`crate::QueryContext`] registry
//! (see DESIGN.md, "Per-worker statistics merge").
//!
//! Fragments are constructed eagerly on the caller thread, so instance
//! creation order — and with it policy seeding — is deterministic. Chunks
//! flow through a bounded channel for backpressure; their arrival *order*
//! is nondeterministic, which is fine for the blocking operators
//! (aggregate/sort/join builds) that consume exchange output: results are
//! order-insensitive, as `tests/parallel_determinism.rs` verifies.

use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;

use ma_vector::{DataChunk, DataType};

use crate::ops::{BoxOp, Operator};
use crate::ExecError;

/// Builds one worker's plan fragment. Arguments: worker index, worker
/// count.
pub type FragmentFactory<'a> = dyn Fn(usize, usize) -> Result<BoxOp, ExecError> + 'a;

/// Chunks per channel message. Sending a batch per message amortizes the
/// futex-backed send/recv (which costs microseconds when the peer sleeps)
/// over a morsel's worth of chunks — without this, per-chunk channel
/// overhead eats the parallel gain, and on a single hardware thread (CI
/// containers) it dominates outright.
const CHUNKS_PER_MESSAGE: usize = 8;

/// Batches in flight per worker before producers block. Kept tight: chunks
/// sitting in the channel are chunks evicted from cache, and the
/// vector-at-a-time model lives on produce-then-consume cache residency.
const CHANNEL_DEPTH_PER_WORKER: usize = 2;

type Batch = Result<Vec<DataChunk>, ExecError>;

enum State {
    /// Fragments built, workers not yet started.
    Pending(Vec<BoxOp>),
    /// Workers running; chunk batches arrive on the channel.
    Running {
        rx: Receiver<Batch>,
        handles: Vec<JoinHandle<()>>,
        /// Chunks of the last received batch, drained front to back.
        buffered: std::collections::VecDeque<DataChunk>,
    },
    /// All workers joined.
    Done,
}

/// Streaming union over `n` plan-fragment workers.
pub struct Parallel {
    state: State,
    types: Vec<DataType>,
}

impl Parallel {
    /// Builds `workers` fragments via `factory` (all on the calling
    /// thread). Workers start lazily on the first [`Operator::next`] call.
    pub fn new(workers: usize, factory: &FragmentFactory<'_>) -> Result<Self, ExecError> {
        let n = workers.max(1);
        let ops: Vec<BoxOp> = (0..n).map(|w| factory(w, n)).collect::<Result<_, _>>()?;
        let types = ops[0].out_types().to_vec();
        for (w, op) in ops.iter().enumerate() {
            if op.out_types() != types.as_slice() {
                return Err(ExecError::Plan(format!(
                    "parallel fragment {w} disagrees on output types"
                )));
            }
        }
        Ok(Parallel {
            state: State::Pending(ops),
            types,
        })
    }

    fn start(&mut self, ops: Vec<BoxOp>) {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Batch>(ops.len() * CHANNEL_DEPTH_PER_WORKER);
        let handles = ops
            .into_iter()
            .map(|op| {
                let tx = tx.clone();
                std::thread::spawn(move || run_worker(op, &tx))
            })
            .collect();
        self.state = State::Running {
            rx,
            handles,
            buffered: std::collections::VecDeque::new(),
        };
    }
}

fn run_worker(mut op: BoxOp, tx: &SyncSender<Batch>) {
    let mut batch = Vec::with_capacity(CHUNKS_PER_MESSAGE);
    loop {
        match op.next() {
            Ok(Some(chunk)) => {
                batch.push(chunk);
                if batch.len() >= CHUNKS_PER_MESSAGE {
                    // A send error means the receiver hung up (parent
                    // dropped mid-stream, e.g. under a Limit): stop
                    // producing.
                    if tx.send(Ok(std::mem::take(&mut batch))).is_err() {
                        return;
                    }
                    batch.reserve(CHUNKS_PER_MESSAGE);
                }
            }
            Ok(None) => {
                if !batch.is_empty() {
                    let _ = tx.send(Ok(batch));
                }
                return;
            }
            Err(e) => {
                if !batch.is_empty() {
                    let _ = tx.send(Ok(std::mem::take(&mut batch)));
                }
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

impl Operator for Parallel {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        loop {
            match std::mem::replace(&mut self.state, State::Done) {
                State::Pending(ops) => self.start(ops),
                State::Running {
                    rx,
                    handles,
                    mut buffered,
                } => {
                    if let Some(chunk) = buffered.pop_front() {
                        self.state = State::Running {
                            rx,
                            handles,
                            buffered,
                        };
                        return Ok(Some(chunk));
                    }
                    match rx.recv() {
                        Ok(Ok(batch)) => {
                            buffered.extend(batch);
                            self.state = State::Running {
                                rx,
                                handles,
                                buffered,
                            };
                            // Loop: pop from the refilled buffer (a batch
                            // is never empty, but stay robust).
                        }
                        Ok(Err(e)) => return Err(e),
                        Err(_) => {
                            // All senders gone: every worker finished.
                            // Join to reap panics.
                            for h in handles {
                                if let Err(payload) = h.join() {
                                    std::panic::resume_unwind(payload);
                                }
                            }
                            return Ok(None);
                        }
                    }
                }
                State::Done => return Ok(None),
            }
        }
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

impl Drop for Parallel {
    fn drop(&mut self) {
        // Dropping the receiver first makes producers blocked on a full
        // channel fail their send and exit, so the joins below are quick
        // (bounded by one in-flight batch of work per worker).
        if let State::Running { rx, handles, .. } = std::mem::replace(&mut self.state, State::Done)
        {
            drop(rx);
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, total_rows, Scan};
    use ma_vector::{ColumnBuilder, MorselQueue, Table, VECTOR_SIZE};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let mut a = ColumnBuilder::with_capacity(DataType::I64, n);
        for i in 0..n {
            a.push_i64(i as i64);
        }
        Arc::new(Table::new("t", vec![("a".into(), a.finish())]).unwrap())
    }

    #[test]
    fn union_covers_every_row_exactly_once() {
        let t = table(10 * VECTOR_SIZE + 37);
        let rows = t.rows();
        let queue = Arc::new(MorselQueue::with_morsel(rows, VECTOR_SIZE));
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t),
                &["a"],
                VECTOR_SIZE,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(4, &factory).unwrap();
        assert_eq!(par.out_types(), &[DataType::I64]);
        let chunks = collect(&mut par).unwrap();
        assert_eq!(total_rows(&chunks), rows);
        let mut vals: Vec<i64> = chunks
            .iter()
            .flat_map(|c| c.column(0).as_i64().to_vec())
            .collect();
        vals.sort_unstable();
        assert!(vals.iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn single_worker_matches_plain_scan() {
        let t = table(3000);
        let queue = Arc::new(MorselQueue::new(t.rows()));
        let t2 = Arc::clone(&t);
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t2),
                &["a"],
                1024,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(1, &factory).unwrap();
        let got = collect(&mut par).unwrap();
        let mut plain = Scan::new(t, &["a"], 1024).unwrap();
        let want = collect(&mut plain).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.column(0).as_i64(), w.column(0).as_i64());
        }
    }

    #[test]
    fn factory_error_surfaces_at_construction() {
        let t = table(10);
        let factory = move |w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            if w == 2 {
                Err(ExecError::Plan("boom".into()))
            } else {
                Ok(Box::new(Scan::new(Arc::clone(&t), &["a"], 16)?))
            }
        };
        assert!(Parallel::new(4, &factory).is_err());
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let t = table(64 * VECTOR_SIZE);
        let queue = Arc::new(MorselQueue::with_morsel(t.rows(), VECTOR_SIZE));
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t),
                &["a"],
                VECTOR_SIZE,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(4, &factory).unwrap();
        let first = par.next().unwrap();
        assert!(first.is_some());
        drop(par); // workers blocked on a full channel must unblock
    }
}
