//! The unified exchange layer: every operator that moves tuples between
//! threads lives here, built on one routing/channel/teardown core.
//!
//! * [`Parallel`] runs N copies of a plan fragment on worker threads and
//!   streams their union to the parent (Vectorwise's `Xchg`);
//! * [`HashPartitionExchange`] *repartitions* one or more producer streams
//!   ("lanes") by a key hash so that P consumer pipelines each see a
//!   disjoint, complete key range (Vectorwise's `XchgHashSplit`). One lane
//!   feeds a partitioned aggregation; a hash join partitions both its
//!   build and probe streams as two lanes of the same exchange;
//! * [`MergeExchange`] K-way-merges key-sorted worker streams back into
//!   one globally sorted stream, so ordered pipelines (merge-join inputs)
//!   can shard too.
//!
//! Each fragment is built by a caller-supplied factory — typically a
//! morsel-driven [`crate::ops::Scan`] over a shared
//! [`ma_vector::MorselQueue`], optionally topped by per-worker `Select` /
//! `Project` stages. Because the factory runs once per worker, every worker
//! owns *its own* primitive instances and therefore its own bandit state;
//! their statistics merge in the shared [`crate::QueryContext`] registry
//! (see DESIGN.md, "Per-worker statistics merge").
//!
//! Fragments are constructed eagerly on the caller thread, so instance
//! creation order — and with it policy seeding — is deterministic. Chunks
//! flow through bounded channels for backpressure; their arrival *order*
//! is nondeterministic, which is fine for the blocking operators
//! (aggregate/sort/join builds) that consume `Parallel` or
//! `HashPartitionExchange` output: results are order-insensitive, as
//! `tests/parallel_determinism.rs` verifies. [`MergeExchange`] is the one
//! exchange that *restores* an order: it keeps one channel per producer
//! (so each producer's internal order survives) and interleaves runs by
//! key on the consuming thread.

use std::sync::mpsc::SyncSender;

use ma_vector::{DataChunk, DataType, SelVec, Vector};

use crate::ops::xrt::{Rt, RtJoinHandle, RtReceiver, RtSender, StdRt};
use crate::ops::{normalize_keys_i64, BoxOp, Operator};
use crate::plan::PlanError;
use crate::ExecError;

/// Builds one worker's plan fragment. Arguments: worker index, worker
/// count.
pub type FragmentFactory<'a> = dyn Fn(usize, usize) -> Result<BoxOp, ExecError> + 'a;

/// Chunks per channel message. Sending a batch per message amortizes the
/// futex-backed send/recv (which costs microseconds when the peer sleeps)
/// over a morsel's worth of chunks — without this, per-chunk channel
/// overhead eats the parallel gain, and on a single hardware thread (CI
/// containers) it dominates outright.
pub(crate) const CHUNKS_PER_MESSAGE: usize = 8;

/// Batches in flight per worker before producers block. Kept tight: chunks
/// sitting in the channel are chunks evicted from cache, and the
/// vector-at-a-time model lives on produce-then-consume cache residency.
pub(crate) const CHANNEL_DEPTH_PER_WORKER: usize = 2;

pub(crate) type Batch = Result<Vec<DataChunk>, ExecError>;

/// The production union: [`UnionCore`] on OS threads and std channels.
type Union = UnionCore<StdRt>;

/// The receiving half every exchange shares: a bounded batch channel plus
/// the worker threads feeding it. Generic over the [`Rt`] runtime so the
/// model checker (`ops::model_check`) can run the *identical*
/// channel/teardown logic under exhaustively explored schedules.
///
/// `next()` streams buffered chunks, refills from the channel, and — when
/// every sender is gone — joins the workers to reap panics. Dropping a
/// `Union` mid-stream closes the receiver *first*, so workers blocked on a
/// full channel fail their send and exit before the joins run (bounded by
/// one in-flight batch of work per worker).
pub(crate) struct UnionCore<R: Rt> {
    /// `None` once the stream ended (workers joined) — further `next()`
    /// calls return `None`.
    rx: Option<R::Receiver<Batch>>,
    handles: Vec<R::JoinHandle>,
    /// Chunks of the last received batch, drained front to back.
    buffered: std::collections::VecDeque<DataChunk>,
}

impl<R: Rt> UnionCore<R> {
    /// Spawns one worker per operator, all feeding a bounded channel.
    pub(crate) fn spawn(ops: Vec<BoxOp>) -> UnionCore<R> {
        let (tx, rx) = R::sync_channel::<Batch>(ops.len() * CHANNEL_DEPTH_PER_WORKER);
        let handles = ops
            .into_iter()
            .map(|op| {
                let tx = tx.clone();
                R::spawn(move || run_worker(op, &tx))
            })
            .collect();
        UnionCore::over(rx, handles)
    }

    /// A union over an existing channel and worker set.
    pub(crate) fn over(rx: R::Receiver<Batch>, handles: Vec<R::JoinHandle>) -> UnionCore<R> {
        UnionCore {
            rx: Some(rx),
            handles,
            buffered: std::collections::VecDeque::new(),
        }
    }

    /// An already-exhausted union (placeholder during state swaps).
    fn done() -> UnionCore<R> {
        UnionCore {
            rx: None,
            handles: Vec::new(),
            buffered: std::collections::VecDeque::new(),
        }
    }

    pub(crate) fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        loop {
            if let Some(chunk) = self.buffered.pop_front() {
                return Ok(Some(chunk));
            }
            let Some(rx) = &self.rx else {
                return Ok(None);
            };
            match rx.recv() {
                Ok(Ok(batch)) => self.buffered.extend(batch),
                Ok(Err(e)) => {
                    // An error is terminal: close the channel (unblocking
                    // the remaining workers) and reap them, so a caller
                    // that polls again sees end-of-stream rather than the
                    // surviving workers' output resuming as if nothing
                    // happened. A concurrent worker *panic* outranks the
                    // error — it is the stronger defect signal.
                    self.rx = None;
                    self.buffered.clear();
                    let mut panic_payload = None;
                    for h in self.handles.drain(..) {
                        if let Err(payload) = h.join() {
                            panic_payload.get_or_insert(payload);
                        }
                    }
                    if let Some(payload) = panic_payload {
                        std::panic::resume_unwind(payload);
                    }
                    return Err(e);
                }
                Err(()) => {
                    // All senders gone: every worker finished. Join to
                    // reap panics.
                    self.rx = None;
                    for h in self.handles.drain(..) {
                        if let Err(payload) = h.join() {
                            std::panic::resume_unwind(payload);
                        }
                    }
                    return Ok(None);
                }
            }
        }
    }
}

impl<R: Rt> Drop for UnionCore<R> {
    fn drop(&mut self) {
        // Close the receiver before joining: blocked senders unblock.
        self.rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

enum State {
    /// Fragments built, workers not yet started.
    Pending(Vec<BoxOp>),
    /// Workers running (or finished).
    Running(Union),
}

/// Streaming union over `n` plan-fragment workers.
pub struct Parallel {
    state: State,
    types: Vec<DataType>,
    tracker: Option<crate::adaptive::MemTracker>,
}

impl Parallel {
    /// Builds `workers` fragments via `factory` (all on the calling
    /// thread). Workers start lazily on the first [`Operator::next`] call.
    pub fn new(workers: usize, factory: &FragmentFactory<'_>) -> Result<Self, ExecError> {
        let n = workers.max(1);
        let ops: Vec<BoxOp> = (0..n).map(|w| factory(w, n)).collect::<Result<_, _>>()?;
        let types = same_out_types(&ops, "parallel fragment")?;
        Ok(Parallel {
            state: State::Pending(ops),
            types,
            tracker: None,
        })
    }

    /// Attaches a byte-accounting tracker recording the size of every
    /// chunk this exchange yields (the per-chunk channel-buffer unit the
    /// planner's exchange bound is stated in).
    pub(crate) fn tracked(mut self, tracker: crate::adaptive::MemTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }
}

/// Output types shared by a non-empty operator set (a typed error names
/// the first disagreeing operator).
fn same_out_types(ops: &[BoxOp], what: &str) -> Result<Vec<DataType>, ExecError> {
    let Some(first) = ops.first() else {
        return Err(ExecError::Plan(format!("{what} set is empty")));
    };
    let types = first.out_types().to_vec();
    for (w, op) in ops.iter().enumerate().skip(1) {
        if op.out_types() != types.as_slice() {
            return Err(ExecError::Plan(format!(
                "{what} {w} disagrees on output types"
            )));
        }
    }
    Ok(types)
}

pub(crate) fn run_worker<S: RtSender<Batch>>(mut op: BoxOp, tx: &S) {
    let mut batch = Vec::with_capacity(CHUNKS_PER_MESSAGE);
    loop {
        match op.next() {
            Ok(Some(chunk)) => {
                batch.push(chunk);
                if batch.len() >= CHUNKS_PER_MESSAGE {
                    // A send error means the receiver hung up (parent
                    // dropped mid-stream, e.g. under a Limit): stop
                    // producing.
                    if tx.send(Ok(std::mem::take(&mut batch))).is_err() {
                        return;
                    }
                    batch.reserve(CHUNKS_PER_MESSAGE);
                }
            }
            Ok(None) => {
                if !batch.is_empty() {
                    let _ = tx.send(Ok(batch));
                }
                return;
            }
            Err(e) => {
                if !batch.is_empty() {
                    let _ = tx.send(Ok(std::mem::take(&mut batch)));
                }
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

impl Operator for Parallel {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if let State::Pending(_) = self.state {
            let State::Pending(ops) =
                std::mem::replace(&mut self.state, State::Running(Union::done()))
            else {
                unreachable!()
            };
            self.state = State::Running(Union::spawn(ops));
        }
        let State::Running(union) = &mut self.state else {
            unreachable!()
        };
        let out = union.next()?;
        if let (Some(t), Some(chunk)) = (&self.tracker, &out) {
            t.record(crate::ops::chunk_bytes(chunk));
        }
        Ok(out)
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

// ---------------------------------------------------------------------------
// hash-partitioning exchange
// ---------------------------------------------------------------------------

/// One routed input of a [`HashPartitionExchange`]: a set of producer
/// fragments whose tuples are split by `hash(key_cols) % P`. All lanes of
/// an exchange route with the same hash, so equal key values land in the
/// same partition across lanes — the property a partitioned join build
/// relies on.
pub struct RoutedLane {
    /// Producer fragments, drained concurrently.
    pub producers: Vec<BoxOp>,
    /// Key columns (in the producers' output schema) the routing hash
    /// folds, in order.
    pub key_cols: Vec<usize>,
}

/// Builds one partition's consumer pipeline over its per-lane tuple
/// streams. Arguments: one source operator per lane (in lane order), the
/// partition index.
pub type ConsumerFactory<'a> = dyn Fn(Vec<BoxOp>, usize) -> Result<BoxOp, ExecError> + 'a;

/// Finalizer of splitmix64: cheap, well-mixed 64-bit hash for routing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Folds one key column into the per-tuple routing hashes at `positions`.
///
/// The routing hash is deliberately *not* an adaptive primitive: every
/// producer must route a given key to the same partition, and the split
/// must stay identical run to run, so a fixed function is the simple,
/// correct choice. Integer widths normalize through `i64` (consistent with
/// the group tables' key normalization), so an `i32` build key and an
/// `i64` probe key hash identically.
fn fold_key_hashes(v: &Vector, positions: &[usize], hashes: &mut [u64]) {
    match v {
        Vector::I16(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ (c[p] as i64 as u64));
            }
        }
        Vector::I32(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ (c[p] as i64 as u64));
            }
        }
        Vector::I64(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ (c[p] as u64));
            }
        }
        Vector::Str(c) => {
            for &p in positions {
                hashes[p] = splitmix64(hashes[p] ^ fnv1a(c.get(p)));
            }
        }
        // Rejected at construction (`HashPartitionExchange::new`).
        Vector::F64(_) => unreachable!("f64 partition keys rejected at construction"),
    }
}

/// Splits `chunk`'s live positions by key hash into `routed` (one ascending
/// position list per partition).
fn route_chunk(
    chunk: &DataChunk,
    key_cols: &[usize],
    hashes: &mut Vec<u64>,
    routed: &mut [Vec<u32>],
) {
    let positions = chunk.live_positions();
    hashes.clear();
    hashes.resize(chunk.len(), 0);
    for &c in key_cols {
        fold_key_hashes(chunk.column(c), &positions, hashes);
    }
    let nparts = routed.len() as u64;
    for &p in &positions {
        routed[(hashes[p] % nparts) as usize].push(p as u32);
    }
}

/// A producer worker that routes every output tuple to its key partition.
///
/// Tuples are split with *selection vectors* over the producer's chunks —
/// columns are `Arc`-shared, never copied — and batched per partition with
/// the same channel discipline as [`Parallel`] workers.
///
/// A consumer may stop before draining its partition (the public
/// [`ConsumerFactory`] contract doesn't forbid it — think a future
/// limit-style consumer): its slot goes *dead* and the worker keeps
/// feeding the live partitions. Only when every partition is dead (parent
/// hung up) does the worker stop early.
fn run_partitioning_worker<S: RtSender<Batch>>(mut op: BoxOp, key_cols: &[usize], txs: Vec<S>) {
    let nparts = txs.len();
    let mut txs: Vec<Option<S>> = txs.into_iter().map(Some).collect();
    let mut batches: Vec<Vec<DataChunk>> = (0..nparts)
        .map(|_| Vec::with_capacity(CHUNKS_PER_MESSAGE))
        .collect();
    let mut hashes: Vec<u64> = Vec::new();
    let mut routed: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    loop {
        match op.next() {
            Ok(Some(chunk)) => {
                route_chunk(&chunk, key_cols, &mut hashes, &mut routed);
                for (pid, positions) in routed.iter_mut().enumerate() {
                    let sel = SelVec::from_positions(std::mem::take(positions));
                    if sel.is_empty() || txs[pid].is_none() {
                        continue;
                    }
                    batches[pid].push(chunk.with_sel(Some(sel)));
                    if batches[pid].len() >= CHUNKS_PER_MESSAGE {
                        send_or_kill(&mut txs, pid, Ok(std::mem::take(&mut batches[pid])));
                    }
                }
                if txs.iter().all(Option::is_none) {
                    return;
                }
            }
            Ok(None) => {
                for (pid, batch) in batches.into_iter().enumerate() {
                    if !batch.is_empty() {
                        send_or_kill(&mut txs, pid, Ok(batch));
                    }
                }
                return;
            }
            Err(e) => {
                // Deliver the error to the first live partition — its
                // consumer forwards it to the union; the others just see
                // their channels close. If every send fails, all consumers
                // are gone and the error is moot.
                let mut payload: Batch = Err(e);
                for tx in txs.iter().flatten() {
                    match tx.send(payload) {
                        Ok(()) => return,
                        Err(p) => payload = p,
                    }
                }
                return;
            }
        }
    }
}

/// Sends to partition `pid`; a failed send (receiver gone) marks the slot
/// dead so routing skips it from then on.
fn send_or_kill<S: RtSender<Batch>>(txs: &mut [Option<S>], pid: usize, msg: Batch) {
    if let Some(tx) = &txs[pid] {
        if tx.send(msg).is_err() {
            txs[pid] = None;
        }
    }
}

/// Source operator of one partition's consumer pipeline: streams the chunk
/// batches the producers routed to this partition (a [`Union`] with no
/// worker handles of its own — the exchange joins the producers).
struct PartitionSource {
    union: Union,
    types: Vec<DataType>,
}

impl Operator for PartitionSource {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        self.union.next()
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

/// A lane whose channels are wired but whose producers haven't started.
struct PendingLane {
    producers: Vec<BoxOp>,
    /// One sender per partition.
    part_txs: Vec<SyncSender<Batch>>,
    key_cols: Vec<usize>,
}

enum PartState {
    /// Everything built, no thread started yet.
    Pending {
        lanes: Vec<PendingLane>,
        consumers: Vec<BoxOp>,
    },
    /// Producers and consumers running (or finished); consumer outputs
    /// union in arrival order.
    Running(Union),
}

/// Hash-partitioning exchange: per lane, N producer fragments route tuples
/// by `hash(key columns) % P` to P consumer pipelines whose outputs union
/// in arrival order.
///
/// Because a key value lands in exactly one partition — and in the *same*
/// partition for every lane — a *blocking, key-partitionable* consumer
/// computes its full answer per partition with no final merge step: the
/// union of the P outputs is the result. A hash aggregation is one lane
/// feeding P private `HashAggregate` instances (disjoint complete groups);
/// a hash join is two lanes (build, probe) feeding P private `HashJoin`
/// instances (every build row with a probe tuple's key lives in that
/// tuple's partition, so per-partition joins are exact for inner, semi,
/// anti and left-single semantics alike). Each consumer is built by the
/// factory on the caller thread and owns private primitive instances, so
/// bandit state stays per-partition and merges through the registry
/// exactly like per-worker scan state.
pub struct HashPartitionExchange {
    state: PartState,
    types: Vec<DataType>,
    tracker: Option<crate::adaptive::MemTracker>,
}

impl HashPartitionExchange {
    /// Builds the exchange: each lane's `producers` are drained
    /// concurrently, their tuples routed by the lane's `key_cols` into
    /// `partitions` consumer pipelines built by `consumer` (all
    /// construction on the calling thread; consumers receive one source
    /// per lane, in lane order).
    pub fn new(
        lanes: Vec<RoutedLane>,
        partitions: usize,
        consumer: &ConsumerFactory<'_>,
    ) -> Result<Self, ExecError> {
        if lanes.is_empty() {
            return Err(ExecError::Plan("partitioning exchange needs lanes".into()));
        }
        let mut lane_types = Vec::with_capacity(lanes.len());
        for (l, lane) in lanes.iter().enumerate() {
            if lane.producers.is_empty() {
                return Err(ExecError::Plan(format!("lane {l} needs producers")));
            }
            if lane.key_cols.is_empty() {
                return Err(ExecError::Plan(format!(
                    "lane {l} needs partition key columns"
                )));
            }
            let in_types = same_out_types(&lane.producers, "partition producer")?;
            for &c in &lane.key_cols {
                match in_types.get(c) {
                    None => {
                        return Err(ExecError::Plan(format!(
                            "lane {l} partition key column {c} out of range"
                        )))
                    }
                    Some(DataType::F64) => {
                        // Typed, not stringly: hand-built plans that smuggle
                        // a float key past the builder get the same error
                        // shape the builder and verifier report.
                        return Err(PlanError::TypeMismatch {
                            context: format!("lane {l} partition key column {c}"),
                            expected: "hashable key (integer or string)".into(),
                            found: DataType::F64,
                        }
                        .into());
                    }
                    Some(_) => {}
                }
            }
            lane_types.push(in_types);
        }
        let nparts = partitions.max(1);
        let mut pending: Vec<PendingLane> = lanes
            .into_iter()
            .map(|lane| PendingLane {
                producers: lane.producers,
                part_txs: Vec::with_capacity(nparts),
                key_cols: lane.key_cols,
            })
            .collect();
        let mut consumers = Vec::with_capacity(nparts);
        for p in 0..nparts {
            let mut sources: Vec<BoxOp> = Vec::with_capacity(pending.len());
            for (lane, types) in pending.iter_mut().zip(&lane_types) {
                let (tx, rx) = std::sync::mpsc::sync_channel::<Batch>(
                    lane.producers.len() * CHANNEL_DEPTH_PER_WORKER,
                );
                sources.push(Box::new(PartitionSource {
                    union: Union::over(rx, Vec::new()),
                    types: types.clone(),
                }));
                lane.part_txs.push(tx);
            }
            consumers.push(consumer(sources, p)?);
        }
        let types = same_out_types(&consumers, "partition consumer")?;
        Ok(HashPartitionExchange {
            state: PartState::Pending {
                lanes: pending,
                consumers,
            },
            types,
            tracker: None,
        })
    }

    /// Attaches a byte-accounting tracker recording the size of every
    /// chunk this exchange yields (the per-chunk channel-buffer unit the
    /// planner's exchange bound is stated in).
    pub(crate) fn tracked(mut self, tracker: crate::adaptive::MemTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Spawns every lane's producers (routing) and the consumers,
    /// returning their union.
    ///
    /// On drop, the [`Union`] closes the consumer-output receiver first:
    /// consumers blocked sending fail and exit, dropping their partition
    /// receivers, which in turn unblocks any producer mid-send — the joins
    /// are bounded by in-flight batches.
    fn start(lanes: Vec<PendingLane>, consumers: Vec<BoxOp>) -> Union {
        let (union_tx, union_rx) =
            std::sync::mpsc::sync_channel::<Batch>(consumers.len() * CHANNEL_DEPTH_PER_WORKER);
        let mut handles = Vec::new();
        for lane in lanes {
            for op in lane.producers {
                let txs = lane.part_txs.clone();
                let keys = lane.key_cols.clone();
                handles.push(std::thread::spawn(move || {
                    run_partitioning_worker(op, &keys, txs)
                }));
            }
            // Drop the construction-time senders so a lane's partition
            // channels close once every producer of that lane finishes.
            drop(lane.part_txs);
        }
        for op in consumers {
            let tx = union_tx.clone();
            handles.push(std::thread::spawn(move || run_worker(op, &tx)));
        }
        Union::over(union_rx, handles)
    }
}

impl Operator for HashPartitionExchange {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if let PartState::Pending { .. } = self.state {
            let PartState::Pending { lanes, consumers } =
                std::mem::replace(&mut self.state, PartState::Running(Union::done()))
            else {
                unreachable!()
            };
            self.state = PartState::Running(HashPartitionExchange::start(lanes, consumers));
        }
        let PartState::Running(union) = &mut self.state else {
            unreachable!()
        };
        let out = union.next()?;
        if let (Some(t), Some(chunk)) = (&self.tracker, &out) {
            t.record(crate::ops::chunk_bytes(chunk));
        }
        Ok(out)
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

// ---------------------------------------------------------------------------
// merging exchange
// ---------------------------------------------------------------------------

/// One producer's stream state inside a [`MergeExchange`]: its private
/// channel/worker (a one-handle [`Union`], so the channel and teardown
/// discipline is the shared one) plus the head chunk being merged.
struct MergeSource {
    union: Union,
    head: Option<MergeHead>,
    done: bool,
}

/// The front chunk of one producer stream.
struct MergeHead {
    chunk: DataChunk,
    /// Live positions of `chunk`, ascending.
    positions: Vec<u32>,
    /// Normalized key per *row* of `chunk` (indexed by position).
    keys: Vec<i64>,
    /// Next position index to emit.
    idx: usize,
}

impl MergeHead {
    fn key_at(&self, i: usize) -> i64 {
        self.keys[self.positions[i] as usize]
    }

    fn head_key(&self) -> i64 {
        self.key_at(self.idx)
    }
}

enum MergeState {
    Pending(Vec<BoxOp>),
    Running(Vec<MergeSource>),
    /// Terminal (exhausted or failed): further `next()` returns `None`.
    Done,
}

/// Merging exchange: K-way-merges `n` *key-sorted* producer streams into
/// one globally sorted stream.
///
/// Each producer keeps a private channel so its internal order survives
/// transport (a shared arrival-order union would destroy it). The merge
/// runs on the consuming thread: among the current head chunks it picks
/// the source with the smallest key and emits that source's maximal *run*
/// of positions whose keys don't exceed any other head's key — one
/// selection vector over the `Arc`-shared source chunk, no copying. With
/// morsel-sharded scans over a clustering-key-ordered table each worker
/// stream is a sequence of disjoint ascending ranges, so runs are long
/// (typically whole morsels) and the merge is cheap.
///
/// Keys may repeat across producers (the right side of a merge join);
/// equal keys are emitted source-by-source, which keeps the output
/// non-decreasing — all any order-sensitive consumer requires. Producers
/// must each be internally sorted ascending by the key column; the planner
/// only builds this exchange over chains whose key traces to the scanned
/// table's clustering column (see `plan::lower::merge_workers`).
pub struct MergeExchange {
    state: MergeState,
    key_col: usize,
    types: Vec<DataType>,
    tracker: Option<crate::adaptive::MemTracker>,
}

impl MergeExchange {
    /// Builds the exchange over `producers`, merging on the integer column
    /// `key_col` (ascending). Workers start lazily on the first
    /// [`Operator::next`] call.
    pub fn new(producers: Vec<BoxOp>, key_col: usize) -> Result<Self, ExecError> {
        let types = same_out_types(&producers, "merge producer")?;
        match types.get(key_col) {
            None => {
                return Err(ExecError::Plan(format!(
                    "merge key column {key_col} out of range"
                )))
            }
            Some(DataType::I16 | DataType::I32 | DataType::I64) => {}
            Some(other) => {
                return Err(ExecError::Plan(format!(
                    "merge key must be an integer column, got {other}"
                )))
            }
        }
        Ok(MergeExchange {
            state: MergeState::Pending(producers),
            key_col,
            types,
            tracker: None,
        })
    }

    /// Attaches a byte-accounting tracker recording the size of every
    /// chunk this exchange yields (the per-chunk channel-buffer unit the
    /// planner's exchange bound is stated in).
    pub(crate) fn tracked(mut self, tracker: crate::adaptive::MemTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// Spawns one worker (and private channel) per producer.
    fn start(producers: Vec<BoxOp>) -> Vec<MergeSource> {
        producers
            .into_iter()
            .map(|op| {
                let (tx, rx) = std::sync::mpsc::sync_channel::<Batch>(CHANNEL_DEPTH_PER_WORKER);
                let handle = std::thread::spawn(move || run_worker(op, &tx));
                MergeSource {
                    union: Union::over(rx, vec![handle]),
                    head: None,
                    done: false,
                }
            })
            .collect()
    }

    /// Pulls the next run from the merged streams (`None` when all
    /// producers are exhausted).
    fn merge_next(
        sources: &mut [MergeSource],
        key_col: usize,
    ) -> Result<Option<DataChunk>, ExecError> {
        // Refill: every non-finished source must expose a head before any
        // run is chosen — without its next key, no bound on the run is
        // known. The blocking recv is safe: producers run independently.
        for s in sources.iter_mut() {
            while s.head.is_none() && !s.done {
                match s.union.next()? {
                    Some(chunk) => {
                        if chunk.live_count() == 0 {
                            continue;
                        }
                        let positions: Vec<u32> =
                            chunk.live_positions().iter().map(|&p| p as u32).collect();
                        let mut keys = Vec::new();
                        normalize_keys_i64(chunk.column(key_col), &mut keys);
                        s.head = Some(MergeHead {
                            chunk,
                            positions,
                            keys,
                            idx: 0,
                        });
                    }
                    None => s.done = true,
                }
            }
        }
        // The source with the smallest head key emits; its run may extend
        // while its keys don't exceed any other head's key.
        let mut best: Option<(i64, usize)> = None;
        let mut limit = i64::MAX;
        for (i, s) in sources.iter().enumerate() {
            if let Some(h) = &s.head {
                let k = h.head_key();
                match best {
                    Some((bk, _)) if bk <= k => limit = limit.min(k),
                    _ => {
                        if let Some((bk, _)) = best {
                            limit = limit.min(bk);
                        }
                        best = Some((k, i));
                    }
                }
            }
        }
        let Some((_, si)) = best else {
            return Ok(None);
        };
        let s = &mut sources[si];
        let h = s.head.as_mut().expect("best source has a head");
        let start = h.idx;
        while h.idx < h.positions.len() && h.key_at(h.idx) <= limit {
            h.idx += 1;
        }
        let run = h.positions[start..h.idx].to_vec();
        let out = h.chunk.with_sel(Some(SelVec::from_positions(run)));
        if h.idx >= h.positions.len() {
            s.head = None;
        }
        Ok(Some(out))
    }
}

impl Operator for MergeExchange {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        if let MergeState::Pending(_) = self.state {
            let MergeState::Pending(producers) =
                std::mem::replace(&mut self.state, MergeState::Done)
            else {
                unreachable!()
            };
            self.state = MergeState::Running(MergeExchange::start(producers));
        }
        let MergeState::Running(sources) = &mut self.state else {
            return Ok(None);
        };
        match MergeExchange::merge_next(sources, self.key_col) {
            Ok(Some(chunk)) => {
                if let Some(t) = &self.tracker {
                    t.record(crate::ops::chunk_bytes(&chunk));
                }
                Ok(Some(chunk))
            }
            Ok(None) => {
                self.state = MergeState::Done;
                Ok(None)
            }
            Err(e) => {
                // Terminal, like the union's error discipline: further
                // polling reports end-of-stream. Dropping the sources
                // closes the surviving producers' channels.
                self.state = MergeState::Done;
                Err(e)
            }
        }
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, total_rows, Scan};
    use ma_vector::{ColumnBuilder, MorselQueue, Table, VECTOR_SIZE};
    use std::sync::Arc;

    fn table(n: usize) -> Arc<Table> {
        let mut a = ColumnBuilder::with_capacity(DataType::I64, n);
        for i in 0..n {
            a.push_i64(i as i64);
        }
        Arc::new(Table::new("t", vec![("a".into(), a.finish())]).unwrap())
    }

    #[test]
    fn union_covers_every_row_exactly_once() {
        let t = table(10 * VECTOR_SIZE + 37);
        let rows = t.rows();
        let queue = Arc::new(MorselQueue::with_morsel(rows, VECTOR_SIZE));
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t),
                &["a"],
                VECTOR_SIZE,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(4, &factory).unwrap();
        assert_eq!(par.out_types(), &[DataType::I64]);
        let chunks = collect(&mut par).unwrap();
        assert_eq!(total_rows(&chunks), rows);
        let mut vals: Vec<i64> = chunks
            .iter()
            .flat_map(|c| c.column(0).as_i64().to_vec())
            .collect();
        vals.sort_unstable();
        assert!(vals.iter().enumerate().all(|(i, &v)| v == i as i64));
    }

    #[test]
    fn single_worker_matches_plain_scan() {
        let t = table(3000);
        let queue = Arc::new(MorselQueue::new(t.rows()));
        let t2 = Arc::clone(&t);
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t2),
                &["a"],
                1024,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(1, &factory).unwrap();
        let got = collect(&mut par).unwrap();
        let mut plain = Scan::new(t, &["a"], 1024).unwrap();
        let want = collect(&mut plain).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.column(0).as_i64(), w.column(0).as_i64());
        }
    }

    #[test]
    fn factory_error_surfaces_at_construction() {
        let t = table(10);
        let factory = move |w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            if w == 2 {
                Err(ExecError::Plan("boom".into()))
            } else {
                Ok(Box::new(Scan::new(Arc::clone(&t), &["a"], 16)?))
            }
        };
        assert!(Parallel::new(4, &factory).is_err());
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let t = table(64 * VECTOR_SIZE);
        let queue = Arc::new(MorselQueue::with_morsel(t.rows(), VECTOR_SIZE));
        let factory = move |_w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(Scan::morsel(
                Arc::clone(&t),
                &["a"],
                VECTOR_SIZE,
                Arc::clone(&queue),
            )?))
        };
        let mut par = Parallel::new(4, &factory).unwrap();
        let first = par.next().unwrap();
        assert!(first.is_some());
        drop(par); // workers blocked on a full channel must unblock
    }

    // --- HashPartitionExchange ---------------------------------------------

    /// A consumer that counts its partition's tuples into one output row
    /// `(partition, count, keymod_sum)` — enough to check routing without
    /// dragging the aggregate operator into exchange tests.
    struct CountConsumer {
        child: BoxOp,
        partition: i64,
        types: Vec<DataType>,
        done: bool,
    }

    impl Operator for CountConsumer {
        fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
            if self.done {
                return Ok(None);
            }
            let mut count = 0i64;
            let mut sum = 0i64;
            while let Some(chunk) = self.child.next()? {
                for p in chunk.live_positions() {
                    count += 1;
                    sum += chunk.column(0).as_i64()[p];
                }
            }
            self.done = true;
            Ok(Some(DataChunk::new(vec![
                Arc::new(Vector::I64(vec![self.partition])),
                Arc::new(Vector::I64(vec![count])),
                Arc::new(Vector::I64(vec![sum])),
            ])))
        }

        fn out_types(&self) -> &[DataType] {
            &self.types
        }
    }

    fn morsel_producers(t: &Arc<Table>, workers: usize) -> Vec<BoxOp> {
        let queue = Arc::new(MorselQueue::with_morsel(t.rows(), VECTOR_SIZE));
        (0..workers)
            .map(|_| -> Result<BoxOp, ExecError> {
                Ok(Box::new(Scan::morsel(
                    Arc::clone(t),
                    &["a"],
                    VECTOR_SIZE,
                    Arc::clone(&queue),
                )?))
            })
            .collect::<Result<_, _>>()
            .unwrap()
    }

    fn single_lane(producers: Vec<BoxOp>) -> Vec<RoutedLane> {
        vec![RoutedLane {
            producers,
            key_cols: vec![0],
        }]
    }

    fn partitioned_counts(workers: usize, partitions: usize, rows: usize) -> Vec<(i64, i64, i64)> {
        let t = table(rows);
        let producers = morsel_producers(&t, workers);
        let consumer = |mut src: Vec<BoxOp>, p: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(CountConsumer {
                child: src.pop().unwrap(),
                partition: p as i64,
                types: vec![DataType::I64; 3],
                done: false,
            }))
        };
        let mut ex =
            HashPartitionExchange::new(single_lane(producers), partitions, &consumer).unwrap();
        let chunks = collect(&mut ex).unwrap();
        let mut out: Vec<(i64, i64, i64)> = chunks
            .iter()
            .map(|c| {
                (
                    c.column(0).as_i64()[0],
                    c.column(1).as_i64()[0],
                    c.column(2).as_i64()[0],
                )
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn partitions_cover_every_tuple_exactly_once() {
        let rows = 7 * VECTOR_SIZE + 13;
        let got = partitioned_counts(3, 4, rows);
        assert_eq!(got.len(), 4);
        let total: i64 = got.iter().map(|&(_, c, _)| c).sum();
        assert_eq!(total as usize, rows);
        let sum: i64 = got.iter().map(|&(_, _, s)| s).sum();
        assert_eq!(sum as usize, rows * (rows - 1) / 2);
        // With unique keys and a mixing hash, no partition should be empty.
        assert!(got.iter().all(|&(_, c, _)| c > 0));
    }

    #[test]
    fn routing_is_producer_count_invariant() {
        // The per-partition tuple multiset depends only on the key hash,
        // never on which producer saw the tuple.
        let rows = 5 * VECTOR_SIZE + 99;
        assert_eq!(
            partitioned_counts(1, 4, rows),
            partitioned_counts(4, 4, rows)
        );
    }

    /// Drains two lane sources and emits one row per partition:
    /// `(partition, keysets_equal, count0, count1)` where `keysets_equal`
    /// is 1 when both lanes saw exactly the same set of distinct keys.
    struct KeySetConsumer {
        lanes: Vec<BoxOp>,
        partition: i64,
        types: Vec<DataType>,
        done: bool,
    }

    impl Operator for KeySetConsumer {
        fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
            if self.done {
                return Ok(None);
            }
            let mut sets = Vec::new();
            let mut counts = Vec::new();
            for lane in &mut self.lanes {
                let mut set = std::collections::BTreeSet::new();
                let mut count = 0i64;
                while let Some(chunk) = lane.next()? {
                    for p in chunk.live_positions() {
                        set.insert(chunk.column(0).as_i64()[p]);
                        count += 1;
                    }
                }
                sets.push(set);
                counts.push(count);
            }
            self.done = true;
            Ok(Some(DataChunk::new(vec![
                Arc::new(Vector::I64(vec![self.partition])),
                Arc::new(Vector::I64(vec![i64::from(sets[0] == sets[1])])),
                Arc::new(Vector::I64(vec![counts[0]])),
                Arc::new(Vector::I64(vec![counts[1]])),
            ])))
        }

        fn out_types(&self) -> &[DataType] {
            &self.types
        }
    }

    #[test]
    fn two_lanes_route_equal_keys_to_the_same_partition() {
        // Build-lane and probe-lane streams over the same key domain must
        // agree partition-by-partition on the key sets they see — the
        // invariant a partitioned hash join build rests on.
        let rows = 6 * VECTOR_SIZE + 17;
        let t = table(rows);
        let lanes = vec![
            RoutedLane {
                producers: morsel_producers(&t, 2),
                key_cols: vec![0],
            },
            RoutedLane {
                producers: morsel_producers(&t, 3),
                key_cols: vec![0],
            },
        ];
        let consumer = |src: Vec<BoxOp>, p: usize| -> Result<BoxOp, ExecError> {
            Ok(Box::new(KeySetConsumer {
                lanes: src,
                partition: p as i64,
                types: vec![DataType::I64; 4],
                done: false,
            }))
        };
        let mut ex = HashPartitionExchange::new(lanes, 4, &consumer).unwrap();
        let chunks = collect(&mut ex).unwrap();
        assert_eq!(chunks.len(), 4);
        let mut total0 = 0;
        let mut total1 = 0;
        for c in &chunks {
            assert_eq!(c.column(1).as_i64()[0], 1, "lane key sets must agree");
            total0 += c.column(2).as_i64()[0];
            total1 += c.column(3).as_i64()[0];
        }
        assert_eq!(total0 as usize, rows);
        assert_eq!(total1 as usize, rows);
    }

    #[test]
    fn partitioned_exchange_rejects_bad_keys() {
        let t = table(16);
        let mk =
            || -> Vec<BoxOp> { vec![Box::new(Scan::new(Arc::clone(&t), &["a"], 16).unwrap())] };
        let consumer =
            |mut src: Vec<BoxOp>, _p: usize| -> Result<BoxOp, ExecError> { Ok(src.pop().unwrap()) };
        let lane = |key_cols: Vec<usize>| {
            vec![RoutedLane {
                producers: mk(),
                key_cols,
            }]
        };
        assert!(HashPartitionExchange::new(lane(vec![]), 2, &consumer).is_err());
        assert!(HashPartitionExchange::new(lane(vec![3]), 2, &consumer).is_err());
        assert!(HashPartitionExchange::new(
            vec![RoutedLane {
                producers: Vec::new(),
                key_cols: vec![0],
            }],
            2,
            &consumer
        )
        .is_err());
        assert!(HashPartitionExchange::new(Vec::new(), 2, &consumer).is_err());
    }

    /// An f64 partition key is a *typed* construction-time error
    /// (`PlanError::TypeMismatch`), not a key-normalization panic on a
    /// worker thread mid-query.
    #[test]
    fn partitioned_exchange_rejects_float_key_with_typed_error() {
        let n = 16;
        let mut f = ColumnBuilder::with_capacity(DataType::F64, n);
        for i in 0..n {
            f.push_f64(i as f64);
        }
        let t = Arc::new(Table::new("tf", vec![("f".into(), f.finish())]).unwrap());
        let consumer =
            |mut src: Vec<BoxOp>, _p: usize| -> Result<BoxOp, ExecError> { Ok(src.pop().unwrap()) };
        let lanes = vec![RoutedLane {
            producers: vec![Box::new(Scan::new(t, &["f"], 16).unwrap()) as BoxOp],
            key_cols: vec![0],
        }];
        match HashPartitionExchange::new(lanes, 2, &consumer) {
            Err(ExecError::Plan(msg)) => {
                assert!(msg.contains("hashable key"), "unexpected message: {msg}");
                assert!(msg.contains("f64"), "unexpected message: {msg}");
            }
            Ok(_) => panic!("f64 partition key must be rejected"),
            Err(other) => panic!("expected a plan error, got {other}"),
        }
    }

    #[test]
    fn partitioned_drop_mid_stream_does_not_hang() {
        let rows = 64 * VECTOR_SIZE;
        let t = table(rows);
        let producers = morsel_producers(&t, 2);
        // Pass-through consumers so chunks stream (not block) to the union.
        let consumer =
            |mut src: Vec<BoxOp>, _p: usize| -> Result<BoxOp, ExecError> { Ok(src.pop().unwrap()) };
        let mut ex = HashPartitionExchange::new(single_lane(producers), 2, &consumer).unwrap();
        assert!(ex.next().unwrap().is_some());
        drop(ex); // blocked producers/consumers must unblock
    }

    #[test]
    fn early_exiting_consumer_does_not_truncate_other_partitions() {
        // A consumer may stop before draining its partition; the producers
        // must keep feeding the remaining partitions in full.
        let rows = 9 * VECTOR_SIZE + 5;
        let reference = partitioned_counts(2, 4, rows);
        let t = table(rows);
        let producers = morsel_producers(&t, 2);
        /// Immediately reports end-of-stream without draining its input.
        struct EarlyExit(Vec<DataType>);
        impl Operator for EarlyExit {
            fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
                Ok(None)
            }
            fn out_types(&self) -> &[DataType] {
                &self.0
            }
        }
        let consumer = |mut src: Vec<BoxOp>, p: usize| -> Result<BoxOp, ExecError> {
            if p == 0 {
                Ok(Box::new(EarlyExit(vec![DataType::I64; 3])))
            } else {
                Ok(Box::new(CountConsumer {
                    child: src.pop().unwrap(),
                    partition: p as i64,
                    types: vec![DataType::I64; 3],
                    done: false,
                }))
            }
        };
        let mut ex = HashPartitionExchange::new(single_lane(producers), 4, &consumer).unwrap();
        let chunks = collect(&mut ex).unwrap();
        let mut got: Vec<(i64, i64, i64)> = chunks
            .iter()
            .map(|c| {
                (
                    c.column(0).as_i64()[0],
                    c.column(1).as_i64()[0],
                    c.column(2).as_i64()[0],
                )
            })
            .collect();
        got.sort_unstable();
        // Partitions 1..3 must match the all-consumers reference exactly
        // (routing is deterministic); partition 0's tuples are dropped by
        // its consumer, not rerouted.
        assert_eq!(got, reference[1..].to_vec());
    }

    #[test]
    fn error_terminates_stream_for_good() {
        // After a fragment error surfaces, further polling must report
        // end-of-stream, not resume the surviving workers' output.
        struct FailAfter(usize, Vec<DataType>);
        impl Operator for FailAfter {
            fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
                if self.0 == 0 {
                    return Err(ExecError::Plan("injected".into()));
                }
                self.0 -= 1;
                Ok(Some(DataChunk::new(vec![Arc::new(Vector::I64(vec![1]))])))
            }
            fn out_types(&self) -> &[DataType] {
                &self.1
            }
        }
        let factory = |w: usize, _n: usize| -> Result<BoxOp, ExecError> {
            // Worker 0 fails fast; the others would happily stream forever.
            let budget = if w == 0 { 2 } else { usize::MAX };
            Ok(Box::new(FailAfter(budget, vec![DataType::I64])))
        };
        let mut par = Parallel::new(3, &factory).unwrap();
        let err = loop {
            match par.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("stream ended without surfacing the error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("injected"));
        assert!(par.next().unwrap().is_none(), "stream must stay terminated");
        assert!(par.next().unwrap().is_none());
    }

    #[test]
    fn splitmix_mixes_and_fnv_differs() {
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(fnv1a("a"), fnv1a("b"));
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
    }

    // --- MergeExchange ------------------------------------------------------

    /// Replays a fixed chunk list (a stand-in for a sorted worker stream).
    struct Replay {
        chunks: std::collections::VecDeque<DataChunk>,
        types: Vec<DataType>,
    }

    impl Replay {
        fn over(values: &[i64], chunk_rows: usize) -> Replay {
            let chunks = values
                .chunks(chunk_rows.max(1))
                .map(|c| DataChunk::new(vec![Arc::new(Vector::I64(c.to_vec()))]))
                .collect();
            Replay {
                chunks,
                types: vec![DataType::I64],
            }
        }
    }

    impl Operator for Replay {
        fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
            Ok(self.chunks.pop_front())
        }
        fn out_types(&self) -> &[DataType] {
            &self.types
        }
    }

    fn merged_values(streams: &[Vec<i64>], chunk_rows: usize) -> Vec<i64> {
        let producers: Vec<BoxOp> = streams
            .iter()
            .map(|s| Box::new(Replay::over(s, chunk_rows)) as BoxOp)
            .collect();
        let mut ex = MergeExchange::new(producers, 0).unwrap();
        let chunks = collect(&mut ex).unwrap();
        chunks
            .iter()
            .flat_map(|c| {
                c.live_positions()
                    .into_iter()
                    .map(|p| c.column(0).as_i64()[p])
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn merge_interleaves_disjoint_ranges() {
        // Morsel-style streams: each producer holds disjoint ascending
        // ranges of a globally sorted table.
        let streams = vec![
            vec![0, 1, 2, 10, 11, 12, 30, 31],
            vec![3, 4, 5, 20, 21, 22],
            vec![6, 7, 8, 9, 23, 24, 25],
        ];
        let got = merged_values(&streams, 3);
        let mut want: Vec<i64> = streams.iter().flatten().copied().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_handles_duplicates_across_producers() {
        // Equal keys straddling producer boundaries (a duplicate-key run
        // split across morsels) must merge into a non-decreasing stream
        // with nothing lost.
        let streams = vec![vec![1, 2, 2, 2, 5, 5], vec![2, 2, 3, 5, 7], vec![2, 5, 5]];
        let got = merged_values(&streams, 2);
        let mut want: Vec<i64> = streams.iter().flatten().copied().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_single_producer_passes_through() {
        let streams = vec![vec![1, 3, 5, 7, 9]];
        assert_eq!(merged_values(&streams, 2), streams[0]);
    }

    #[test]
    fn merge_with_empty_streams() {
        let streams = vec![vec![], vec![4, 5, 6], vec![]];
        assert_eq!(merged_values(&streams, 2), vec![4, 5, 6]);
    }

    #[test]
    fn merge_respects_selection_vectors() {
        // Dead positions of a producer chunk must not surface in the merge.
        let mut c1 = DataChunk::new(vec![Arc::new(Vector::I64(vec![1, 100, 3, 200, 5]))]);
        c1.set_sel(Some(SelVec::from_positions(vec![0, 2, 4])));
        let r1 = Replay {
            chunks: [c1].into_iter().collect(),
            types: vec![DataType::I64],
        };
        let r2 = Replay::over(&[2, 4, 6], 2);
        let mut ex = MergeExchange::new(vec![Box::new(r1) as BoxOp, Box::new(r2)], 0).unwrap();
        let chunks = collect(&mut ex).unwrap();
        let got: Vec<i64> = chunks
            .iter()
            .flat_map(|c| {
                c.live_positions()
                    .into_iter()
                    .map(|p| c.column(0).as_i64()[p])
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_over_morsel_scans_matches_sequential_scan() {
        // The planner's actual shape: sharded morsel scans over a table
        // sorted by its first column, merged back on that column — the
        // result must be the sequential scan, row for row.
        let rows = 13 * VECTOR_SIZE + 271;
        let t = table(rows);
        for workers in [1, 2, 4] {
            let producers = morsel_producers(&t, workers);
            let mut ex = MergeExchange::new(producers, 0).unwrap();
            let chunks = collect(&mut ex).unwrap();
            assert_eq!(total_rows(&chunks), rows);
            let vals: Vec<i64> = chunks
                .iter()
                .flat_map(|c| {
                    c.live_positions()
                        .into_iter()
                        .map(|p| c.column(0).as_i64()[p])
                        .collect::<Vec<_>>()
                })
                .collect();
            assert!(
                vals.iter().enumerate().all(|(i, &v)| v == i as i64),
                "{workers}-producer merge is not the identity scan"
            );
        }
    }

    #[test]
    fn merge_rejects_bad_keys() {
        let mk = || Box::new(Replay::over(&[1, 2], 2)) as BoxOp;
        assert!(MergeExchange::new(vec![mk()], 3).is_err());
        assert!(MergeExchange::new(Vec::new(), 0).is_err());
        let strs = Box::new(Replay {
            chunks: Default::default(),
            types: vec![DataType::Str],
        }) as BoxOp;
        assert!(MergeExchange::new(vec![strs], 0).is_err());
    }

    #[test]
    fn merge_drop_mid_stream_does_not_hang() {
        let rows = 64 * VECTOR_SIZE;
        let t = table(rows);
        let producers = morsel_producers(&t, 4);
        let mut ex = MergeExchange::new(producers, 0).unwrap();
        assert!(ex.next().unwrap().is_some());
        drop(ex); // producers blocked on full channels must unblock
    }

    #[test]
    fn merge_error_terminates_stream() {
        struct Fail;
        impl Operator for Fail {
            fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
                Err(ExecError::Plan("injected".into()))
            }
            fn out_types(&self) -> &[DataType] {
                const T: [DataType; 1] = [DataType::I64];
                &T
            }
        }
        let producers: Vec<BoxOp> = vec![Box::new(Replay::over(&[1, 2, 3], 2)), Box::new(Fail)];
        let mut ex = MergeExchange::new(producers, 0).unwrap();
        let err = loop {
            match ex.next() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("stream ended without surfacing the error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("injected"));
        assert!(ex.next().unwrap().is_none(), "stream must stay terminated");
    }
}
