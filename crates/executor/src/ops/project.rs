//! Projection operator: computes expression columns via `map_*` primitives.

use std::sync::Arc;

use ma_vector::{DataChunk, DataType};

use crate::eval::CompiledExpr;
use crate::expr::Expr;
use crate::ops::{BoxOp, Operator};
use crate::{ExecError, QueryContext};

/// One output column of a projection.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjItem {
    /// Pass an input column through unchanged (shared, not copied).
    Pass(usize),
    /// Compute an expression.
    Expr(Expr),
}

enum CompiledItem {
    Pass(usize),
    Expr(CompiledExpr),
}

/// Non-duplicate-eliminating projection (§1: "typically used to compute
/// expressions as new columns"). Keeps the child's selection vector;
/// computed columns are defined at live positions.
pub struct Project {
    child: BoxOp,
    items: Vec<CompiledItem>,
    types: Vec<DataType>,
}

impl Project {
    /// Compiles the projection list against the child's schema.
    pub fn new(
        child: BoxOp,
        items: Vec<ProjItem>,
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        let in_types = child.out_types().to_vec();
        let mut compiled = Vec::with_capacity(items.len());
        let mut types = Vec::with_capacity(items.len());
        for (k, item) in items.into_iter().enumerate() {
            match item {
                ProjItem::Pass(i) => {
                    let ty = *in_types
                        .get(i)
                        .ok_or_else(|| ExecError::Plan(format!("column {i} out of range")))?;
                    compiled.push(CompiledItem::Pass(i));
                    types.push(ty);
                }
                ProjItem::Expr(e) => {
                    let ce = CompiledExpr::compile(&e, &in_types, ctx, &format!("{label}#{k}"))?;
                    types.push(ce.out_type());
                    compiled.push(CompiledItem::Expr(ce));
                }
            }
        }
        Ok(Project {
            child,
            items: compiled,
            types,
        })
    }
}

impl Operator for Project {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        let Some(chunk) = self.child.next()? else {
            return Ok(None);
        };
        let mut cols = Vec::with_capacity(self.items.len());
        for item in &mut self.items {
            match item {
                CompiledItem::Pass(i) => cols.push(Arc::clone(chunk.column(*i))),
                CompiledItem::Expr(ce) => cols.push(ce.eval(&chunk)?),
            }
        }
        let mut out = DataChunk::new(cols);
        out.set_sel(chunk.sel().cloned());
        Ok(Some(out))
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::expr::{CmpKind, Pred, Value};
    use crate::ops::{collect, Scan, Select};
    use ma_primitives::build_dictionary;
    use ma_vector::{ColumnBuilder, Table};

    fn ctx() -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), ExecConfig::fixed_default())
    }

    fn scan(n: usize) -> BoxOp {
        let mut a = ColumnBuilder::with_capacity(DataType::I64, n);
        let mut b = ColumnBuilder::with_capacity(DataType::I64, n);
        for i in 0..n {
            a.push_i64(i as i64);
            b.push_i64((i * 2) as i64);
        }
        let t = Arc::new(
            Table::new(
                "t",
                vec![("a".into(), a.finish()), ("b".into(), b.finish())],
            )
            .unwrap(),
        );
        Box::new(Scan::new(t, &["a", "b"], 128).unwrap())
    }

    #[test]
    fn computes_expressions_and_passes_columns() {
        let c = ctx();
        let mut p = Project::new(
            scan(300),
            vec![
                ProjItem::Pass(0),
                ProjItem::Expr(Expr::mul(Expr::col(0), Expr::col(1))),
                ProjItem::Expr(Expr::add(Expr::col(1), Expr::i64(5))),
            ],
            &c,
            "t",
        )
        .unwrap();
        assert_eq!(
            p.out_types(),
            &[DataType::I64, DataType::I64, DataType::I64]
        );
        let chunks = collect(&mut p).unwrap();
        let ch = &chunks[1]; // rows 128..256
        let i = 10;
        let a = (128 + i) as i64;
        assert_eq!(ch.column(0).as_i64()[i], a);
        assert_eq!(ch.column(1).as_i64()[i], a * (a * 2));
        assert_eq!(ch.column(2).as_i64()[i], a * 2 + 5);
    }

    #[test]
    fn propagates_selection_vector() {
        let c = ctx();
        let pred = Pred::cmp_val(0, CmpKind::Lt, Value::I64(10));
        let sel = Select::new(scan(100), &pred, &c, "s").unwrap();
        let mut p = Project::new(
            Box::new(sel),
            vec![ProjItem::Expr(Expr::mul(Expr::col(0), Expr::i64(3)))],
            &c,
            "p",
        )
        .unwrap();
        let chunks = collect(&mut p).unwrap();
        assert_eq!(chunks.len(), 1);
        let ch = &chunks[0];
        assert_eq!(ch.live_count(), 10);
        for pnum in ch.live_positions() {
            assert_eq!(ch.column(0).as_i64()[pnum], (pnum as i64) * 3);
        }
    }

    #[test]
    fn pass_shares_column_data() {
        let c = ctx();
        let mut p = Project::new(scan(10), vec![ProjItem::Pass(1)], &c, "t").unwrap();
        let ch = p.next().unwrap().unwrap();
        assert_eq!(ch.column(0).as_i64()[4], 8);
    }

    #[test]
    fn bad_pass_index_rejected() {
        let c = ctx();
        assert!(Project::new(scan(10), vec![ProjItem::Pass(9)], &c, "t").is_err());
    }
}
