//! Table scan: materializes chunks from an in-memory columnar table.
//!
//! Scan decompression runs *inside* the scan, bypassing the expression
//! evaluator (§4.1 notes Vectorwise does the same) — but the decode loops
//! themselves are flavored primitives: a scan built
//! [`Scan::with_context`] decodes each compressed column partition
//! through a [`PrimInstance`], so the per-morsel bandit picks the
//! fastest unpack variant exactly like any selection or map primitive.
//! Without a context (or under [`crate::config::DecodeMode::Reference`])
//! encoded columns decode through the bit-for-bit reference path in
//! [`ma_vector::encode`].
//!
//! Two cursor modes share one operator: a *sequential* cursor walking the
//! whole table, and a *morsel* cursor pulling row ranges from a shared
//! [`MorselQueue`] so several workers shard one table. Because morsels are
//! vector-aligned, the multiset of chunk boundaries is identical in both
//! modes — only which worker produces a chunk varies.

use std::sync::Arc;

use ma_primitives::{DecodeDeltaCol, DecodeDictCol, DecodeForCol};
use ma_vector::encode::{part_ranges, DictStr, EncColumn, ENC_PART_ROWS, SYNC_ROWS};
use ma_vector::{Column, DataChunk, DataType, MorselQueue, RowRange, StrVec, Table, Vector};

use crate::adaptive::{HeurKind, PrimInstance, QueryContext};
use crate::ops::Operator;
use crate::ExecError;

enum Cursor {
    /// Walk the whole table front to back.
    Seq { pos: usize },
    /// Pull vector-aligned ranges from a queue shared between workers.
    Morsel {
        queue: Arc<MorselQueue>,
        current: Option<RowRange>,
        off: usize,
    },
}

/// How one scanned column turns encoded partitions into value vectors.
enum ColDecoder {
    /// Raw column, or encoded without a context: `Column::slice_vector`
    /// (the reference decode path for encoded columns).
    Reference,
    /// Frame-of-reference `i32` through a flavored decode instance.
    ForI32(PrimInstance<DecodeForCol<i32>>),
    /// Frame-of-reference `i64` through a flavored decode instance.
    ForI64(PrimInstance<DecodeForCol<i64>>),
    /// Delta-coded `i32` through a flavored decode instance.
    DeltaI32(PrimInstance<DecodeDeltaCol>),
    /// Dictionary-coded strings through a flavored decode instance.
    DictStr(PrimInstance<DecodeDictCol>),
}

/// Scan over selected columns of a table (sequential or morsel-sharded).
pub struct Scan {
    table: Arc<Table>,
    col_idx: Vec<usize>,
    types: Vec<DataType>,
    vector_size: usize,
    cursor: Cursor,
    decoders: Vec<ColDecoder>,
}

impl Scan {
    fn build(
        table: Arc<Table>,
        columns: &[&str],
        vector_size: usize,
        cursor: Cursor,
    ) -> Result<Self, ExecError> {
        let mut col_idx = Vec::with_capacity(columns.len());
        let mut types = Vec::with_capacity(columns.len());
        for name in columns {
            let i = table.column_index(name)?;
            col_idx.push(i);
            types.push(table.column_at(i).data_type());
        }
        let decoders = col_idx.iter().map(|_| ColDecoder::Reference).collect();
        Ok(Scan {
            table,
            col_idx,
            types,
            vector_size,
            cursor,
            decoders,
        })
    }

    /// Attaches flavored decode instances for every encoded column, one
    /// [`PrimInstance`] per column so each compressed stream gets its own
    /// bandit state (labels fold per column in
    /// [`QueryContext::merged_reports`]). Columns without a codec — and
    /// every column when the table is raw — keep the reference decoder,
    /// so this is always safe to call.
    pub fn with_context(mut self, ctx: &QueryContext, label: &str) -> Result<Self, ExecError> {
        for (k, &i) in self.col_idx.iter().enumerate() {
            let Column::Enc(e) = self.table.column_at(i) else {
                continue;
            };
            let col_name = &self.table.column_names()[i];
            let lbl = |sig: &str| format!("{label}/{col_name}/{sig}");
            self.decoders[k] =
                match &**e {
                    EncColumn::For(c) if c.dt == DataType::I32 => ColDecoder::ForI32(
                        ctx.instance("decode_for_i32", lbl("decode_for_i32"), HeurKind::None)?,
                    ),
                    EncColumn::For(_) => ColDecoder::ForI64(ctx.instance(
                        "decode_for_i64",
                        lbl("decode_for_i64"),
                        HeurKind::None,
                    )?),
                    EncColumn::Delta(_) => ColDecoder::DeltaI32(ctx.instance(
                        "decode_delta_i32",
                        lbl("decode_delta_i32"),
                        HeurKind::None,
                    )?),
                    EncColumn::Dict(_) => ColDecoder::DictStr(ctx.instance(
                        "decode_dict_str",
                        lbl("decode_dict_str"),
                        HeurKind::None,
                    )?),
                };
        }
        Ok(self)
    }

    /// Builds a sequential scan of `columns` (by name, output order as
    /// given).
    pub fn new(table: Arc<Table>, columns: &[&str], vector_size: usize) -> Result<Self, ExecError> {
        Scan::build(table, columns, vector_size, Cursor::Seq { pos: 0 })
    }

    /// Builds a morsel-sharded scan: ranges come from `queue`, which must
    /// cover exactly this table's rows and is typically shared with the
    /// sibling workers of a [`crate::ops::Parallel`]. The morsel size must
    /// be a multiple of `vector_size` so chunk boundaries coincide with
    /// the sequential scan's (the worker-count-invariance contract of
    /// DESIGN.md §5).
    pub fn morsel(
        table: Arc<Table>,
        columns: &[&str],
        vector_size: usize,
        queue: Arc<MorselQueue>,
    ) -> Result<Self, ExecError> {
        if queue.rows() != table.rows() {
            return Err(ExecError::Plan(format!(
                "morsel queue covers {} rows but table {} has {}",
                queue.rows(),
                table.name(),
                table.rows()
            )));
        }
        if vector_size == 0 || !queue.morsel_rows().is_multiple_of(vector_size) {
            return Err(ExecError::Plan(format!(
                "morsel size {} is not a multiple of vector size {vector_size}",
                queue.morsel_rows()
            )));
        }
        Scan::build(
            table,
            columns,
            vector_size,
            Cursor::Morsel {
                queue,
                current: None,
                off: 0,
            },
        )
    }

    /// The next `(start, len)` slice to emit, advancing the cursor.
    fn next_slice(&mut self) -> Option<(usize, usize)> {
        match &mut self.cursor {
            Cursor::Seq { pos } => {
                let rows = self.table.rows();
                if *pos >= rows {
                    return None;
                }
                let n = (rows - *pos).min(self.vector_size);
                let start = *pos;
                *pos += n;
                Some((start, n))
            }
            Cursor::Morsel {
                queue,
                current,
                off,
            } => loop {
                match current {
                    Some(r) if *off < r.len => {
                        let start = r.start + *off;
                        let n = (r.len - *off).min(self.vector_size);
                        *off += n;
                        return Some((start, n));
                    }
                    _ => {
                        *current = Some(queue.claim()?);
                        *off = 0;
                    }
                }
            },
        }
    }
}

/// Decodes dict partitions overlapping `[start, start + n)` through the
/// flavor chosen for this call, assembling a code-carrying [`StrVec`].
fn decode_dict_slice(
    inst: &mut PrimInstance<DecodeDictCol>,
    c: &DictStr,
    start: usize,
    n: usize,
) -> Vector {
    let mut views = vec![(0u32, 0u32); n];
    let mut codes = vec![0i32; n];
    inst.invoke(n as u64, |f| {
        let mut o = 0;
        for (p, lo, m) in part_ranges(start, n) {
            let part = &c.parts[p];
            f(
                &mut views[o..],
                &mut codes[o..],
                &c.words,
                (part.word0 as u64) * 64,
                c.width,
                &c.views,
                lo,
                m,
            );
            o += m;
        }
    });
    Vector::Str(StrVec::from_dict(
        Arc::clone(&c.arena),
        Arc::clone(&c.views),
        views,
        codes,
    ))
}

impl Operator for Scan {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        let Some((start, n)) = self.next_slice() else {
            return Ok(None);
        };
        let mut cols = Vec::with_capacity(self.col_idx.len());
        for (k, &i) in self.col_idx.iter().enumerate() {
            let col = self.table.column_at(i);
            // One `invoke` per vector: the decode instance observes each
            // morsel's chunks individually, the unit the bandit adapts.
            let v = match (&mut self.decoders[k], col) {
                (ColDecoder::Reference, col) => col.slice_vector(start, n),
                (ColDecoder::ForI32(inst), Column::Enc(e)) => {
                    let EncColumn::For(c) = &**e else {
                        unreachable!("decoder built from this column");
                    };
                    let mut out = vec![0i32; n];
                    inst.invoke(n as u64, |f| {
                        let mut o = 0;
                        for (p, lo, m) in part_ranges(start, n) {
                            let part = &c.parts[p];
                            f(
                                &mut out[o..],
                                &c.words,
                                (part.word0 as u64) * 64,
                                part.width,
                                part.base,
                                lo,
                                m,
                            );
                            o += m;
                        }
                    });
                    Vector::I32(out)
                }
                (ColDecoder::ForI64(inst), Column::Enc(e)) => {
                    let EncColumn::For(c) = &**e else {
                        unreachable!("decoder built from this column");
                    };
                    let mut out = vec![0i64; n];
                    inst.invoke(n as u64, |f| {
                        let mut o = 0;
                        for (p, lo, m) in part_ranges(start, n) {
                            let part = &c.parts[p];
                            f(
                                &mut out[o..],
                                &c.words,
                                (part.word0 as u64) * 64,
                                part.width,
                                part.base,
                                lo,
                                m,
                            );
                            o += m;
                        }
                    });
                    Vector::I64(out)
                }
                (ColDecoder::DeltaI32(inst), Column::Enc(e)) => {
                    let EncColumn::Delta(c) = &**e else {
                        unreachable!("decoder built from this column");
                    };
                    let mut out = vec![0i32; n];
                    inst.invoke(n as u64, |f| {
                        let mut o = 0;
                        for (p, lo, m) in part_ranges(start, n) {
                            let part = &c.parts[p];
                            let bases = &c.sync[p * (ENC_PART_ROWS / SYNC_ROWS)..];
                            f(
                                &mut out[o..],
                                &c.words,
                                (part.word0 as u64) * 64,
                                part.width,
                                bases,
                                lo,
                                m,
                            );
                            o += m;
                        }
                    });
                    Vector::I32(out)
                }
                (ColDecoder::DictStr(inst), Column::Enc(e)) => {
                    let EncColumn::Dict(c) = &**e else {
                        unreachable!("decoder built from this column");
                    };
                    decode_dict_slice(inst, c, start, n)
                }
                (_, col) => col.slice_vector(start, n),
            };
            cols.push(Arc::new(v));
        }
        Ok(Some(DataChunk::new(cols)))
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, total_rows};
    use ma_vector::{Column, ColumnBuilder};

    fn table(n: usize) -> Arc<Table> {
        let mut a = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, n);
        for i in 0..n {
            a.push_i32(i as i32);
            s.push_str(&format!("row{i}"));
        }
        Arc::new(
            Table::new(
                "t",
                vec![("a".into(), a.finish()), ("s".into(), s.finish())],
            )
            .unwrap(),
        )
    }

    #[test]
    fn scans_all_rows_in_chunks() {
        let t = table(2500);
        let mut scan = Scan::new(t, &["a", "s"], 1024).unwrap();
        assert_eq!(scan.out_types(), &[DataType::I32, DataType::Str]);
        let chunks = collect(&mut scan).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 1024);
        assert_eq!(chunks[2].len(), 452);
        assert_eq!(total_rows(&chunks), 2500);
        assert_eq!(chunks[1].column(0).as_i32()[0], 1024);
        assert_eq!(chunks[1].column(1).as_str_vec().get(0), "row1024");
    }

    #[test]
    fn column_order_follows_request() {
        let t = table(10);
        let mut scan = Scan::new(t, &["s", "a"], 16).unwrap();
        assert_eq!(scan.out_types(), &[DataType::Str, DataType::I32]);
        let c = scan.next().unwrap().unwrap();
        assert_eq!(c.column(1).as_i32()[3], 3);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table(1);
        assert!(Scan::new(t, &["nope"], 16).is_err());
    }

    #[test]
    fn morsel_scan_covers_table_with_aligned_boundaries() {
        let t = table(2500);
        let queue = Arc::new(ma_vector::MorselQueue::with_morsel(2500, 1024));
        let mut scan = Scan::morsel(t.clone(), &["a"], 1024, queue).unwrap();
        let chunks = collect(&mut scan).unwrap();
        // Same boundary multiset as the sequential scan: 1024, 1024, 452.
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![1024, 1024, 452]
        );
        assert_eq!(total_rows(&chunks), 2500);
        assert_eq!(chunks[1].column(0).as_i32()[0], 1024);
    }

    #[test]
    fn morsel_queue_size_mismatch_rejected() {
        let t = table(100);
        let queue = Arc::new(ma_vector::MorselQueue::new(99));
        assert!(Scan::morsel(t, &["a"], 16, queue).is_err());
    }

    #[test]
    fn misaligned_morsel_rejected() {
        // Morsel of 1000 rows with a vector size of 1024: boundaries would
        // diverge from the sequential scan's, so construction must fail.
        let t = table(2500);
        let queue = Arc::new(ma_vector::MorselQueue::with_morsel(2500, 1000));
        assert!(Scan::morsel(t, &["a"], 1024, queue).is_err());
    }

    #[test]
    fn empty_table_yields_no_chunks() {
        let t =
            Arc::new(Table::new("e", vec![("a".into(), Column::I32(Arc::new(vec![])))]).unwrap());
        let mut scan = Scan::new(t, &["a"], 16).unwrap();
        assert!(scan.next().unwrap().is_none());
    }

    fn ctx() -> crate::QueryContext {
        crate::QueryContext::new(
            Arc::new(ma_primitives::build_dictionary()),
            crate::ExecConfig::fixed_default(),
        )
    }

    /// A table whose three columns each pick a different codec: `key` is
    /// nondecreasing i32 (delta), `cat` is low-NDV strings (dict), `qty`
    /// is bounded i64 (frame-of-reference).
    fn encoded_pair(n: usize) -> (Arc<Table>, Arc<Table>) {
        let mut key = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut cat = ColumnBuilder::with_capacity(DataType::Str, n);
        let mut qty = ColumnBuilder::with_capacity(DataType::I64, n);
        for i in 0..n {
            key.push_i32((i / 3) as i32);
            cat.push_str(&format!("cat{}", i % 13));
            qty.push_i64((i % 50) as i64 + 1);
        }
        let raw = Arc::new(
            Table::new(
                "t",
                vec![
                    ("key".into(), key.finish()),
                    ("cat".into(), cat.finish()),
                    ("qty".into(), qty.finish()),
                ],
            )
            .unwrap(),
        );
        let enc = Arc::new(ma_vector::encode_table(&raw));
        (raw, enc)
    }

    #[test]
    fn encoded_scan_with_context_matches_raw_scan() {
        let n = 2 * ENC_PART_ROWS + 777; // straddle a partition boundary
        let (raw, enc) = encoded_pair(n);
        for i in 0..3 {
            assert!(matches!(enc.column_at(i), Column::Enc(_)), "column {i}");
        }
        let ctx = ctx();
        let mut raw_scan = Scan::new(raw, &["key", "cat", "qty"], 1024).unwrap();
        let mut enc_scan = Scan::new(enc, &["key", "cat", "qty"], 1024)
            .unwrap()
            .with_context(&ctx, "scan_t")
            .unwrap();
        loop {
            match (raw_scan.next().unwrap(), enc_scan.next().unwrap()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.len(), b.len());
                    assert_eq!(a.column(0).as_i32(), b.column(0).as_i32());
                    assert_eq!(a.column(2).as_i64(), b.column(2).as_i64());
                    let (sa, sb) = (a.column(1).as_str_vec(), b.column(1).as_str_vec());
                    assert!(sa.iter().eq(sb.iter()));
                    // The decoded dict vector carries codes for pushdown.
                    assert!(sb.dict_codes().is_some());
                }
                (a, b) => panic!(
                    "chunk count diverged: {:?} vs {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        drop(enc_scan);
        // One decode instance per encoded column, visible under its label.
        let reports = ctx.reports();
        for sig in ["decode_delta_i32", "decode_dict_str", "decode_for_i64"] {
            assert_eq!(
                reports
                    .iter()
                    .filter(|r| r.signature == sig && r.label.starts_with("scan_t/"))
                    .count(),
                1,
                "{sig}"
            );
        }
    }

    #[test]
    fn with_context_on_raw_table_keeps_reference_decoders() {
        let t = table(100);
        let ctx = ctx();
        let mut scan = Scan::new(t, &["a", "s"], 64)
            .unwrap()
            .with_context(&ctx, "scan_t")
            .unwrap();
        let c = scan.next().unwrap().unwrap();
        assert_eq!(c.column(0).as_i32()[5], 5);
        drop(scan);
        assert!(ctx
            .reports()
            .iter()
            .all(|r| !r.signature.starts_with("decode_")));
    }

    #[test]
    fn morsel_scan_decodes_encoded_partitions() {
        let n = 2 * ENC_PART_ROWS;
        let (raw, enc) = encoded_pair(n);
        let queue = Arc::new(ma_vector::MorselQueue::with_morsel(n, 8 * 1024));
        let ctx = ctx();
        let mut scan = Scan::morsel(enc, &["qty", "key"], 1024, queue)
            .unwrap()
            .with_context(&ctx, "scan_t")
            .unwrap();
        let chunks = collect(&mut scan).unwrap();
        assert_eq!(total_rows(&chunks), n);
        let raw_qty = raw.column_at(2).slice_vector(0, n);
        let mut row = 0;
        for ch in &chunks {
            for j in 0..ch.len() {
                assert_eq!(ch.column(0).as_i64()[j], raw_qty.as_i64()[row + j]);
            }
            row += ch.len();
        }
    }
}
