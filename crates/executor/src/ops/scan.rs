//! Table scan: materializes chunks from an in-memory columnar table.
//!
//! Scan decompression bypasses the expression evaluator in Vectorwise (§4.1
//! notes this explicitly), so scans use no flavored primitives here either.
//!
//! Two cursor modes share one operator: a *sequential* cursor walking the
//! whole table, and a *morsel* cursor pulling row ranges from a shared
//! [`MorselQueue`] so several workers shard one table. Because morsels are
//! vector-aligned, the multiset of chunk boundaries is identical in both
//! modes — only which worker produces a chunk varies.

use std::sync::Arc;

use ma_vector::{DataChunk, DataType, MorselQueue, RowRange, Table};

use crate::ops::Operator;
use crate::ExecError;

enum Cursor {
    /// Walk the whole table front to back.
    Seq { pos: usize },
    /// Pull vector-aligned ranges from a queue shared between workers.
    Morsel {
        queue: Arc<MorselQueue>,
        current: Option<RowRange>,
        off: usize,
    },
}

/// Scan over selected columns of a table (sequential or morsel-sharded).
pub struct Scan {
    table: Arc<Table>,
    col_idx: Vec<usize>,
    types: Vec<DataType>,
    vector_size: usize,
    cursor: Cursor,
}

impl Scan {
    fn build(
        table: Arc<Table>,
        columns: &[&str],
        vector_size: usize,
        cursor: Cursor,
    ) -> Result<Self, ExecError> {
        let mut col_idx = Vec::with_capacity(columns.len());
        let mut types = Vec::with_capacity(columns.len());
        for name in columns {
            let i = table.column_index(name)?;
            col_idx.push(i);
            types.push(table.column_at(i).data_type());
        }
        Ok(Scan {
            table,
            col_idx,
            types,
            vector_size,
            cursor,
        })
    }

    /// Builds a sequential scan of `columns` (by name, output order as
    /// given).
    pub fn new(table: Arc<Table>, columns: &[&str], vector_size: usize) -> Result<Self, ExecError> {
        Scan::build(table, columns, vector_size, Cursor::Seq { pos: 0 })
    }

    /// Builds a morsel-sharded scan: ranges come from `queue`, which must
    /// cover exactly this table's rows and is typically shared with the
    /// sibling workers of a [`crate::ops::Parallel`]. The morsel size must
    /// be a multiple of `vector_size` so chunk boundaries coincide with
    /// the sequential scan's (the worker-count-invariance contract of
    /// DESIGN.md §5).
    pub fn morsel(
        table: Arc<Table>,
        columns: &[&str],
        vector_size: usize,
        queue: Arc<MorselQueue>,
    ) -> Result<Self, ExecError> {
        if queue.rows() != table.rows() {
            return Err(ExecError::Plan(format!(
                "morsel queue covers {} rows but table {} has {}",
                queue.rows(),
                table.name(),
                table.rows()
            )));
        }
        if vector_size == 0 || !queue.morsel_rows().is_multiple_of(vector_size) {
            return Err(ExecError::Plan(format!(
                "morsel size {} is not a multiple of vector size {vector_size}",
                queue.morsel_rows()
            )));
        }
        Scan::build(
            table,
            columns,
            vector_size,
            Cursor::Morsel {
                queue,
                current: None,
                off: 0,
            },
        )
    }

    /// The next `(start, len)` slice to emit, advancing the cursor.
    fn next_slice(&mut self) -> Option<(usize, usize)> {
        match &mut self.cursor {
            Cursor::Seq { pos } => {
                let rows = self.table.rows();
                if *pos >= rows {
                    return None;
                }
                let n = (rows - *pos).min(self.vector_size);
                let start = *pos;
                *pos += n;
                Some((start, n))
            }
            Cursor::Morsel {
                queue,
                current,
                off,
            } => loop {
                match current {
                    Some(r) if *off < r.len => {
                        let start = r.start + *off;
                        let n = (r.len - *off).min(self.vector_size);
                        *off += n;
                        return Some((start, n));
                    }
                    _ => {
                        *current = Some(queue.claim()?);
                        *off = 0;
                    }
                }
            },
        }
    }
}

impl Operator for Scan {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        let Some((start, n)) = self.next_slice() else {
            return Ok(None);
        };
        let cols = self
            .col_idx
            .iter()
            .map(|&i| Arc::new(self.table.column_at(i).slice_vector(start, n)))
            .collect();
        Ok(Some(DataChunk::new(cols)))
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, total_rows};
    use ma_vector::{Column, ColumnBuilder};

    fn table(n: usize) -> Arc<Table> {
        let mut a = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, n);
        for i in 0..n {
            a.push_i32(i as i32);
            s.push_str(&format!("row{i}"));
        }
        Arc::new(
            Table::new(
                "t",
                vec![("a".into(), a.finish()), ("s".into(), s.finish())],
            )
            .unwrap(),
        )
    }

    #[test]
    fn scans_all_rows_in_chunks() {
        let t = table(2500);
        let mut scan = Scan::new(t, &["a", "s"], 1024).unwrap();
        assert_eq!(scan.out_types(), &[DataType::I32, DataType::Str]);
        let chunks = collect(&mut scan).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 1024);
        assert_eq!(chunks[2].len(), 452);
        assert_eq!(total_rows(&chunks), 2500);
        assert_eq!(chunks[1].column(0).as_i32()[0], 1024);
        assert_eq!(chunks[1].column(1).as_str_vec().get(0), "row1024");
    }

    #[test]
    fn column_order_follows_request() {
        let t = table(10);
        let mut scan = Scan::new(t, &["s", "a"], 16).unwrap();
        assert_eq!(scan.out_types(), &[DataType::Str, DataType::I32]);
        let c = scan.next().unwrap().unwrap();
        assert_eq!(c.column(1).as_i32()[3], 3);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table(1);
        assert!(Scan::new(t, &["nope"], 16).is_err());
    }

    #[test]
    fn morsel_scan_covers_table_with_aligned_boundaries() {
        let t = table(2500);
        let queue = Arc::new(ma_vector::MorselQueue::with_morsel(2500, 1024));
        let mut scan = Scan::morsel(t.clone(), &["a"], 1024, queue).unwrap();
        let chunks = collect(&mut scan).unwrap();
        // Same boundary multiset as the sequential scan: 1024, 1024, 452.
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![1024, 1024, 452]
        );
        assert_eq!(total_rows(&chunks), 2500);
        assert_eq!(chunks[1].column(0).as_i32()[0], 1024);
    }

    #[test]
    fn morsel_queue_size_mismatch_rejected() {
        let t = table(100);
        let queue = Arc::new(ma_vector::MorselQueue::new(99));
        assert!(Scan::morsel(t, &["a"], 16, queue).is_err());
    }

    #[test]
    fn misaligned_morsel_rejected() {
        // Morsel of 1000 rows with a vector size of 1024: boundaries would
        // diverge from the sequential scan's, so construction must fail.
        let t = table(2500);
        let queue = Arc::new(ma_vector::MorselQueue::with_morsel(2500, 1000));
        assert!(Scan::morsel(t, &["a"], 1024, queue).is_err());
    }

    #[test]
    fn empty_table_yields_no_chunks() {
        let t =
            Arc::new(Table::new("e", vec![("a".into(), Column::I32(Arc::new(vec![])))]).unwrap());
        let mut scan = Scan::new(t, &["a"], 16).unwrap();
        assert!(scan.next().unwrap().is_none());
    }
}
