//! Table scan: materializes chunks from an in-memory columnar table.
//!
//! Scan decompression bypasses the expression evaluator in Vectorwise (§4.1
//! notes this explicitly), so scans use no flavored primitives here either.

use std::sync::Arc;

use ma_vector::{DataChunk, DataType, Table};

use crate::ops::Operator;
use crate::ExecError;

/// Sequential scan over selected columns of a table.
pub struct Scan {
    table: Arc<Table>,
    col_idx: Vec<usize>,
    types: Vec<DataType>,
    vector_size: usize,
    pos: usize,
}

impl Scan {
    /// Builds a scan of `columns` (by name, output order as given).
    pub fn new(table: Arc<Table>, columns: &[&str], vector_size: usize) -> Result<Self, ExecError> {
        let mut col_idx = Vec::with_capacity(columns.len());
        let mut types = Vec::with_capacity(columns.len());
        for name in columns {
            let i = table.column_index(name)?;
            col_idx.push(i);
            types.push(table.column_at(i).data_type());
        }
        Ok(Scan {
            table,
            col_idx,
            types,
            vector_size,
            pos: 0,
        })
    }
}

impl Operator for Scan {
    fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
        let rows = self.table.rows();
        if self.pos >= rows {
            return Ok(None);
        }
        let n = (rows - self.pos).min(self.vector_size);
        let cols = self
            .col_idx
            .iter()
            .map(|&i| Arc::new(self.table.column_at(i).slice_vector(self.pos, n)))
            .collect();
        self.pos += n;
        Ok(Some(DataChunk::new(cols)))
    }

    fn out_types(&self) -> &[DataType] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{collect, total_rows};
    use ma_vector::{Column, ColumnBuilder};

    fn table(n: usize) -> Arc<Table> {
        let mut a = ColumnBuilder::with_capacity(DataType::I32, n);
        let mut s = ColumnBuilder::with_capacity(DataType::Str, n);
        for i in 0..n {
            a.push_i32(i as i32);
            s.push_str(&format!("row{i}"));
        }
        Arc::new(
            Table::new(
                "t",
                vec![("a".into(), a.finish()), ("s".into(), s.finish())],
            )
            .unwrap(),
        )
    }

    #[test]
    fn scans_all_rows_in_chunks() {
        let t = table(2500);
        let mut scan = Scan::new(t, &["a", "s"], 1024).unwrap();
        assert_eq!(scan.out_types(), &[DataType::I32, DataType::Str]);
        let chunks = collect(&mut scan).unwrap();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 1024);
        assert_eq!(chunks[2].len(), 452);
        assert_eq!(total_rows(&chunks), 2500);
        assert_eq!(chunks[1].column(0).as_i32()[0], 1024);
        assert_eq!(chunks[1].column(1).as_str_vec().get(0), "row1024");
    }

    #[test]
    fn column_order_follows_request() {
        let t = table(10);
        let mut scan = Scan::new(t, &["s", "a"], 16).unwrap();
        assert_eq!(scan.out_types(), &[DataType::Str, DataType::I32]);
        let c = scan.next().unwrap().unwrap();
        assert_eq!(c.column(1).as_i32()[3], 3);
    }

    #[test]
    fn unknown_column_errors() {
        let t = table(1);
        assert!(Scan::new(t, &["nope"], 16).is_err());
    }

    #[test]
    fn empty_table_yields_no_chunks() {
        let t =
            Arc::new(Table::new("e", vec![("a".into(), Column::I32(Arc::new(vec![])))]).unwrap());
        let mut scan = Scan::new(t, &["a"], 16).unwrap();
        assert!(scan.next().unwrap().is_none());
    }
}
