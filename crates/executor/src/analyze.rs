//! Abstract interpretation over logical plans (DESIGN.md §11).
//!
//! A forward dataflow pass that propagates per-column *facts* — integer
//! intervals `[lo, hi]`, float finiteness, distinct-count (NDV) upper
//! bounds, all-distinctness proofs — plus a per-node row-count upper bound
//! from base-table statistics ([`ma_vector::ColumnStats`]) through every
//! [`LogicalPlan`] node:
//!
//! * **Scan** seeds facts from exact table stats; the row bound is the
//!   catalog's row count (`base_rows`), which [`crate::plan::Catalog`]
//!   contracts to be exact.
//! * **Filter** narrows intervals through comparison atoms (`col op const`
//!   and `col op col`), intersecting under `And` and hulling under `Or`;
//!   a conjunction that empties an integer interval is a
//!   [`AnalysisError::ContradictionPred`].
//! * **Project** evaluates expression arithmetic over intervals (computed
//!   in `i128`, so the check itself cannot wrap); results that leave the
//!   `i64` range raise [`AnalysisError::PossibleOverflow`], and an integer
//!   division whose divisor interval contains zero raises
//!   [`AnalysisError::DivByZeroReachable`].
//! * **Aggregates** bound group counts by the product of key NDVs and
//!   bound `sum` outputs by `rows × extreme`; a sum bound that leaves
//!   `i64` raises [`AnalysisError::SumOverflow`].
//! * **Joins** stay probe-bounded when the build key is *proven*
//!   all-distinct (exact base stats make `distinct == rows` a proof, and
//!   filters/projections preserve it), and fall back to the sound
//!   product bound otherwise.
//!
//! The row/NDV bounds are what the physical planner's partitioning
//! verdicts consume (`plan::lower::estimated_rows` and the agg/join
//! partition gates), replacing the raw "pass filters through
//! undiminished" upper bounds that ROADMAP direction #5 calls out.
//!
//! **Soundness contract:** every fact is an *over*-approximation — bounds
//! may widen but never lie. For any plan whose execution completes, every
//! materialized value lies inside its column's derived interval (NaNs only
//! where `finite` is false), every column's distinct count is at most its
//! NDV bound, a `distinct` flag only ever marks truly duplicate-free
//! columns, and the materialized row count never exceeds the node's row
//! bound. Executions that trap (integer division by a selected zero, sum
//! narrowing overflow) are exempt — there is no materialized value to
//! bound — which is exactly why those traps get their own typed errors.
//! The fuzzer checks this contract on every generated plan
//! (`ma_tpch::fuzz`), and `verify` runs the pass as its third phase.

use std::fmt;

use ma_vector::{DataType, StatsDomain};

use crate::expr::{ArithKind, CmpKind, CmpRhs, Expr, Pred, Value};
use crate::ops::{AggSpec, JoinKind, ProjItem};
use crate::plan::LogicalPlan;

/// Relative slack applied to float *sum* bounds: summation rounds once per
/// element, so the accumulated result can drift a few ULPs past the exact
/// `rows × extreme` bound. `1e-7` dwarfs the worst drift for any row count
/// this engine reaches (error ≈ rows · 2⁻⁵³ per unit magnitude).
const SUM_F64_SLACK: f64 = 1e-7;

/// A finding produced by the abstract interpreter.
///
/// Two severities exist (see [`AnalysisError::is_hazard`]): *hazards* make
/// execution trap and fail verification's third phase; the rest are
/// warnings — behavior is defined and deterministic (wrapping arithmetic,
/// a checked panic, an empty result), but almost certainly not what the
/// query author meant — reported by [`analyze`] and `repro analyze`.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// Integer `add`/`sub`/`mul` (wrapping semantics) may wrap: the exact
    /// result interval leaves the `i64` range. Also raised for the one
    /// trapping division overflow, `i64::MIN / -1`.
    PossibleOverflow {
        /// Node label the expression lives under.
        context: String,
        /// Operator (`add`/`sub`/`mul`/`div`).
        op: &'static str,
        /// Exact lower bound of the unwrapped result.
        lo: i128,
        /// Exact upper bound of the unwrapped result.
        hi: i128,
    },
    /// A `sum` aggregate's `i128` accumulator may exceed `i64` on output
    /// narrowing — a checked runtime panic.
    SumOverflow {
        /// Aggregation node label.
        context: String,
        /// Rendered aggregate (e.g. `sum(col 3)`).
        agg: String,
        /// Exact lower bound of the accumulated sum.
        lo: i128,
        /// Exact upper bound of the accumulated sum.
        hi: i128,
    },
    /// An integer division's divisor interval contains zero, so a selected
    /// tuple can trap. (Integer division is the one primitive family with
    /// no full-computation flavor precisely because of this trap.)
    DivByZeroReachable {
        /// Node label the expression lives under.
        context: String,
        /// Divisor interval lower bound.
        lo: i64,
        /// Divisor interval upper bound.
        hi: i64,
    },
    /// A conjunction narrowed some integer column's interval to empty: the
    /// predicate is a contradiction and the node provably yields no rows.
    ContradictionPred {
        /// Filter node label.
        context: String,
        /// Name of the column whose interval emptied.
        column: String,
    },
}

impl AnalysisError {
    /// True for findings that make execution trap (fail verification);
    /// false for defined-but-suspicious behavior (warnings).
    ///
    /// Only [`AnalysisError::DivByZeroReachable`] is a hazard: integer
    /// wrap is this engine's *defined* (and deterministic) arithmetic,
    /// sum-narrowing overflow is a checked panic with a clear message,
    /// and a contradiction merely yields an empty result. Making the
    /// conservative overflow bounds verification-fatal would reject
    /// benign plans whose worst-case row bound explodes through
    /// non-distinct joins; the trap, by contrast, is never benign.
    pub fn is_hazard(&self) -> bool {
        matches!(self, AnalysisError::DivByZeroReachable { .. })
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::PossibleOverflow {
                context,
                op,
                lo,
                hi,
            } => write!(
                f,
                "[{context}] integer {op} may overflow i64: result in [{lo}, {hi}]"
            ),
            AnalysisError::SumOverflow {
                context,
                agg,
                lo,
                hi,
            } => write!(
                f,
                "[{context}] {agg} may exceed i64 on output narrowing: sum in [{lo}, {hi}]"
            ),
            AnalysisError::DivByZeroReachable { context, lo, hi } => write!(
                f,
                "[{context}] integer division by zero is reachable: divisor in [{lo}, {hi}]"
            ),
            AnalysisError::ContradictionPred { context, column } => write!(
                f,
                "[{context}] predicate is a contradiction: interval of `{column}` is empty"
            ),
        }
    }
}

/// Abstract value domain of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum AbsDomain {
    /// Integer columns of any width, bounds in `i64`. Empty iff `lo > hi`.
    Int {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// `F64` columns. When `finite`, every value is finite and in
    /// `[lo, hi]`; otherwise values may also be ±∞ or NaN, and `[lo, hi]`
    /// (possibly infinite endpoints) still bounds every non-NaN value.
    Float {
        /// Inclusive lower bound of non-NaN values.
        lo: f64,
        /// Inclusive upper bound of non-NaN values.
        hi: f64,
        /// Proof that no value is NaN or ±∞.
        finite: bool,
    },
    /// String columns: no value bounds tracked.
    Str,
}

impl AbsDomain {
    /// Full range for a column of type `ty`.
    fn top(ty: DataType) -> AbsDomain {
        match ty {
            DataType::I16 => AbsDomain::Int {
                lo: i64::from(i16::MIN),
                hi: i64::from(i16::MAX),
            },
            DataType::I32 => AbsDomain::Int {
                lo: i64::from(i32::MIN),
                hi: i64::from(i32::MAX),
            },
            DataType::I64 => AbsDomain::Int {
                lo: i64::MIN,
                hi: i64::MAX,
            },
            DataType::F64 => AbsDomain::Float {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
                finite: false,
            },
            DataType::Str => AbsDomain::Str,
        }
    }

    /// True when no concrete value satisfies the domain (for floats, only
    /// provable when NaN is excluded).
    fn is_empty(&self) -> bool {
        match *self {
            AbsDomain::Int { lo, hi } => lo > hi,
            AbsDomain::Float { lo, hi, finite } => finite && lo > hi,
            AbsDomain::Str => false,
        }
    }

    /// Interval width as an NDV cap (`usize::MAX` when unbounded).
    fn width(&self) -> usize {
        match *self {
            AbsDomain::Int { lo, hi } => {
                if lo > hi {
                    0
                } else {
                    usize::try_from((hi as i128) - (lo as i128) + 1).unwrap_or(usize::MAX)
                }
            }
            _ => usize::MAX,
        }
    }

    /// Intersection (meet) of two domains of the same type.
    fn intersect(&self, other: &AbsDomain) -> AbsDomain {
        match (self, other) {
            (&AbsDomain::Int { lo: a, hi: b }, &AbsDomain::Int { lo: c, hi: d }) => {
                AbsDomain::Int {
                    lo: a.max(c),
                    hi: b.min(d),
                }
            }
            (
                &AbsDomain::Float {
                    lo: a,
                    hi: b,
                    finite: fa,
                },
                &AbsDomain::Float {
                    lo: c,
                    hi: d,
                    finite: fb,
                },
            ) => AbsDomain::Float {
                lo: a.max(c),
                hi: b.min(d),
                finite: fa || fb,
            },
            _ => self.clone(),
        }
    }

    /// Hull (join) of two domains of the same type.
    fn hull(&self, other: &AbsDomain) -> AbsDomain {
        match (self, other) {
            (&AbsDomain::Int { lo: a, hi: b }, &AbsDomain::Int { lo: c, hi: d }) => {
                if a > b {
                    other.clone()
                } else if c > d {
                    self.clone()
                } else {
                    AbsDomain::Int {
                        lo: a.min(c),
                        hi: b.max(d),
                    }
                }
            }
            (
                &AbsDomain::Float {
                    lo: a,
                    hi: b,
                    finite: fa,
                },
                &AbsDomain::Float {
                    lo: c,
                    hi: d,
                    finite: fb,
                },
            ) => AbsDomain::Float {
                lo: a.min(c),
                hi: b.max(d),
                finite: fa && fb,
            },
            _ => self.clone(),
        }
    }
}

impl fmt::Display for AbsDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsDomain::Int { lo, hi } if lo > hi => write!(f, "\u{2205}"),
            AbsDomain::Int { lo, hi } => write!(f, "[{lo}, {hi}]"),
            AbsDomain::Float { lo, hi, finite } => {
                write!(f, "[{lo}, {hi}]{}", if *finite { "" } else { "?" })
            }
            AbsDomain::Str => write!(f, "str"),
        }
    }
}

/// Everything the analyzer knows about one output column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColFact {
    /// Value bounds.
    pub domain: AbsDomain,
    /// Upper bound on the number of distinct values.
    pub ndv: usize,
    /// Proof that the column holds no duplicate values.
    pub distinct: bool,
}

impl ColFact {
    fn top(ty: DataType, rows: usize) -> ColFact {
        ColFact {
            domain: AbsDomain::top(ty),
            ndv: rows,
            distinct: false,
        }
    }
}

/// Facts for one plan node's output: per-column facts plus a row bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Facts {
    /// One fact per output column, aligned with the node's schema.
    pub cols: Vec<ColFact>,
    /// Upper bound on the number of rows the node can produce.
    pub rows: usize,
}

impl Facts {
    /// Re-establishes the cross-fact invariants after a transfer function:
    /// NDV ≤ rows, NDV ≤ interval width, and a row bound ≤ 1 proves
    /// distinctness trivially.
    fn normalize(mut self) -> Facts {
        for c in &mut self.cols {
            c.ndv = c.ndv.min(self.rows).min(c.domain.width());
            if self.rows <= 1 {
                c.distinct = true;
            }
        }
        self
    }
}

/// The result of analyzing a plan: root facts plus every finding, in plan
/// walk order.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Facts for the root node's output.
    pub facts: Facts,
    /// All findings (hazards and warnings; see
    /// [`AnalysisError::is_hazard`]).
    pub errors: Vec<AnalysisError>,
}

impl Analysis {
    /// The first hazard finding, if any (what verification's third phase
    /// rejects on).
    pub fn first_hazard(&self) -> Option<&AnalysisError> {
        self.errors.iter().find(|e| e.is_hazard())
    }
}

/// Runs the abstract interpreter over `plan`.
pub fn analyze(plan: &LogicalPlan) -> Analysis {
    let mut errors = Vec::new();
    let facts = node_facts(plan, &mut errors);
    Analysis { facts, errors }
}

/// Row-count upper bound for a (sub)plan — the planner's `estimated_rows`
/// source. Findings are not collected here; `verify` reports them.
pub(crate) fn row_bound(plan: &LogicalPlan) -> usize {
    node_facts(plan, &mut Vec::new()).rows
}

/// Upper bound on the number of groups an aggregation over `input` by
/// `keys` can produce: `min(row bound, Π key NDV)`.
pub(crate) fn group_bound(input: &LogicalPlan, keys: &[usize]) -> usize {
    let facts = node_facts(input, &mut Vec::new());
    group_bound_from(&facts, keys)
}

fn group_bound_from(input: &Facts, keys: &[usize]) -> usize {
    let mut groups = 1usize;
    for &k in keys {
        let ndv = input.cols.get(k).map_or(usize::MAX, |c| c.ndv);
        groups = groups.saturating_mul(ndv.max(1));
    }
    groups.min(input.rows)
}

// --- per-node transfer functions -------------------------------------------

fn node_facts(plan: &LogicalPlan, errs: &mut Vec<AnalysisError>) -> Facts {
    let facts = match plan {
        LogicalPlan::Scan {
            table,
            cols,
            base_rows,
            ..
        } => {
            let stats = table.stats();
            let col_facts = cols
                .iter()
                .enumerate()
                .map(|(i, name)| match table.column_index(name) {
                    Ok(ci) => {
                        let s = &stats[ci];
                        let domain = match s.domain {
                            StatsDomain::Int { min, max } => AbsDomain::Int { lo: min, hi: max },
                            StatsDomain::Float {
                                min,
                                max,
                                all_finite,
                            } => AbsDomain::Float {
                                lo: min,
                                hi: max,
                                finite: all_finite,
                            },
                            StatsDomain::Str => AbsDomain::Str,
                        };
                        ColFact {
                            domain,
                            ndv: s.distinct,
                            // Exact stats make this a proof, not a guess.
                            distinct: s.distinct == table.rows() && table.rows() > 0,
                        }
                    }
                    // Unknown source column: an ill-formed plan verify
                    // rejects in phase 1; stay sound with a top fact.
                    Err(_) => ColFact::top(plan.schema().field(i).ty, *base_rows),
                })
                .collect();
            Facts {
                cols: col_facts,
                rows: *base_rows,
            }
        }

        LogicalPlan::Filter {
            input, pred, label, ..
        } => {
            let mut facts = node_facts(input, errs);
            let schema = input.schema();
            let newly_empty = narrow_pred(pred, &mut facts.cols);
            if let Some(col) = newly_empty {
                errs.push(AnalysisError::ContradictionPred {
                    context: label.clone(),
                    column: schema
                        .fields()
                        .get(col)
                        .map_or_else(|| format!("col {col}"), |f| f.name.clone()),
                });
                facts.rows = 0;
            }
            facts
        }

        LogicalPlan::Project {
            input,
            items,
            label,
            ..
        } => {
            let in_facts = node_facts(input, errs);
            let cols = items
                .iter()
                .map(|item| match item {
                    ProjItem::Pass(i) => in_facts.cols[*i].clone(),
                    ProjItem::Expr(e) => eval_expr(e, &in_facts, label, errs),
                })
                .collect();
            Facts {
                cols,
                rows: in_facts.rows,
            }
        }

        LogicalPlan::HashAgg {
            input,
            keys,
            aggs,
            label,
            ..
        } => {
            let in_facts = node_facts(input, errs);
            let rows = group_bound_from(&in_facts, keys);
            let mut cols: Vec<ColFact> = keys
                .iter()
                .map(|&k| {
                    let mut fact = in_facts.cols[k].clone();
                    // A single group key is deduplicated by grouping.
                    fact.distinct = keys.len() == 1;
                    fact
                })
                .collect();
            for agg in aggs {
                cols.push(agg_fact(
                    agg, &in_facts, /*grouped=*/ true, label, errs,
                ));
            }
            Facts { cols, rows }
        }

        LogicalPlan::StreamAgg {
            input, aggs, label, ..
        } => {
            let in_facts = node_facts(input, errs);
            let cols = aggs
                .iter()
                .map(|agg| agg_fact(agg, &in_facts, /*grouped=*/ false, label, errs))
                .collect();
            // A global aggregate emits exactly one row (the fold identity
            // when the input is empty).
            Facts { cols, rows: 1 }
        }

        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            payload,
            kind,
            defaults,
            ..
        } => {
            let mut build_f = node_facts(build, errs);
            let mut probe_f = node_facts(probe, errs);
            let build_distinct = build_keys
                .iter()
                .any(|&k| build_f.cols.get(k).is_some_and(|c| c.distinct));
            // Equi-join: surviving keys lie in both sides' intervals.
            // Sound for Inner and Semi; Anti keeps non-matching keys and
            // LeftSingle passes unmatched probe tuples through.
            if matches!(kind, JoinKind::Inner | JoinKind::Semi) {
                for (&bk, &pk) in build_keys.iter().zip(probe_keys) {
                    let inter = build_f.cols[bk].domain.intersect(&probe_f.cols[pk].domain);
                    let ndv = build_f.cols[bk].ndv.min(probe_f.cols[pk].ndv);
                    build_f.cols[bk].domain = inter.clone();
                    build_f.cols[bk].ndv = ndv;
                    probe_f.cols[pk].domain = inter;
                    probe_f.cols[pk].ndv = ndv;
                }
            }
            let key_miss = matches!(kind, JoinKind::Inner | JoinKind::Semi)
                && probe_keys
                    .iter()
                    .any(|&pk| probe_f.cols[pk].domain.is_empty());
            let rows = match kind {
                JoinKind::Inner => {
                    if build_distinct {
                        probe_f.rows
                    } else {
                        probe_f.rows.saturating_mul(build_f.rows)
                    }
                }
                JoinKind::Semi | JoinKind::Anti | JoinKind::LeftSingle => probe_f.rows,
            };
            let rows = if key_miss { 0 } else { rows };
            let mut cols = probe_f.cols;
            if matches!(kind, JoinKind::Inner) && !build_distinct {
                // A probe tuple can fan out to several matches.
                for c in &mut cols {
                    c.distinct = false;
                }
            }
            match kind {
                JoinKind::Inner => {
                    for &p in payload {
                        let mut fact = build_f.cols[p].clone();
                        // A build row can match many probe rows.
                        fact.distinct = false;
                        cols.push(fact);
                    }
                }
                JoinKind::LeftSingle => {
                    for (&p, default) in payload.iter().zip(defaults) {
                        let mut fact = build_f.cols[p].clone();
                        // Unmatched probe tuples get the default value.
                        fact.domain = fact.domain.hull(&const_domain(default));
                        fact.ndv = fact.ndv.saturating_add(1);
                        fact.distinct = false;
                        cols.push(fact);
                    }
                }
                JoinKind::Semi | JoinKind::Anti => {}
            }
            Facts { cols, rows }
        }

        LogicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            payload,
            ..
        } => {
            let mut left_f = node_facts(left, errs);
            let mut right_f = node_facts(right, errs);
            let left_distinct = left_f.cols[*left_key].distinct;
            let inter = left_f.cols[*left_key]
                .domain
                .intersect(&right_f.cols[*right_key].domain);
            let ndv = left_f.cols[*left_key].ndv.min(right_f.cols[*right_key].ndv);
            left_f.cols[*left_key].domain = inter.clone();
            left_f.cols[*left_key].ndv = ndv;
            right_f.cols[*right_key].domain = inter.clone();
            right_f.cols[*right_key].ndv = ndv;
            let rows = if inter.is_empty() {
                0
            } else if left_distinct {
                right_f.rows
            } else {
                right_f.rows.saturating_mul(left_f.rows)
            };
            let mut cols = right_f.cols;
            if !left_distinct {
                for c in &mut cols {
                    c.distinct = false;
                }
            }
            for &p in payload {
                let mut fact = left_f.cols[p].clone();
                fact.distinct = false;
                cols.push(fact);
            }
            Facts { cols, rows }
        }

        LogicalPlan::Sort { input, limit, .. } => {
            let mut facts = node_facts(input, errs);
            if let Some(n) = limit {
                facts.rows = facts.rows.min(*n);
            }
            facts
        }
    };
    facts.normalize()
}

// --- predicate narrowing ---------------------------------------------------

/// Narrows `cols` in place through `pred`. Returns the index of the first
/// integer column whose interval *newly* became empty under a conjunction
/// (the contradiction witness), if any.
fn narrow_pred(pred: &Pred, cols: &mut [ColFact]) -> Option<usize> {
    match pred {
        Pred::Cmp { col, op, rhs } => {
            let was_empty = cols[*col].domain.is_empty();
            match rhs {
                CmpRhs::Const(v) => narrow_cmp_const(&mut cols[*col], *op, v),
                CmpRhs::Col(other) => {
                    if col == other {
                        return None;
                    }
                    // Split borrows to narrow both sides.
                    let (a, b) = if col < other {
                        let (x, y) = cols.split_at_mut(*other);
                        (&mut x[*col], &mut y[0])
                    } else {
                        let (x, y) = cols.split_at_mut(*col);
                        (&mut y[0], &mut x[*other])
                    };
                    narrow_cmp_col(a, *op, b);
                }
            }
            (!was_empty && cols[*col].domain.is_empty()).then_some(*col)
        }
        Pred::Like { .. } | Pred::NotLike { .. } => None,
        Pred::InStr { col, values } => {
            cols[*col].ndv = cols[*col].ndv.min(values.len());
            None
        }
        Pred::And(branches) => {
            let mut witness = None;
            for b in branches {
                witness = witness.or(narrow_pred(b, cols));
            }
            witness
        }
        Pred::Or(branches) => {
            if branches.is_empty() {
                return None;
            }
            // Each branch narrows a private copy; the result is the hull.
            let mut hulled: Option<Vec<ColFact>> = None;
            let mut all_empty_witness = None;
            for b in branches {
                let mut branch_cols = cols.to_vec();
                let w = narrow_pred(b, &mut branch_cols);
                all_empty_witness = all_empty_witness.or(w);
                hulled = Some(match hulled {
                    None => branch_cols,
                    Some(acc) => acc
                        .into_iter()
                        .zip(branch_cols)
                        .map(|(x, y)| ColFact {
                            domain: x.domain.hull(&y.domain),
                            // Rows surviving an OR are the *union* of the
                            // branch row-sets, so value sets add — max()
                            // here was unsound (`x = "a" or x in ("b","c")`
                            // passes 3 distinct values, max proves ≤ 2).
                            ndv: x.ndv.saturating_add(y.ndv),
                            distinct: x.distinct && y.distinct,
                        })
                        .collect(),
                });
            }
            let hulled = hulled.expect("non-empty branches");
            let mut witness = None;
            for (i, (dst, mut src)) in cols.iter_mut().zip(hulled).enumerate() {
                if !dst.domain.is_empty() && src.domain.is_empty() && witness.is_none() {
                    witness = Some(i);
                }
                // The union of subsets of the input's value set can never
                // exceed the input's own cap.
                src.ndv = src.ndv.min(dst.ndv);
                *dst = src;
            }
            // Only a contradiction if *every* branch emptied some column
            // and the hull stayed empty — otherwise a branch survives.
            witness.or(all_empty_witness.filter(|&i| cols[i].domain.is_empty()))
        }
    }
}

fn narrow_cmp_const(fact: &mut ColFact, op: CmpKind, v: &Value) {
    match (&mut fact.domain, v) {
        (AbsDomain::Int { lo, hi }, _) => {
            let Some(c) = const_as_i64(v) else { return };
            match op {
                CmpKind::Lt => *hi = (*hi).min(c.saturating_sub(1)),
                CmpKind::Le => *hi = (*hi).min(c),
                CmpKind::Gt => *lo = (*lo).max(c.saturating_add(1)),
                CmpKind::Ge => *lo = (*lo).max(c),
                CmpKind::Eq => {
                    *lo = (*lo).max(c);
                    *hi = (*hi).min(c);
                    fact.ndv = fact.ndv.min(1);
                }
                CmpKind::Ne => {
                    if *lo == *hi && *lo == c {
                        *hi = *lo - 1; // empty
                    } else if *lo == c {
                        *lo += 1;
                    } else if *hi == c {
                        *hi -= 1;
                    }
                }
            }
        }
        (AbsDomain::Float { lo, hi, .. }, Value::F64(c)) => {
            if c.is_nan() {
                return;
            }
            match op {
                // Non-strict narrowing is sound for the strict ops too.
                CmpKind::Lt | CmpKind::Le => *hi = hi.min(*c),
                CmpKind::Gt | CmpKind::Ge => *lo = lo.max(*c),
                CmpKind::Eq => {
                    *lo = lo.max(*c);
                    *hi = hi.min(*c);
                }
                CmpKind::Ne => {}
            }
        }
        (AbsDomain::Str, Value::Str(_)) if op == CmpKind::Eq => {
            fact.ndv = fact.ndv.min(1);
        }
        _ => {}
    }
}

fn narrow_cmp_col(a: &mut ColFact, op: CmpKind, b: &mut ColFact) {
    match (&mut a.domain, &mut b.domain) {
        (AbsDomain::Int { lo: alo, hi: ahi }, AbsDomain::Int { lo: blo, hi: bhi }) => match op {
            CmpKind::Lt => {
                *ahi = (*ahi).min(bhi.saturating_sub(1));
                *blo = (*blo).max(alo.saturating_add(1));
            }
            CmpKind::Le => {
                *ahi = (*ahi).min(*bhi);
                *blo = (*blo).max(*alo);
            }
            CmpKind::Gt => {
                *alo = (*alo).max(blo.saturating_add(1));
                *bhi = (*bhi).min(ahi.saturating_sub(1));
            }
            CmpKind::Ge => {
                *alo = (*alo).max(*blo);
                *bhi = (*bhi).min(*ahi);
            }
            CmpKind::Eq => {
                let lo = (*alo).max(*blo);
                let hi = (*ahi).min(*bhi);
                (*alo, *ahi, *blo, *bhi) = (lo, hi, lo, hi);
                let ndv = a.ndv.min(b.ndv);
                a.ndv = ndv;
                b.ndv = ndv;
            }
            CmpKind::Ne => {}
        },
        (
            AbsDomain::Float {
                lo: alo, hi: ahi, ..
            },
            AbsDomain::Float {
                lo: blo, hi: bhi, ..
            },
        ) => match op {
            CmpKind::Lt | CmpKind::Le => {
                *ahi = ahi.min(*bhi);
                *blo = blo.max(*alo);
            }
            CmpKind::Gt | CmpKind::Ge => {
                *alo = alo.max(*blo);
                *bhi = bhi.min(*ahi);
            }
            CmpKind::Eq => {
                let lo = alo.max(*blo);
                let hi = ahi.min(*bhi);
                (*alo, *ahi, *blo, *bhi) = (lo, hi, lo, hi);
            }
            CmpKind::Ne => {}
        },
        _ => {}
    }
}

fn const_as_i64(v: &Value) -> Option<i64> {
    match v {
        Value::I16(x) => Some(i64::from(*x)),
        Value::I32(x) => Some(i64::from(*x)),
        Value::I64(x) => Some(*x),
        Value::F64(_) | Value::Str(_) => None,
    }
}

fn const_domain(v: &Value) -> AbsDomain {
    match v {
        Value::I16(_) | Value::I32(_) | Value::I64(_) => {
            let c = const_as_i64(v).expect("integer constant");
            AbsDomain::Int { lo: c, hi: c }
        }
        Value::F64(c) => AbsDomain::Float {
            lo: *c,
            hi: *c,
            finite: c.is_finite(),
        },
        Value::Str(_) => AbsDomain::Str,
    }
}

// --- expression interval arithmetic ----------------------------------------

fn eval_expr(expr: &Expr, input: &Facts, context: &str, errs: &mut Vec<AnalysisError>) -> ColFact {
    match expr {
        Expr::Col(i) => input.cols[*i].clone(),
        Expr::Const(v) => ColFact {
            domain: const_domain(v),
            ndv: 1,
            distinct: false,
        },
        Expr::Cast { to, inner } => {
            let fact = eval_expr(inner, input, context, errs);
            cast_fact(fact, *to)
        }
        Expr::Substr { col, .. } => {
            // Substring is a per-row function of one column: the NDV bound
            // carries over, but distinctness does not (it is not injective).
            let mut fact = input.cols[*col].clone();
            fact.distinct = false;
            fact
        }
        Expr::Arith { op, lhs, rhs } => {
            let a = eval_expr(lhs, input, context, errs);
            let b = eval_expr(rhs, input, context, errs);
            // A per-row function of k columns has at most Π NDV distinct
            // outputs (Const has NDV 1, so `col ⊕ const` keeps `col`'s).
            let ndv = a.ndv.saturating_mul(b.ndv.max(1)).max(a.ndv);
            match (&a.domain, &b.domain) {
                (&AbsDomain::Int { lo: alo, hi: ahi }, &AbsDomain::Int { lo: blo, hi: bhi }) => {
                    if alo > ahi || blo > bhi {
                        // Unreachable values: no rows can flow here.
                        return ColFact {
                            domain: AbsDomain::Int { lo: 0, hi: -1 },
                            ndv: 0,
                            distinct: false,
                        };
                    }
                    let (domain, wrapped) = int_arith(*op, (alo, ahi), (blo, bhi), context, errs);
                    // Wrapping add/sub by a constant is a bijection on
                    // i64, so a distinct input stays distinct even when
                    // the interval had to widen; everything else only
                    // keeps the proof when it provably cannot wrap.
                    let const_rhs = matches!(**rhs, Expr::Const(_));
                    let distinct = match op {
                        ArithKind::Add | ArithKind::Sub => a.distinct && const_rhs,
                        ArithKind::Mul => {
                            a.distinct && const_rhs && !wrapped && blo == bhi && blo != 0
                        }
                        ArithKind::Div => false,
                    };
                    ColFact {
                        domain,
                        ndv,
                        distinct,
                    }
                }
                (
                    &AbsDomain::Float {
                        lo: alo,
                        hi: ahi,
                        finite: af,
                    },
                    &AbsDomain::Float {
                        lo: blo,
                        hi: bhi,
                        finite: bf,
                    },
                ) => ColFact {
                    domain: float_arith(*op, (alo, ahi, af), (blo, bhi, bf)),
                    ndv,
                    distinct: false,
                },
                // Ill-typed arithmetic: verify phase 1 rejects it; stay
                // sound with a top fact here.
                _ => ColFact::top(DataType::I64, input.rows),
            }
        }
    }
}

/// Integer interval arithmetic in `i128` (exact for all `i64` inputs).
/// Returns the result domain and whether it had to widen for a possible
/// wrap.
fn int_arith(
    op: ArithKind,
    (alo, ahi): (i64, i64),
    (blo, bhi): (i64, i64),
    context: &str,
    errs: &mut Vec<AnalysisError>,
) -> (AbsDomain, bool) {
    let (alo, ahi, blo, bhi) = (alo as i128, ahi as i128, blo as i128, bhi as i128);
    let (lo, hi) = match op {
        ArithKind::Add => (alo + blo, ahi + bhi),
        ArithKind::Sub => (alo - bhi, ahi - blo),
        ArithKind::Mul => {
            let p = [alo * blo, alo * bhi, ahi * blo, ahi * bhi];
            (
                p.iter().copied().min().expect("nonempty"),
                p.iter().copied().max().expect("nonempty"),
            )
        }
        ArithKind::Div => {
            if blo <= 0 && 0 <= bhi {
                errs.push(AnalysisError::DivByZeroReachable {
                    context: context.to_string(),
                    lo: blo as i64,
                    hi: bhi as i64,
                });
            }
            // `i64::MIN / -1` is the one *division* overflow, and it traps
            // (division has checked semantics in both build profiles).
            if alo <= i64::MIN as i128 && blo <= -1 && -1 <= bhi {
                errs.push(AnalysisError::PossibleOverflow {
                    context: context.to_string(),
                    op: "div",
                    lo: -(i64::MIN as i128),
                    hi: -(i64::MIN as i128),
                });
            }
            match div_bounds((alo, ahi), (blo, bhi)) {
                Some(b) => b,
                // Divisor can only be zero: every selected tuple traps, so
                // no value ever materializes.
                None => return (AbsDomain::Int { lo: 0, hi: -1 }, false),
            }
        }
    };
    if lo < i64::MIN as i128 || hi > i64::MAX as i128 {
        if op != ArithKind::Div {
            errs.push(AnalysisError::PossibleOverflow {
                context: context.to_string(),
                op: op.sig_name(),
                lo,
                hi,
            });
        }
        // Wrapping semantics: the concrete result is *some* i64.
        (
            AbsDomain::Int {
                lo: i64::MIN,
                hi: i64::MAX,
            },
            true,
        )
    } else {
        (
            AbsDomain::Int {
                lo: lo as i64,
                hi: hi as i64,
            },
            false,
        )
    }
}

/// Quotient bounds of `a / b` with `b` restricted to its nonzero part.
/// Returns `None` when `b` is exactly `[0, 0]`.
fn div_bounds((alo, ahi): (i128, i128), (blo, bhi): (i128, i128)) -> Option<(i128, i128)> {
    let mut lo = i128::MAX;
    let mut hi = i128::MIN;
    let mut candidates = |d1: i128, d2: i128| {
        // Truncating division is monotone in the dividend and, per sign
        // region, monotone in the divisor — extremes sit at corners.
        for a in [alo, ahi] {
            for d in [d1, d2] {
                let q = a / d;
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
    };
    if bhi >= 1 {
        candidates(blo.max(1), bhi);
    }
    if blo <= -1 {
        candidates(blo, bhi.min(-1));
    }
    (lo <= hi).then_some((lo, hi))
}

/// Float interval arithmetic. IEEE operations are correctly rounded and
/// monotone, so endpoint evaluation bounds every in-range result; anything
/// that can reach ±∞ or NaN collapses to the unbounded non-finite domain.
fn float_arith(
    op: ArithKind,
    (alo, ahi, af): (f64, f64, bool),
    (blo, bhi, bf): (f64, f64, bool),
) -> AbsDomain {
    let unbounded = AbsDomain::Float {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        finite: false,
    };
    if !(af && bf) {
        return unbounded;
    }
    let (lo, hi) = match op {
        ArithKind::Add => (alo + blo, ahi + bhi),
        ArithKind::Sub => (alo - bhi, ahi - blo),
        ArithKind::Mul => {
            let p = [alo * blo, alo * bhi, ahi * blo, ahi * bhi];
            (p.iter().copied().fold(f64::INFINITY, f64::min), {
                p.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            })
        }
        ArithKind::Div => {
            if blo <= 0.0 && 0.0 <= bhi {
                // 0 ∈ divisor: ±∞ (x/0) and NaN (0/0) are reachable.
                return unbounded;
            }
            let p = [alo / blo, alo / bhi, ahi / blo, ahi / bhi];
            (p.iter().copied().fold(f64::INFINITY, f64::min), {
                p.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            })
        }
    };
    if lo.is_finite() && hi.is_finite() {
        AbsDomain::Float {
            lo,
            hi,
            finite: true,
        }
    } else {
        unbounded
    }
}

fn cast_fact(fact: ColFact, to: DataType) -> ColFact {
    match (&fact.domain, to) {
        // Widening integer casts are exact and injective.
        (AbsDomain::Int { .. }, DataType::I32 | DataType::I64) => fact,
        (&AbsDomain::Int { lo, hi }, DataType::F64) => {
            // `i64 as f64` rounds to nearest; direct the endpoints outward
            // so the cast of any in-range value stays inside.
            let exact = lo.abs() <= (1 << 53) && hi.abs() <= (1 << 53);
            ColFact {
                domain: AbsDomain::Float {
                    lo: f64_at_most(lo),
                    hi: f64_at_least(hi),
                    finite: true,
                },
                ndv: fact.ndv,
                // Beyond 2^53 the cast can collide distinct values.
                distinct: fact.distinct && exact,
            }
        }
        _ => fact,
    }
}

/// Largest f64 ≤ `x` (for directed interval endpoints).
fn f64_at_most(x: i64) -> f64 {
    let f = x as f64;
    // |x| ≤ i64::MAX, so `f` is finite and the exact compare is safe.
    if f as i128 > x as i128 {
        next_toward_neg_inf(f)
    } else {
        f
    }
}

/// Smallest f64 ≥ `x`.
fn f64_at_least(x: i64) -> f64 {
    let f = x as f64;
    if (f as i128) < x as i128 {
        next_toward_pos_inf(f)
    } else {
        f
    }
}

fn next_toward_neg_inf(f: f64) -> f64 {
    if f == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = f.to_bits();
    f64::from_bits(if f > 0.0 { bits - 1 } else { bits + 1 })
}

fn next_toward_pos_inf(f: f64) -> f64 {
    if f == 0.0 {
        return f64::from_bits(1);
    }
    let bits = f.to_bits();
    f64::from_bits(if f > 0.0 { bits + 1 } else { bits - 1 })
}

// --- aggregate transfer functions ------------------------------------------

fn agg_fact(
    agg: &AggSpec,
    input: &Facts,
    grouped: bool,
    label: &str,
    errs: &mut Vec<AnalysisError>,
) -> ColFact {
    let n = input.rows;
    let fact = |domain| ColFact {
        domain,
        ndv: usize::MAX, // normalize() caps at the output row bound
        distinct: false,
    };
    match *agg {
        AggSpec::CountStar => {
            // Every group holds at least one row; a global count over an
            // empty input is 0.
            let lo = if grouped { 1 } else { 0 };
            fact(AbsDomain::Int {
                lo: lo.min(n as i64),
                hi: i64::try_from(n).unwrap_or(i64::MAX),
            })
        }
        AggSpec::SumI64(c) => match input.cols[c].domain {
            AbsDomain::Int { lo, hi } if lo <= hi && n > 0 => {
                let (lo, hi, n) = (lo as i128, hi as i128, n as i128);
                // Sum of k ∈ [1, n] (grouped) or [0, n] (global) values
                // each in [lo, hi], accumulated exactly in i128.
                let mut slo = if lo < 0 { n * lo } else { lo };
                let mut shi = if hi > 0 { n * hi } else { hi };
                if !grouped {
                    slo = slo.min(0);
                    shi = shi.max(0);
                }
                if slo < i64::MIN as i128 || shi > i64::MAX as i128 {
                    errs.push(AnalysisError::SumOverflow {
                        context: label.to_string(),
                        agg: format!("sum_i64(col {c})"),
                        lo: slo,
                        hi: shi,
                    });
                    fact(AbsDomain::top(DataType::I64))
                } else {
                    fact(AbsDomain::Int {
                        lo: slo as i64,
                        hi: shi as i64,
                    })
                }
            }
            // Empty input: a grouped agg emits no rows, a global sum 0.
            _ if !grouped => fact(AbsDomain::Int { lo: 0, hi: 0 }),
            _ => fact(AbsDomain::Int { lo: 0, hi: -1 }),
        },
        AggSpec::SumF64(c) => match input.cols[c].domain {
            AbsDomain::Float { lo, hi, finite } if finite && lo <= hi && n > 0 => {
                let nf = n as f64;
                let mut slo = if lo < 0.0 { nf * lo } else { lo };
                let mut shi = if hi > 0.0 { nf * hi } else { hi };
                if !grouped {
                    slo = slo.min(0.0);
                    shi = shi.max(0.0);
                }
                // Per-element rounding can drift past the exact bound.
                slo -= slo.abs() * SUM_F64_SLACK;
                shi += shi.abs() * SUM_F64_SLACK;
                if slo.is_finite() && shi.is_finite() {
                    fact(AbsDomain::Float {
                        lo: slo,
                        hi: shi,
                        finite: true,
                    })
                } else {
                    fact(AbsDomain::top(DataType::F64))
                }
            }
            // Non-finite input with rows possible: no usable bound.
            AbsDomain::Float { finite: false, .. } if n > 0 => fact(AbsDomain::top(DataType::F64)),
            // Provably empty input: a global sum is 0, a grouped one
            // emits no rows.
            _ if !grouped => fact(AbsDomain::Float {
                lo: 0.0,
                hi: 0.0,
                finite: true,
            }),
            _ => fact(AbsDomain::Float {
                lo: f64::INFINITY,
                hi: f64::NEG_INFINITY,
                finite: true,
            }),
        },
        AggSpec::MinI64(c) | AggSpec::MaxI64(c) => {
            let input_dom = match input.cols[c].domain {
                AbsDomain::Int { lo, hi } if n > 0 => AbsDomain::Int { lo, hi },
                _ => AbsDomain::Int { lo: 0, hi: -1 },
            };
            if grouped {
                // Groups only exist for present rows: min/max of a group
                // is one of its values.
                fact(input_dom)
            } else {
                // A global fold over zero rows emits its identity.
                let identity = if matches!(agg, AggSpec::MinI64(_)) {
                    i64::MAX
                } else {
                    i64::MIN
                };
                fact(input_dom.hull(&AbsDomain::Int {
                    lo: identity,
                    hi: identity,
                }))
            }
        }
        AggSpec::MinF64(c) | AggSpec::MaxF64(c) => {
            let input_dom = match input.cols[c].domain {
                AbsDomain::Float { lo, hi, finite } if n > 0 => AbsDomain::Float { lo, hi, finite },
                _ => AbsDomain::Float {
                    lo: f64::INFINITY,
                    hi: f64::NEG_INFINITY,
                    finite: true,
                },
            };
            if grouped {
                fact(input_dom)
            } else {
                let identity = if matches!(agg, AggSpec::MinF64(_)) {
                    f64::INFINITY
                } else {
                    f64::NEG_INFINITY
                };
                fact(input_dom.hull(&AbsDomain::Float {
                    lo: identity,
                    hi: identity,
                    finite: false,
                }))
            }
        }
    }
}

// --- rendering -------------------------------------------------------------

/// Renders the plan tree with each node's derived row bound and column
/// facts — the `repro analyze` output.
pub fn render(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render_node(plan, 0, &mut out);
    out
}

fn render_node(plan: &LogicalPlan, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let facts = node_facts(plan, &mut Vec::new());
    let pad = "  ".repeat(depth);
    let name = match plan {
        LogicalPlan::Scan { table, .. } => format!("Scan {}", table.name()),
        LogicalPlan::Filter { label, .. } => format!("Filter \"{label}\""),
        LogicalPlan::Project { label, .. } => format!("Project \"{label}\""),
        LogicalPlan::HashAgg { label, .. } => format!("HashAgg \"{label}\""),
        LogicalPlan::StreamAgg { label, .. } => format!("StreamAgg \"{label}\""),
        LogicalPlan::HashJoin { label, kind, .. } => format!("HashJoin {kind:?} \"{label}\""),
        LogicalPlan::MergeJoin { label, .. } => format!("MergeJoin \"{label}\""),
        LogicalPlan::Sort { limit, .. } => match limit {
            Some(n) => format!("Sort limit={n}"),
            None => "Sort".to_string(),
        },
    };
    let _ = writeln!(out, "{pad}{name}  rows\u{2264}{}", facts.rows);
    for (field, fact) in plan.schema().fields().iter().zip(&facts.cols) {
        let _ = writeln!(
            out,
            "{pad}  \u{00b7} {}: {} ndv\u{2264}{}{}",
            field.name,
            fact.domain,
            fact.ndv,
            if fact.distinct { " distinct" } else { "" }
        );
    }
    for child in children(plan) {
        render_node(child, depth + 1, out);
    }
}

fn children(plan: &LogicalPlan) -> Vec<&LogicalPlan> {
    match plan {
        LogicalPlan::Scan { .. } => vec![],
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::HashAgg { input, .. }
        | LogicalPlan::StreamAgg { input, .. }
        | LogicalPlan::Sort { input, .. } => vec![input],
        LogicalPlan::HashJoin { build, probe, .. } => vec![build, probe],
        LogicalPlan::MergeJoin { left, right, .. } => vec![left, right],
    }
}
