//! Execution configuration: which flavors exist per primitive, and how the
//! engine chooses between them.

use ma_core::policy::VwGreedyParams;
use ma_core::PolicyKind;

/// Which *subset* of each primitive's flavors is visible to the engine.
///
/// The paper evaluates five flavor sets in isolation (Tables 6–10) and all
/// of them together (Table 11); an axis selects that subset by flavor name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlavorAxis {
    /// Only the default flavor (index 0) of every primitive.
    Default,
    /// Branching vs No-Branching selection primitives (Table 6).
    Branching,
    /// gcc / icc / clang code styles everywhere they exist (Table 7).
    Compiler,
    /// Fused vs loop-fission bloom-filter lookup (Table 8).
    Fission,
    /// Selective vs full computation in map primitives (Table 9).
    FullComputation,
    /// Hand-unrolling on/off (Table 10).
    Unrolling,
    /// The union of all flavor sets (the Table 11 Micro Adaptive run).
    All,
}

impl FlavorAxis {
    /// The flavor names this axis admits, or `None` for the full master set.
    pub fn names(self) -> Option<&'static [&'static str]> {
        match self {
            FlavorAxis::Default => Some(&[]), // sentinel: default only
            FlavorAxis::Branching => Some(&["branching", "no_branching"]),
            FlavorAxis::Compiler => Some(&["gcc", "icc", "clang"]),
            FlavorAxis::Fission => Some(&["fused", "fission"]),
            FlavorAxis::FullComputation => Some(&["selective", "full"]),
            FlavorAxis::Unrolling => Some(&["unroll8", "no_unroll"]),
            FlavorAxis::All => None,
        }
    }
}

/// How the engine resolves a flavor at each primitive call.
#[derive(Debug, Clone)]
pub enum FlavorMode {
    /// Non-adaptive: always the named flavor where it exists, otherwise the
    /// default. `Fixed(None)` is the stock engine (default flavor always) —
    /// the "No Heuristics" baseline of Table 11.
    Fixed(Option<&'static str>),
    /// Micro Adaptivity: a bandit policy over the axis' flavor subset.
    Adaptive {
        /// Flavor subset the bandit selects among.
        axis: FlavorAxis,
        /// Bandit policy per primitive instance.
        policy: PolicyKind,
    },
    /// Hard-coded heuristics tuned offline (the competing approach of §4.2):
    /// selectivity thresholds pick branching/full-computation variants,
    /// bloom size picks fission.
    Heuristic,
}

/// How scans decode compressed (encoded) columns.
///
/// Both paths are bit-for-bit equivalent — the differential fuzzer
/// cross-checks them — so this knob only moves the work between the
/// flavored primitive library and the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeMode {
    /// Flavored `decode_*` primitives with per-morsel bandit instances
    /// (the micro-adaptive path; the default).
    #[default]
    Primitive,
    /// The reference decode path in `ma_vector::encode` — no primitive
    /// instances, no adaptivity. For differential testing and as the
    /// baseline the flavor equivalence argument anchors on.
    Reference,
}

/// Default clamp factor for reward observations: costs above `8×` the
/// running per-tuple median are treated as preemption outliers.
pub const DEFAULT_REWARD_CLAMP: f64 = 8.0;

/// Default minimum *estimated group count* for partitioning a hash
/// aggregation whose input is not itself a sharded scan. The planner has
/// no distinct-value statistics yet, so a crude input-row estimate stands
/// in — partitioning a small aggregate buys nothing and costs routing.
pub const DEFAULT_AGG_MIN_PARTITION_GROUPS: usize = 32 * 1024;

/// Default minimum estimated row count (larger of the two join sides)
/// before the planner partitions a hash join whose sides are not sharded
/// scans. Row estimates come from exact base-table counts
/// ([`crate::plan::Catalog::row_count`]); partitioning a small join costs
/// more in routing than the build parallelism returns.
pub const DEFAULT_JOIN_MIN_PARTITION_ROWS: usize = 64 * 1024;

/// Default per-query memory budget (1 GiB) the static cost pass checks the
/// proven peak-byte roll-up against. Exceeding it is a warning finding by
/// default and a [`crate::verify::VerifyError::MemoryBudget`] rejection
/// when [`ExecConfig::strict_memory`] is set.
pub const DEFAULT_MEMORY_BUDGET: u64 = 1 << 30;

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Flavor resolution mode.
    pub flavors: FlavorMode,
    /// Seed for per-instance policy randomness (exploration).
    pub seed: u64,
    /// Tuples per vector.
    pub vector_size: usize,
    /// Whether instances keep APHs (small overhead; needed for figures).
    pub collect_aph: bool,
    /// Worker threads for sharded scans. `1` (the default) keeps every
    /// pipeline single-threaded and bit-identical to the pre-parallel
    /// engine; `n > 1` splits each large scan into morsels processed by
    /// `n` workers with per-worker primitive instances.
    pub worker_threads: usize,
    /// Clamp factor `k` for bandit reward observations: costs above `k×`
    /// the instance's running per-tuple median are capped before the
    /// policy sees them (OS-preemption robustness). `None` disables.
    pub reward_clamp: Option<f64>,
    /// Consumer partitions for partitioned hash aggregation. `0` (the
    /// default) follows [`ExecConfig::worker_threads`]; `1` disables
    /// partitioning outright (every aggregate runs as a single instance);
    /// `n > 1` forces `n` partitions even on a single-worker pipeline.
    /// The *decision* to partition a given aggregate stays with the
    /// physical planner (`ma_executor::plan::lower`). Note a partitioned
    /// aggregate runs its producers and consumers concurrently — up to
    /// `worker_threads + partitions` runnable threads while it drains.
    pub agg_partitions: usize,
    /// Minimum estimated group count before the planner partitions a hash
    /// aggregation whose input is *not* a sharded scan (a sharded-scan
    /// input always partitions: the producers are already parallel).
    /// Without distinct-value statistics, a crude input-row estimate
    /// stands in for the group count.
    pub agg_min_partition_groups: usize,
    /// Consumer partitions for partitioned hash-join builds. `0` (the
    /// default) follows [`ExecConfig::worker_threads`]; `1` disables join
    /// partitioning outright; `n > 1` forces `n` partitions. As with
    /// aggregation, the *decision* to partition a given join stays with
    /// the physical planner (`ma_executor::plan::lower`), which never
    /// partitions under an ordered ancestor.
    pub join_partitions: usize,
    /// Minimum estimated row count (max of build and probe side) before
    /// the planner partitions a hash join whose sides are not sharded
    /// scans (a sharded-scan side always partitions: its producers are
    /// already parallel).
    pub join_min_partition_rows: usize,
    /// Per-query memory budget in bytes for the static cost pass
    /// (`ma_executor::cost`): a proven peak-byte roll-up above this is a
    /// warning finding, or a `verify()` rejection under
    /// [`ExecConfig::strict_memory`].
    pub memory_budget: u64,
    /// When set, `verify()` rejects plans whose proven peak-byte bound
    /// exceeds [`ExecConfig::memory_budget`] instead of merely warning.
    pub strict_memory: bool,
    /// How scans decode compressed columns: flavored primitives (the
    /// adaptive default) or the reference path (differential baseline).
    pub decode: DecodeMode,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            flavors: FlavorMode::Fixed(None),
            seed: 0x5EED,
            vector_size: ma_vector::VECTOR_SIZE,
            collect_aph: true,
            worker_threads: 1,
            reward_clamp: Some(DEFAULT_REWARD_CLAMP),
            agg_partitions: 0,
            agg_min_partition_groups: DEFAULT_AGG_MIN_PARTITION_GROUPS,
            join_partitions: 0,
            join_min_partition_rows: DEFAULT_JOIN_MIN_PARTITION_ROWS,
            memory_budget: DEFAULT_MEMORY_BUDGET,
            strict_memory: false,
            decode: DecodeMode::default(),
        }
    }
}

impl ExecConfig {
    /// Stock engine: default flavor everywhere.
    pub fn fixed_default() -> Self {
        ExecConfig::default()
    }

    /// Always the named flavor where available.
    pub fn fixed(name: &'static str) -> Self {
        ExecConfig {
            flavors: FlavorMode::Fixed(Some(name)),
            ..ExecConfig::default()
        }
    }

    /// Micro Adaptive over an axis with the paper's best vw-greedy
    /// parameters (1024, 8, 2).
    pub fn adaptive(axis: FlavorAxis) -> Self {
        ExecConfig {
            flavors: FlavorMode::Adaptive {
                axis,
                policy: PolicyKind::VwGreedy(VwGreedyParams::table5_best()),
            },
            ..ExecConfig::default()
        }
    }

    /// Micro Adaptive with an explicit policy.
    pub fn adaptive_with(axis: FlavorAxis, policy: PolicyKind) -> Self {
        ExecConfig {
            flavors: FlavorMode::Adaptive { axis, policy },
            ..ExecConfig::default()
        }
    }

    /// The §4.2 heuristics competitor.
    pub fn heuristic() -> Self {
        ExecConfig {
            flavors: FlavorMode::Heuristic,
            ..ExecConfig::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with `n` scan worker threads (clamped to ≥ 1).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.worker_threads = n.max(1);
        self
    }

    /// Returns a copy with the reward clamp set (`None` disables).
    pub fn with_reward_clamp(mut self, k: Option<f64>) -> Self {
        self.reward_clamp = k;
        self
    }

    /// Returns a copy with an explicit aggregate partition count
    /// (`0` = follow worker threads, `1` = never partition).
    pub fn with_agg_partitions(mut self, n: usize) -> Self {
        self.agg_partitions = n;
        self
    }

    /// Returns a copy with the estimated-group threshold for partitioning
    /// aggregates over non-sharded inputs.
    pub fn with_agg_min_groups(mut self, n: usize) -> Self {
        self.agg_min_partition_groups = n;
        self
    }

    /// Returns a copy with an explicit join partition count
    /// (`0` = follow worker threads, `1` = never partition).
    pub fn with_join_partitions(mut self, n: usize) -> Self {
        self.join_partitions = n;
        self
    }

    /// Returns a copy with the estimated-row threshold for partitioning
    /// hash joins over non-sharded inputs.
    pub fn with_join_min_rows(mut self, n: usize) -> Self {
        self.join_min_partition_rows = n;
        self
    }

    /// Returns a copy with the per-query memory budget (bytes).
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Returns a copy with strict memory mode on or off (strict mode turns
    /// budget-exceeded findings into `verify()` rejections).
    pub fn with_strict_memory(mut self, strict: bool) -> Self {
        self.strict_memory = strict;
        self
    }

    /// Returns a copy with the scan decode path set (primitive flavors vs
    /// the reference implementation).
    pub fn with_decode(mut self, mode: DecodeMode) -> Self {
        self.decode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names() {
        assert_eq!(
            FlavorAxis::Branching.names().unwrap(),
            &["branching", "no_branching"]
        );
        assert!(FlavorAxis::All.names().is_none());
        assert_eq!(FlavorAxis::Default.names().unwrap().len(), 0);
    }

    #[test]
    fn config_constructors() {
        assert!(matches!(
            ExecConfig::fixed_default().flavors,
            FlavorMode::Fixed(None)
        ));
        assert!(matches!(
            ExecConfig::fixed("no_branching").flavors,
            FlavorMode::Fixed(Some("no_branching"))
        ));
        assert!(matches!(
            ExecConfig::adaptive(FlavorAxis::All).flavors,
            FlavorMode::Adaptive { .. }
        ));
        assert!(matches!(
            ExecConfig::heuristic().flavors,
            FlavorMode::Heuristic
        ));
        assert_eq!(ExecConfig::default().with_seed(7).seed, 7);
    }

    #[test]
    fn worker_and_clamp_knobs() {
        let c = ExecConfig::default();
        assert_eq!(c.worker_threads, 1);
        assert_eq!(c.reward_clamp, Some(DEFAULT_REWARD_CLAMP));
        assert_eq!(c.clone().with_workers(4).worker_threads, 4);
        assert_eq!(c.clone().with_workers(0).worker_threads, 1);
        assert_eq!(c.with_reward_clamp(None).reward_clamp, None);
    }

    #[test]
    fn agg_partition_knobs() {
        let c = ExecConfig::default();
        assert_eq!(c.agg_partitions, 0);
        assert_eq!(c.agg_min_partition_groups, DEFAULT_AGG_MIN_PARTITION_GROUPS);
        assert_eq!(c.clone().with_agg_partitions(1).agg_partitions, 1);
        assert_eq!(c.with_agg_min_groups(10).agg_min_partition_groups, 10);
    }

    #[test]
    fn join_partition_knobs() {
        let c = ExecConfig::default();
        assert_eq!(c.join_partitions, 0);
        assert_eq!(c.join_min_partition_rows, DEFAULT_JOIN_MIN_PARTITION_ROWS);
        assert_eq!(c.clone().with_join_partitions(1).join_partitions, 1);
        assert_eq!(c.with_join_min_rows(10).join_min_partition_rows, 10);
    }

    #[test]
    fn decode_mode_knob() {
        let c = ExecConfig::default();
        assert_eq!(c.decode, DecodeMode::Primitive);
        assert_eq!(
            c.with_decode(DecodeMode::Reference).decode,
            DecodeMode::Reference
        );
    }

    #[test]
    fn memory_budget_knobs() {
        let c = ExecConfig::default();
        assert_eq!(c.memory_budget, DEFAULT_MEMORY_BUDGET);
        assert!(!c.strict_memory);
        assert_eq!(c.clone().with_memory_budget(4096).memory_budget, 4096);
        assert!(c.with_strict_memory(true).strict_memory);
    }
}
