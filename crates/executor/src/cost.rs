//! Static memory & cost bounds — the planner's second dataflow pass.
//!
//! Where [`mod@crate::analyze`] proves *value* facts (intervals, NDV,
//! expression safety), this pass proves *resource* facts: for every
//! physical operator instance the plan will lower to, an upper bound on
//! its peak resident bytes, plus a coarse work bound (tuples × per-op
//! cost). The walk mirrors the physical planner's decisions — partition
//! verdicts, morsel sharding, exchange shapes — so the bounds describe
//! the pipeline [`crate::plan::lower`] actually builds.
//!
//! The byte model is deliberately conservative (DESIGN.md §12 states the
//! roll-up rules and the soundness argument):
//!
//! * per-column row widths come from base-table statistics
//!   ([`ma_vector::ColumnStats::max_bytes`]) and propagate structurally
//!   through the plan (string widths never grow: `substr` shrinks,
//!   aggregates emit 8-byte scalars);
//! * hash-aggregate tables are bounded from the analyzer's group bound
//!   (slot arrays at 50% load, key storage, accumulators, one emitted
//!   output copy);
//! * join builds from the build side's row bound (key columns, payload
//!   row store, hashes/heads/chain, Bloom filter);
//! * sorts from the input row bound (row store + index + one emitted
//!   copy);
//! * exchanges from channel depth × batch size × a chunk byte bound.
//!
//! The per-query peak is the *sum* of all per-operator stage bounds, as
//! if every operator held its maximum simultaneously — pessimistic, but
//! sound without liveness reasoning. Each bound is also handed to the
//! lowered operator's [`crate::adaptive::MemTracker`] slot, and the
//! fuzzer's byte-accounting oracle re-checks `actual ≤ bound` on every
//! execution (`crate::fuzz`).
//!
//! Findings compare the roll-up against [`crate::ExecConfig::memory_budget`]:
//! warnings by default, a [`crate::verify::VerifyError::MemoryBudget`]
//! rejection under `strict_memory`.

use ma_primitives::BloomFilter;
use ma_vector::{Column, DataType, EncColumn, Encoding, Table};

use crate::analyze;
use crate::config::ExecConfig;
use crate::ops::exchange::{CHANNEL_DEPTH_PER_WORKER, CHUNKS_PER_MESSAGE};
use crate::ops::{AggSpec, ProjItem};
use crate::plan::lower::{agg_partition_count, join_partition_count, shardable_chain};
use crate::plan::LogicalPlan;

/// Saturation ceiling for quantities derived from saturated row bounds
/// (large enough to dwarf any real budget, small enough that downstream
/// saturating sums stay meaningful).
const SAT: u64 = u64::MAX >> 8;

// ---------------------------------------------------------------------------
// report types
// ---------------------------------------------------------------------------

/// Proven bounds for one physical operator stage.
#[derive(Debug, Clone)]
pub struct OpCost {
    /// Stats label (or a synthesized name for label-less nodes).
    pub label: String,
    /// Operator kind, e.g. `"hash-agg"` or `"exchange"`.
    pub kind: &'static str,
    /// Parallel instances the planner will lower (partition verdict).
    pub instances: usize,
    /// Peak resident bytes proven for **one** instance.
    pub per_instance_bytes: u64,
    /// Stage total: `instances × per_instance_bytes` (each partition may
    /// in the worst case receive the whole input, so the per-instance
    /// figure is not divided).
    pub bytes: u64,
    /// Work bound: input tuples × a per-operator cost constant.
    pub work: u64,
}

/// A typed finding from the memory/cost pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostFinding {
    /// The whole-query peak-byte roll-up exceeds the configured budget.
    BudgetExceeded {
        /// Proven peak bytes for the query.
        peak_bytes: u64,
        /// The configured [`ExecConfig::memory_budget`].
        budget: u64,
    },
    /// A single operator stage alone exceeds the configured budget.
    OpBudgetExceeded {
        /// The offending stage's label.
        label: String,
        /// The stage's proven bytes.
        bytes: u64,
        /// The configured [`ExecConfig::memory_budget`].
        budget: u64,
    },
}

impl std::fmt::Display for CostFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostFinding::BudgetExceeded { peak_bytes, budget } => write!(
                f,
                "proven peak {} exceeds memory budget {}",
                fmt_bytes(*peak_bytes),
                fmt_bytes(*budget)
            ),
            CostFinding::OpBudgetExceeded {
                label,
                bytes,
                budget,
            } => write!(
                f,
                "operator `{label}` alone needs {} against memory budget {}",
                fmt_bytes(*bytes),
                fmt_bytes(*budget)
            ),
        }
    }
}

/// The full report: per-stage bounds, the roll-up, and findings.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Per-stage bounds, in plan walk order (top-down).
    pub ops: Vec<OpCost>,
    /// Whole-query peak-byte bound (sum of all stage bounds).
    pub peak_bytes: u64,
    /// Whole-query work bound.
    pub total_work: u64,
    /// Budget findings (empty when the plan fits the budget).
    pub findings: Vec<CostFinding>,
}

/// Runs the memory/cost pass over a logical plan under `cfg`.
pub fn cost(plan: &LogicalPlan, cfg: &ExecConfig) -> CostReport {
    let mut ops = Vec::new();
    walk(plan, cfg, false, true, &mut ops);
    let peak_bytes = ops.iter().fold(0u64, |a, o| a.saturating_add(o.bytes));
    let total_work = ops.iter().fold(0u64, |a, o| a.saturating_add(o.work));
    let mut findings = Vec::new();
    if peak_bytes > cfg.memory_budget {
        findings.push(CostFinding::BudgetExceeded {
            peak_bytes,
            budget: cfg.memory_budget,
        });
    }
    for o in &ops {
        if o.bytes > cfg.memory_budget {
            findings.push(CostFinding::OpBudgetExceeded {
                label: o.label.clone(),
                bytes: o.bytes,
                budget: cfg.memory_budget,
            });
        }
    }
    CostReport {
        ops,
        peak_bytes,
        total_work,
        findings,
    }
}

/// Renders a report as an aligned table (the `repro mem` / `repro
/// analyze` view).
pub fn render(report: &CostReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "peak bytes (proven): {}   work bound: {}",
        fmt_bytes(report.peak_bytes),
        report.total_work
    );
    for o in &report.ops {
        let _ = writeln!(
            out,
            "  {:<11} {:<28} x{:<2} {:>12}/inst {:>12} total",
            o.kind,
            o.label,
            o.instances,
            fmt_bytes(o.per_instance_bytes),
            fmt_bytes(o.bytes),
        );
    }
    if report.findings.is_empty() {
        let _ = writeln!(out, "  findings: none");
    } else {
        for fdg in &report.findings {
            let _ = writeln!(out, "  finding: {fdg}");
        }
    }
    out
}

/// Human-readable byte count (binary units, one decimal).
pub fn fmt_bytes(b: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    if b >= SAT {
        "unbounded".to_string()
    } else if b >= GIB {
        format!("{:.1} GiB", b as f64 / GIB as f64)
    } else if b >= MIB {
        format!("{:.1} MiB", b as f64 / MIB as f64)
    } else if b >= KIB {
        format!("{:.1} KiB", b as f64 / KIB as f64)
    } else {
        format!("{b} B")
    }
}

// ---------------------------------------------------------------------------
// the cost-model partition verdict
// ---------------------------------------------------------------------------

/// Picks a partition count for a bound-triggered partitioned consumer:
/// enough partitions that each stays under `threshold` units of demand
/// (`ceil(demand / threshold)`), at least 2 (a single partition would be
/// the sequential plan), at most `cap` (the worker count). Explicit
/// `agg_partitions` / `join_partitions` knobs bypass this verdict.
pub(crate) fn pick_partitions(demand: usize, threshold: usize, cap: usize) -> usize {
    let per = threshold.max(1);
    let need = demand
        .checked_div(per)
        .unwrap_or(0)
        .saturating_add(usize::from(!demand.is_multiple_of(per)));
    need.clamp(2, cap.max(2))
}

// ---------------------------------------------------------------------------
// per-column row widths
// ---------------------------------------------------------------------------

/// Per-column stored row width in bytes for a node's output. Numeric
/// columns are their scalar width; `Str` columns are the widest value's
/// byte length plus an 8-byte view, anchored at scans by
/// [`ma_vector::ColumnStats::max_bytes`] and carried structurally.
pub(crate) fn col_widths(plan: &LogicalPlan) -> Vec<u64> {
    col_widths_with(plan, false)
}

/// [`col_widths`] as the *consumers of decoded vectors* see it: identical
/// except at scans of dictionary-coded `Str` columns, whose decoded form
/// is an 8-byte view into the shared dictionary arena (the scan never
/// re-materializes the string bytes), so their effective row width is 8
/// rather than `max_bytes + 8`. Integer codecs decode to full-width
/// values and keep their raw width. Used only to *weight partition
/// demand* (DESIGN.md §13); the soundness-critical byte bounds keep the
/// conservative raw widths.
pub(crate) fn enc_col_widths(plan: &LogicalPlan) -> Vec<u64> {
    col_widths_with(plan, true)
}

fn col_widths_with(plan: &LogicalPlan, enc: bool) -> Vec<u64> {
    match plan {
        LogicalPlan::Scan {
            table,
            cols,
            schema,
            ..
        } => cols
            .iter()
            .zip(schema.fields())
            .map(|(name, f)| match f.ty.fixed_width() {
                Some(w) => w as u64,
                None => {
                    let i = table
                        .column_index(name)
                        .expect("scan columns resolve at plan build time");
                    if enc && table.column_at(i).encoding() == Some(Encoding::Dict) {
                        8
                    } else {
                        (table.stats()[i].max_bytes as u64).saturating_add(8)
                    }
                }
            })
            .collect(),
        LogicalPlan::Filter { input, .. } | LogicalPlan::Sort { input, .. } => {
            col_widths_with(input, enc)
        }
        LogicalPlan::Project {
            input,
            items,
            schema,
            ..
        } => {
            let w_in = col_widths_with(input, enc);
            // A computed Str expression (substr) never yields a longer
            // string than some input Str column.
            let max_str = input
                .schema()
                .fields()
                .iter()
                .zip(&w_in)
                .filter(|(f, _)| f.ty == DataType::Str)
                .map(|(_, &w)| w)
                .max()
                .unwrap_or(8);
            items
                .iter()
                .zip(schema.fields())
                .map(|(it, f)| match it {
                    ProjItem::Pass(i) => w_in[*i],
                    ProjItem::Expr(_) => match f.ty.fixed_width() {
                        Some(w) => w as u64,
                        None => max_str,
                    },
                })
                .collect()
        }
        LogicalPlan::HashAgg {
            input, keys, aggs, ..
        } => {
            let w_in = col_widths_with(input, enc);
            let mut w: Vec<u64> = keys.iter().map(|&k| w_in[k]).collect();
            w.extend((0..aggs.len()).map(|_| 8u64));
            w
        }
        LogicalPlan::StreamAgg { aggs, .. } => vec![8; aggs.len()],
        LogicalPlan::HashJoin {
            build,
            probe,
            payload,
            schema,
            ..
        } => {
            let mut w = col_widths_with(probe, enc);
            if schema.len() > w.len() {
                let w_b = col_widths_with(build, enc);
                w.extend(payload.iter().map(|&i| w_b[i]));
            }
            w
        }
        LogicalPlan::MergeJoin {
            left,
            right,
            payload,
            ..
        } => {
            let mut w = col_widths_with(right, enc);
            let w_l = col_widths_with(left, enc);
            w.extend(payload.iter().map(|&i| w_l[i]));
            w
        }
    }
}

/// Total stored bytes of one row of a node's output.
pub(crate) fn row_width(plan: &LogicalPlan) -> u64 {
    col_widths(plan)
        .iter()
        .fold(0u64, |a, &b| a.saturating_add(b))
}

/// Scales a partition-verdict demand by the encoded/raw width ratio of
/// the columns the partitioned consumer holds (`cols`, or the whole row
/// when `None`): `ceil(demand × enc_width / raw_width)`. The partition
/// thresholds are calibrated in raw-width units, so when a consumer's
/// rows arrive dictionary-coded (8-byte views into a shared arena) the
/// same logical demand occupies proportionally fewer resident bytes and
/// the verdict discounts it. A no-op when nothing is dict-coded
/// (`enc == raw`). Verdict-only: the sound byte bounds stay raw.
pub(crate) fn enc_weighted_demand(
    demand: usize,
    plan: &LogicalPlan,
    cols: Option<&[usize]>,
) -> usize {
    let raw_w = col_widths(plan);
    let enc_w = enc_col_widths(plan);
    let sum = |w: &[u64]| -> u64 {
        match cols {
            Some(ks) => ks.iter().fold(0u64, |a, &k| a.saturating_add(w[k])),
            None => w.iter().fold(0u64, |a, &b| a.saturating_add(b)),
        }
    };
    let (raw, enc) = (sum(&raw_w), sum(&enc_w));
    if enc >= raw || raw == 0 {
        return demand;
    }
    let scaled = (demand.min(SAT as usize) as u128)
        .saturating_mul(u128::from(enc))
        .div_ceil(u128::from(raw));
    usize::try_from(scaled).unwrap_or(usize::MAX)
}

// ---------------------------------------------------------------------------
// per-operator bound helpers (shared with `plan::lower`)
// ---------------------------------------------------------------------------

/// Open-addressing capacity for `n` entries at 50% load with the group
/// tables' / join builds' growth policy: `next_pow2(2n)`, at least 64.
fn pow2_cap(n: usize) -> u64 {
    match n.saturating_mul(2).checked_next_power_of_two() {
        Some(c) => c.max(64) as u64,
        None => SAT,
    }
}

/// Peak resident bytes proven for **one** [`crate::ops::HashAggregate`]
/// instance over `input`: group-table slots (16 bytes each at ≤50%
/// load), serialized key storage for the string-table path, one key
/// builder per group column, accumulators (16 bytes for `SumI64`'s
/// 128-bit sums, 8 otherwise), plus one emitted output copy. All terms
/// scale with the analyzer's group bound, which every partition may in
/// the worst case receive entirely.
pub(crate) fn agg_instance_bound(input: &LogicalPlan, keys: &[usize], aggs: &[AggSpec]) -> u64 {
    let g = analyze::group_bound(input, keys);
    let g64 = g.min(usize::MAX >> 8) as u64;
    let w_in = col_widths(input);
    let key_types: Vec<DataType> = keys
        .iter()
        .map(|&k| input.schema().fields()[k].ty)
        .collect();
    let single_int = keys.len() == 1 && key_types[0] != DataType::Str;
    let table = if single_int {
        pow2_cap(g).saturating_mul(16)
    } else {
        // Serialized key width: hex encodings (`serialize_key`) for the
        // multi-column path, the raw string for the single-Str path.
        let ser: u64 = if keys.len() == 1 {
            // raw bytes; the +8 view is added below
            w_in[keys[0]].saturating_sub(8)
        } else {
            keys.iter().zip(&key_types).fold(0u64, |a, (&k, ty)| {
                a.saturating_add(match ty {
                    DataType::I16 => 5,
                    DataType::I32 => 9,
                    DataType::I64 => 17,
                    // 4-digit length prefix + bytes + separator
                    DataType::Str => w_in[k].saturating_sub(8).saturating_add(5),
                    DataType::F64 => 0, // rejected at runtime
                })
            })
        };
        pow2_cap(g)
            .saturating_mul(16)
            .saturating_add(g64.saturating_mul(ser.saturating_add(8)))
    };
    let builders = keys
        .iter()
        .fold(0u64, |a, &k| a.saturating_add(g64.saturating_mul(w_in[k])));
    let accs = aggs.iter().fold(0u64, |a, s| {
        let w = if matches!(s, AggSpec::SumI64(_)) {
            16
        } else {
            8
        };
        a.saturating_add(g64.saturating_mul(w))
    });
    let out_row_w = keys
        .iter()
        .fold(0u64, |a, &k| a.saturating_add(w_in[k]))
        .saturating_add(8u64.saturating_mul(aggs.len() as u64));
    table
        .saturating_add(builders)
        .saturating_add(accs)
        .saturating_add(g64.saturating_mul(out_row_w))
}

/// Peak resident bytes proven for **one** [`crate::ops::HashJoin`]
/// instance's build side holding up to the build plan's row bound: key
/// columns (8 bytes per key per row), the payload row store, and the
/// `finish` structures (row hashes, chain, head slots, Bloom filter).
pub(crate) fn join_build_bound(
    build: &LogicalPlan,
    build_keys: &[usize],
    payload: &[usize],
) -> u64 {
    let r = analyze::row_bound(build);
    let r64 = r.min(usize::MAX >> 8) as u64;
    let w_b = col_widths(build);
    let pay_w = payload.iter().fold(0u64, |a, &i| a.saturating_add(w_b[i]));
    let keys = r64
        .saturating_mul(8)
        .saturating_mul(build_keys.len() as u64);
    let store = r64.saturating_mul(pay_w);
    let hashes = r64.saturating_mul(8);
    let chain = r64.saturating_mul(4);
    let heads = pow2_cap(r).saturating_mul(4);
    let bloom = if r >= (1usize << 48) {
        SAT
    } else {
        BloomFilter::bytes_for_keys(r) as u64
    };
    keys.saturating_add(store)
        .saturating_add(hashes)
        .saturating_add(chain)
        .saturating_add(heads)
        .saturating_add(bloom)
}

/// Peak resident bytes proven for a [`crate::ops::Sort`] over `input`:
/// the materialized row store, the 4-byte sort index, and one emitted
/// copy of the output chunks.
pub(crate) fn sort_bound(input: &LogicalPlan) -> u64 {
    let n = analyze::row_bound(input).min(usize::MAX >> 8) as u64;
    let w = row_width(input);
    n.saturating_mul(w)
        .saturating_mul(2)
        .saturating_add(n.saturating_mul(4))
}

/// Byte bound for a single exchanged chunk of `plan`'s output: at most
/// `vector_size` rows of the node's row width. This is the bound the
/// exchange operators' [`crate::adaptive::MemTracker`] slots carry.
pub(crate) fn chunk_bound(plan: &LogicalPlan, vector_size: usize) -> u64 {
    (vector_size as u64).saturating_mul(row_width(plan))
}

/// Chunk byte bound for a hash aggregate's *output* stream (group keys
/// plus 8-byte aggregate scalars): the partitioned-agg exchange's union
/// carries these alongside the producers' input chunks.
pub(crate) fn agg_out_chunk_bound(
    input: &LogicalPlan,
    keys: &[usize],
    aggs: &[AggSpec],
    vector_size: usize,
) -> u64 {
    let w_in = col_widths(input);
    let out_w = keys
        .iter()
        .fold(0u64, |a, &k| a.saturating_add(w_in[k]))
        .saturating_add(8u64.saturating_mul(aggs.len() as u64));
    (vector_size as u64).saturating_mul(out_w)
}

/// Stage bound for an exchange's channel buffers: every channel holds up
/// to [`CHANNEL_DEPTH_PER_WORKER`] messages per producer plus one
/// in-flight batch, each message up to [`CHUNKS_PER_MESSAGE`] chunks,
/// and the consumer union adds the same per partition.
fn exchange_bytes(producers: usize, partitions: usize, chunk: u64) -> u64 {
    let msgs_per_route = (CHANNEL_DEPTH_PER_WORKER as u64).saturating_add(1);
    let routed = (producers as u64)
        .saturating_mul(partitions as u64)
        .saturating_mul(msgs_per_route);
    let union = (partitions as u64).saturating_mul(msgs_per_route);
    routed
        .saturating_add(union)
        .saturating_mul(CHUNKS_PER_MESSAGE as u64)
        .saturating_mul(chunk)
}

// ---------------------------------------------------------------------------
// the walk
// ---------------------------------------------------------------------------

/// Work-bound cost constants (per input tuple).
const W_SCAN: u64 = 1;
const W_FILTER: u64 = 1;
const W_PROJECT: u64 = 2;
const W_AGG: u64 = 4;
const W_JOIN_BUILD: u64 = 3;
const W_JOIN_PROBE: u64 = 2;
const W_EXCHANGE: u64 = 1;

fn tuples(plan: &LogicalPlan) -> u64 {
    analyze::row_bound(plan).min(usize::MAX >> 8) as u64
}

/// Resident bytes a scan stage holds: the *stored* representation of the
/// scanned columns (the packed words + metadata for encoded columns, the
/// raw vectors/arena otherwise — [`ma_vector::table::Column::resident_bytes`])
/// plus one vector's worth of decode scratch per encoded column (the
/// decoded output vector the flavored decode kernels fill). This is the
/// term the `repro compress` experiment compares across storage modes:
/// encoding shrinks the stored bytes while adding only `vector_size ×
/// decoded-width` scratch.
fn scan_resident_bytes(table: &Table, cols: &[String], vector_size: usize) -> u64 {
    cols.iter().fold(0u64, |acc, name| {
        let i = table
            .column_index(name)
            .expect("scan columns resolve at plan build time");
        let col = table.column_at(i);
        let mut b = col.resident_bytes() as u64;
        if let Column::Enc(e) = col {
            // Decoded element width: full-width values for the integer
            // codecs, an 8-byte view + 4-byte code for dictionary strings.
            let w = match &**e {
                EncColumn::For(c) => c.dt.fixed_width().unwrap_or(8) as u64,
                EncColumn::Delta(_) => 4,
                EncColumn::Dict(_) => 12,
            };
            b = b.saturating_add((vector_size as u64).saturating_mul(w));
        }
        acc.saturating_add(b)
    })
}

/// Recursive bound derivation mirroring `plan::lower`'s decisions.
/// `ordered` tracks whether an order-sensitive ancestor pins this
/// subtree sequential (partition verdicts disengage, as in lowering);
/// `boundary` is true at the nodes `lower_node` dispatches on, so each
/// scan chain's sharding verdict is assessed exactly once at its top.
fn walk(
    plan: &LogicalPlan,
    cfg: &ExecConfig,
    ordered: bool,
    boundary: bool,
    ops: &mut Vec<OpCost>,
) {
    match plan {
        LogicalPlan::Scan { table, cols, .. } => {
            if boundary {
                chain_exchange(plan, cfg, ops);
            }
            push(
                ops,
                table.name(),
                "scan",
                1,
                scan_resident_bytes(table, cols, cfg.vector_size),
                tuples(plan).saturating_mul(W_SCAN),
            );
        }
        LogicalPlan::Filter { input, label, .. } => {
            if boundary {
                chain_exchange(plan, cfg, ops);
            }
            let chain = matches!(
                **input,
                LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Project { .. }
            );
            push(
                ops,
                label,
                "filter",
                1,
                0,
                tuples(input).saturating_mul(W_FILTER),
            );
            walk(input, cfg, ordered, !chain, ops);
        }
        LogicalPlan::Project { input, label, .. } => {
            if boundary {
                chain_exchange(plan, cfg, ops);
            }
            let chain = matches!(
                **input,
                LogicalPlan::Scan { .. } | LogicalPlan::Filter { .. } | LogicalPlan::Project { .. }
            );
            push(
                ops,
                label,
                "project",
                1,
                0,
                tuples(input).saturating_mul(W_PROJECT),
            );
            walk(input, cfg, ordered, !chain, ops);
        }
        LogicalPlan::HashAgg {
            input,
            keys,
            aggs,
            label,
            ..
        } => {
            let partitions = if ordered {
                1
            } else {
                agg_partition_count(input, keys, cfg)
            };
            let per = agg_instance_bound(input, keys, aggs);
            if partitions >= 2 {
                let producers = if shardable_chain(input, cfg).is_some() {
                    cfg.worker_threads.max(1)
                } else {
                    1
                };
                let chunk = chunk_bound(input, cfg.vector_size);
                push(
                    ops,
                    &format!("{label}/exchange"),
                    "exchange",
                    producers,
                    exchange_bytes(producers, partitions, chunk),
                    tuples(input).saturating_mul(W_EXCHANGE),
                );
            }
            push(
                ops,
                label,
                "hash-agg",
                partitions.max(1),
                per,
                tuples(input).saturating_mul(W_AGG),
            );
            walk(input, cfg, false, true, ops);
        }
        LogicalPlan::StreamAgg {
            input, aggs, label, ..
        } => {
            // Scalar accumulators only; not facade-tracked (MEM_EXEMPT).
            push(
                ops,
                label,
                "stream-agg",
                1,
                16u64.saturating_mul(aggs.len() as u64),
                tuples(input).saturating_mul(W_AGG),
            );
            walk(input, cfg, false, true, ops);
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            payload,
            label,
            ..
        } => {
            let partitions = if ordered {
                1
            } else {
                join_partition_count(build, probe, cfg)
            };
            let per = join_build_bound(build, build_keys, payload);
            if partitions >= 2 {
                let shardable =
                    shardable_chain(build, cfg).is_some() || shardable_chain(probe, cfg).is_some();
                let producers = if shardable {
                    cfg.worker_threads.max(1)
                } else {
                    1
                };
                let chunk = chunk_bound(build, cfg.vector_size)
                    .max(chunk_bound(probe, cfg.vector_size))
                    .max(chunk_bound(plan, cfg.vector_size));
                push(
                    ops,
                    &format!("{label}/exchange"),
                    "exchange",
                    producers,
                    // two routed lanes (build + probe) share the formula
                    exchange_bytes(producers, partitions, chunk).saturating_mul(2),
                    tuples(probe).saturating_mul(W_EXCHANGE),
                );
            }
            let work = tuples(build)
                .saturating_mul(W_JOIN_BUILD)
                .saturating_add(tuples(probe).saturating_mul(W_JOIN_PROBE));
            push(ops, label, "hash-join", partitions.max(1), per, work);
            walk(build, cfg, false, true, ops);
            walk(probe, cfg, false, true, ops);
        }
        LogicalPlan::MergeJoin {
            left,
            right,
            payload,
            label,
            ..
        } => {
            // The left (unique-key) side is materialized; merge join is
            // not facade-tracked (MEM_EXEMPT) but the bound still counts
            // its store plus an emitted copy, like a sort without index.
            let n = tuples(left);
            let w_l = col_widths(left);
            let pay_w = payload
                .iter()
                .fold(row_width(left), |a, &i| a.saturating_add(w_l[i]));
            let bytes = n.saturating_mul(pay_w).saturating_mul(2);
            let work = n
                .saturating_mul(W_JOIN_BUILD)
                .saturating_add(tuples(right).saturating_mul(W_JOIN_PROBE));
            push(ops, label, "merge-join", 1, bytes, work);
            walk(left, cfg, true, true, ops);
            walk(right, cfg, true, true, ops);
        }
        LogicalPlan::Sort { input, .. } => {
            let n = tuples(input);
            let logn = if n <= 1 {
                1
            } else {
                u64::from(n.ilog2()).saturating_add(1)
            };
            push(
                ops,
                "sort",
                "sort",
                1,
                sort_bound(input),
                n.saturating_mul(logn),
            );
            walk(input, cfg, false, true, ops);
        }
    }
}

/// Emits the exchange entry for a shardable scan chain dispatched at a
/// `lower_node` boundary (a [`crate::ops::Parallel`] under a free
/// consumer, a [`crate::ops::MergeExchange`] under an ordered one; the
/// Parallel-shaped bound covers both).
fn chain_exchange(plan: &LogicalPlan, cfg: &ExecConfig, ops: &mut Vec<OpCost>) {
    if shardable_chain(plan, cfg).is_none() {
        return;
    }
    let producers = cfg.worker_threads.max(1);
    let chunk = chunk_bound(plan, cfg.vector_size);
    push(
        ops,
        "scan-shard/exchange",
        "exchange",
        producers,
        exchange_bytes(producers, 1, chunk),
        tuples(plan).saturating_mul(W_EXCHANGE),
    );
}

fn push(
    ops: &mut Vec<OpCost>,
    label: &str,
    kind: &'static str,
    instances: usize,
    per_instance_bytes: u64,
    work: u64,
) {
    let bytes = per_instance_bytes.saturating_mul(instances as u64);
    ops.push(OpCost {
        label: label.to_string(),
        kind,
        instances,
        per_instance_bytes,
        bytes,
        work,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::JoinKind;
    use crate::plan::{sum_i64, Catalog, PlanBuilder};
    use ma_vector::{ColumnBuilder, Table};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
        let mut id = ColumnBuilder::with_capacity(ma_vector::DataType::I64, rows);
        let mut k = ColumnBuilder::with_capacity(ma_vector::DataType::I32, rows);
        let mut s = ColumnBuilder::with_capacity(ma_vector::DataType::Str, rows);
        for i in 0..rows {
            id.push_i64(i as i64);
            k.push_i32((i % 5) as i32);
            s.push_str(if i % 2 == 0 { "even" } else { "odd-row" });
        }
        let t = Table::new(
            "t",
            vec![
                ("id".into(), id.finish()),
                ("k".into(), k.finish()),
                ("s".into(), s.finish()),
            ],
        )
        .unwrap();
        let mut d_k = ColumnBuilder::with_capacity(ma_vector::DataType::I32, 3);
        let mut d_v = ColumnBuilder::with_capacity(ma_vector::DataType::I64, 3);
        for i in 0..3 {
            d_k.push_i32(i);
            d_v.push_i64(i64::from(i) * 100);
        }
        let d = Table::new(
            "d",
            vec![("dk".into(), d_k.finish()), ("dv".into(), d_v.finish())],
        )
        .unwrap();
        let mut m = HashMap::new();
        m.insert("t".to_string(), Arc::new(t));
        m.insert("d".to_string(), Arc::new(d));
        m
    }

    fn agg_plan(cat: &dyn Catalog) -> LogicalPlan {
        PlanBuilder::scan(cat, "t", &["id", "k"])
            .hash_agg(&["k"], vec![sum_i64("id")], "agg")
            .build()
            .unwrap()
    }

    #[test]
    fn pick_partitions_scales_with_demand() {
        // at the engagement threshold exactly: one partition's worth of
        // demand, clamped up to the minimum parallel plan
        assert_eq!(pick_partitions(1000, 1000, 4), 2);
        assert_eq!(pick_partitions(1001, 1000, 4), 2);
        assert_eq!(pick_partitions(3500, 1000, 4), 4);
        // demand beyond the worker cap clamps down
        assert_eq!(pick_partitions(90_000, 1000, 4), 4);
        assert_eq!(pick_partitions(usize::MAX, 0, 8), 8);
    }

    #[test]
    fn scan_widths_anchor_at_stats() {
        let cat = catalog(10);
        let plan = PlanBuilder::scan(&cat, "t", &["id", "k", "s"])
            .build()
            .unwrap();
        // i64=8, i32=4, Str = longest ("odd-row"=7) + 8-byte view
        assert_eq!(col_widths(&plan), vec![8, 4, 15]);
        assert_eq!(row_width(&plan), 27);
    }

    #[test]
    fn agg_bound_is_finite_and_covers_table_floor() {
        let cat = catalog(100);
        let plan = agg_plan(&cat);
        let LogicalPlan::HashAgg {
            input, keys, aggs, ..
        } = &plan
        else {
            panic!("expected agg root")
        };
        let b = agg_instance_bound(input, keys, aggs);
        // 5 groups: 64-slot floor (1024 B) + builders + accs + output
        assert!(b >= 1024, "bound {b} below the slot-array floor");
        assert!(b < 16 << 10, "bound {b} implausibly large for 5 groups");
    }

    #[test]
    fn report_has_no_findings_under_default_budget() {
        let cat = catalog(1000);
        let plan = agg_plan(&cat);
        let report = cost(&plan, &ExecConfig::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.peak_bytes > 0);
        assert!(report.total_work > 0);
        assert!(report.ops.iter().any(|o| o.kind == "hash-agg"));
    }

    #[test]
    fn tiny_budget_yields_typed_findings() {
        let cat = catalog(1000);
        let plan = agg_plan(&cat);
        let cfg = ExecConfig::default().with_memory_budget(16);
        let report = cost(&plan, &cfg);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, CostFinding::BudgetExceeded { .. })));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, CostFinding::OpBudgetExceeded { .. })));
        let rendered = render(&report);
        assert!(rendered.contains("finding:"), "{rendered}");
    }

    #[test]
    fn sort_bound_doubles_the_store() {
        let cat = catalog(100);
        let plan = PlanBuilder::scan(&cat, "t", &["id"]).build().unwrap();
        // 100 rows × 8 B × 2 copies + 4 B index
        assert_eq!(sort_bound(&plan), 100 * 8 * 2 + 100 * 4);
    }

    #[test]
    fn join_bound_scales_with_build_rows() {
        let cat = catalog(1000);
        let plan = PlanBuilder::scan(&cat, "t", &["k", "id"])
            .hash_join(
                PlanBuilder::scan(&cat, "d", &["dk", "dv"]),
                &[("k", "dk")],
                &["dv"],
                JoinKind::Inner,
                true,
                "j",
            )
            .build()
            .unwrap();
        let LogicalPlan::HashJoin {
            build,
            build_keys,
            payload,
            ..
        } = &plan
        else {
            panic!("expected join root")
        };
        let b = join_build_bound(build, build_keys, payload);
        // 3 build rows: 64-head floor (256 B) + bloom floor dominate
        assert!(b >= 256, "bound {b} below the head-array floor");
        let report = cost(&plan, &ExecConfig::default());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.ops.iter().any(|o| o.kind == "hash-join"));
    }
}
