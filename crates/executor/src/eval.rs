//! Compiled expressions and predicates: chains of primitive instances.
//!
//! Compilation resolves each AST node to a concrete primitive signature in
//! the dictionary and creates one [`PrimInstance`] per node — the unit the
//! bandit adapts (§1.1: instances, not functions, because every instance
//! sees its own data stream). Evaluation then walks the node list calling
//! [`PrimInstance::invoke`], which is where flavors get chosen and costs
//! observed.

use std::sync::Arc;

use ma_primitives::{
    LikePattern, MapCast, MapColCol, MapColVal, SelColCol, SelColVal, SelLike, SelStrColVal,
};
use ma_vector::{DataChunk, DataType, SelVec, Vector};

use crate::adaptive::{HeurKind, PrimInstance, QueryContext};
use crate::expr::{CmpRhs, Expr, Pred, Value};
use crate::ExecError;

// ---------------------------------------------------------------------------
// projections
// ---------------------------------------------------------------------------

enum CastInst {
    I16I32(PrimInstance<MapCast<i16, i32>>),
    I16I64(PrimInstance<MapCast<i16, i64>>),
    I16F64(PrimInstance<MapCast<i16, f64>>),
    I32I64(PrimInstance<MapCast<i32, i64>>),
    I32F64(PrimInstance<MapCast<i32, f64>>),
    I64F64(PrimInstance<MapCast<i64, f64>>),
}

enum Node {
    Col(usize),
    ArithCcI64 {
        inst: PrimInstance<MapColCol<i64>>,
        lhs: usize,
        rhs: usize,
    },
    ArithCcF64 {
        inst: PrimInstance<MapColCol<f64>>,
        lhs: usize,
        rhs: usize,
    },
    ArithCvI64 {
        inst: PrimInstance<MapColVal<i64>>,
        lhs: usize,
        v: i64,
    },
    ArithCvF64 {
        inst: PrimInstance<MapColVal<f64>>,
        lhs: usize,
        v: f64,
    },
    Cast {
        inst: CastInst,
        child: usize,
    },
    Substr {
        col: usize,
        start: usize,
        len: usize,
    },
}

/// A compiled projection expression: evaluates to one output vector per
/// chunk, computing only live positions (selective computation by default;
/// the *flavor* may choose to compute everything — Fig. 7).
pub struct CompiledExpr {
    nodes: Vec<Node>,
    root: usize,
    out_type: DataType,
}

impl CompiledExpr {
    /// Compiles `expr` against the input column types.
    pub fn compile(
        expr: &Expr,
        input_types: &[DataType],
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        let mut nodes = Vec::new();
        let (root, out_type) = compile_node(expr, input_types, ctx, label, &mut nodes)?;
        Ok(CompiledExpr {
            nodes,
            root,
            out_type,
        })
    }

    /// The output type of the expression.
    pub fn out_type(&self) -> DataType {
        self.out_type
    }

    /// Evaluates over a chunk, producing a vector of `chunk.len()` values
    /// defined at live positions.
    pub fn eval(&mut self, chunk: &DataChunk) -> Result<Arc<Vector>, ExecError> {
        let n = chunk.len();
        let sel = chunk.sel().map(SelVec::as_slice);
        let live = chunk.live_count() as u64;
        let density = if n == 0 { 1.0 } else { live as f64 / n as f64 };
        let mut cache: Vec<Option<Arc<Vector>>> = Vec::with_capacity(self.nodes.len());
        for idx in 0..self.nodes.len() {
            let out: Arc<Vector> = match &mut self.nodes[idx] {
                Node::Col(c) => Arc::clone(chunk.column(*c)),
                Node::ArithCcI64 { inst, lhs, rhs } => {
                    let a = cache[*lhs].as_ref().unwrap().as_i64();
                    let b = cache[*rhs].as_ref().unwrap().as_i64();
                    let mut out = vec![0i64; n];
                    inst.hint(density);
                    inst.invoke(live, |f| f(&mut out, a, b, sel));
                    Arc::new(Vector::I64(out))
                }
                Node::ArithCcF64 { inst, lhs, rhs } => {
                    let a = cache[*lhs].as_ref().unwrap().as_f64();
                    let b = cache[*rhs].as_ref().unwrap().as_f64();
                    let mut out = vec![0f64; n];
                    inst.hint(density);
                    inst.invoke(live, |f| f(&mut out, a, b, sel));
                    Arc::new(Vector::F64(out))
                }
                Node::ArithCvI64 { inst, lhs, v } => {
                    let a = cache[*lhs].as_ref().unwrap().as_i64();
                    let mut out = vec![0i64; n];
                    inst.hint(density);
                    let v = *v;
                    inst.invoke(live, |f| f(&mut out, a, v, sel));
                    Arc::new(Vector::I64(out))
                }
                Node::ArithCvF64 { inst, lhs, v } => {
                    let a = cache[*lhs].as_ref().unwrap().as_f64();
                    let mut out = vec![0f64; n];
                    inst.hint(density);
                    let v = *v;
                    inst.invoke(live, |f| f(&mut out, a, v, sel));
                    Arc::new(Vector::F64(out))
                }
                Node::Cast { inst, child } => {
                    let src = cache[*child].as_ref().unwrap();
                    cast_eval(inst, src, n, live, sel)
                }
                Node::Substr { col, start, len } => {
                    let src = chunk.column(*col).as_str_vec();
                    let mut out = src.writable_like(n);
                    let apply = |i: usize, out: &mut ma_vector::StrVec| {
                        let (off, slen) = src.views()[i];
                        let s = (*start).min(slen as usize);
                        let l = (*len).min(slen as usize - s);
                        out.views_mut()[i] = (off + s as u32, l as u32);
                    };
                    match sel {
                        Some(s) => {
                            for &i in s {
                                apply(i as usize, &mut out);
                            }
                        }
                        None => {
                            for i in 0..n {
                                apply(i, &mut out);
                            }
                        }
                    }
                    Arc::new(Vector::Str(out))
                }
            };
            cache.push(Some(out));
        }
        Ok(cache[self.root].take().expect("root evaluated"))
    }
}

fn cast_eval(
    inst: &mut CastInst,
    src: &Vector,
    n: usize,
    live: u64,
    sel: Option<&[u32]>,
) -> Arc<Vector> {
    match inst {
        CastInst::I16I32(i) => {
            let s = src.as_i16();
            let mut out = vec![0i32; n];
            i.invoke(live, |f| f(&mut out, s, sel));
            Arc::new(Vector::I32(out))
        }
        CastInst::I16I64(i) => {
            let s = src.as_i16();
            let mut out = vec![0i64; n];
            i.invoke(live, |f| f(&mut out, s, sel));
            Arc::new(Vector::I64(out))
        }
        CastInst::I16F64(i) => {
            let s = src.as_i16();
            let mut out = vec![0f64; n];
            i.invoke(live, |f| f(&mut out, s, sel));
            Arc::new(Vector::F64(out))
        }
        CastInst::I32I64(i) => {
            let s = src.as_i32();
            let mut out = vec![0i64; n];
            i.invoke(live, |f| f(&mut out, s, sel));
            Arc::new(Vector::I64(out))
        }
        CastInst::I32F64(i) => {
            let s = src.as_i32();
            let mut out = vec![0f64; n];
            i.invoke(live, |f| f(&mut out, s, sel));
            Arc::new(Vector::F64(out))
        }
        CastInst::I64F64(i) => {
            let s = src.as_i64();
            let mut out = vec![0f64; n];
            i.invoke(live, |f| f(&mut out, s, sel));
            Arc::new(Vector::F64(out))
        }
    }
}

fn compile_node(
    expr: &Expr,
    input_types: &[DataType],
    ctx: &QueryContext,
    label: &str,
    nodes: &mut Vec<Node>,
) -> Result<(usize, DataType), ExecError> {
    match expr {
        Expr::Col(c) => {
            let ty = *input_types
                .get(*c)
                .ok_or_else(|| ExecError::Plan(format!("column {c} out of range")))?;
            nodes.push(Node::Col(*c));
            Ok((nodes.len() - 1, ty))
        }
        Expr::Const(_) => Err(ExecError::Plan(
            "constants are only valid as the rhs of arithmetic".into(),
        )),
        Expr::Cast { to, inner } => {
            let (child, from) = compile_node(inner, input_types, ctx, label, nodes)?;
            let sig = format!("map_cast_{}_{}", from.sig_name(), to.sig_name());
            let lbl = format!("{label}/{sig}");
            let inst = match (from, to) {
                (DataType::I16, DataType::I32) => {
                    CastInst::I16I32(ctx.instance(&sig, lbl, HeurKind::None)?)
                }
                (DataType::I16, DataType::I64) => {
                    CastInst::I16I64(ctx.instance(&sig, lbl, HeurKind::None)?)
                }
                (DataType::I16, DataType::F64) => {
                    CastInst::I16F64(ctx.instance(&sig, lbl, HeurKind::None)?)
                }
                (DataType::I32, DataType::I64) => {
                    CastInst::I32I64(ctx.instance(&sig, lbl, HeurKind::None)?)
                }
                (DataType::I32, DataType::F64) => {
                    CastInst::I32F64(ctx.instance(&sig, lbl, HeurKind::None)?)
                }
                (DataType::I64, DataType::F64) => {
                    CastInst::I64F64(ctx.instance(&sig, lbl, HeurKind::None)?)
                }
                _ => return Err(ExecError::Plan(format!("unsupported cast {from} -> {to}"))),
            };
            nodes.push(Node::Cast { inst, child });
            Ok((nodes.len() - 1, *to))
        }
        Expr::Substr { col, start, len } => {
            let ty = *input_types
                .get(*col)
                .ok_or_else(|| ExecError::Plan(format!("column {col} out of range")))?;
            if ty != DataType::Str {
                return Err(ExecError::Plan("substr requires a string column".into()));
            }
            nodes.push(Node::Substr {
                col: *col,
                start: *start,
                len: *len,
            });
            Ok((nodes.len() - 1, DataType::Str))
        }
        Expr::Arith { op, lhs, rhs } => {
            let (l, lty) = compile_node(lhs, input_types, ctx, label, nodes)?;
            if let Expr::Const(v) = rhs.as_ref() {
                if v.data_type() != lty {
                    return Err(ExecError::Plan(format!(
                        "arith const type {} does not match lhs {lty}",
                        v.data_type()
                    )));
                }
                let sig = format!("map_{}_{}_col_val", op.sig_name(), lty.sig_name());
                let lbl = format!("{label}/{sig}");
                let node = match v {
                    Value::I64(c) => Node::ArithCvI64 {
                        inst: ctx.instance(&sig, lbl, HeurKind::FullComp { elem_bytes: 8 })?,
                        lhs: l,
                        v: *c,
                    },
                    Value::F64(c) => Node::ArithCvF64 {
                        inst: ctx.instance(&sig, lbl, HeurKind::FullComp { elem_bytes: 8 })?,
                        lhs: l,
                        v: *c,
                    },
                    _ => {
                        return Err(ExecError::Plan(
                            "arithmetic is supported on i64/f64; cast first".into(),
                        ))
                    }
                };
                nodes.push(node);
                Ok((nodes.len() - 1, lty))
            } else {
                let (r, rty) = compile_node(rhs, input_types, ctx, label, nodes)?;
                if lty != rty {
                    return Err(ExecError::Plan(format!(
                        "arith operand types differ: {lty} vs {rty}"
                    )));
                }
                let sig = format!("map_{}_{}_col_col", op.sig_name(), lty.sig_name());
                let lbl = format!("{label}/{sig}");
                let node = match lty {
                    DataType::I64 => Node::ArithCcI64 {
                        inst: ctx.instance(&sig, lbl, HeurKind::FullComp { elem_bytes: 8 })?,
                        lhs: l,
                        rhs: r,
                    },
                    DataType::F64 => Node::ArithCcF64 {
                        inst: ctx.instance(&sig, lbl, HeurKind::FullComp { elem_bytes: 8 })?,
                        lhs: l,
                        rhs: r,
                    },
                    other => {
                        return Err(ExecError::Plan(format!(
                            "arithmetic on {other} unsupported; cast to i64/f64"
                        )))
                    }
                };
                nodes.push(node);
                Ok((nodes.len() - 1, lty))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// predicates
// ---------------------------------------------------------------------------

enum PredNode {
    CvI16 {
        inst: PrimInstance<SelColVal<i16>>,
        col: usize,
        v: i16,
    },
    CvI32 {
        inst: PrimInstance<SelColVal<i32>>,
        col: usize,
        v: i32,
    },
    CvI64 {
        inst: PrimInstance<SelColVal<i64>>,
        col: usize,
        v: i64,
    },
    CvF64 {
        inst: PrimInstance<SelColVal<f64>>,
        col: usize,
        v: f64,
    },
    CcI16 {
        inst: PrimInstance<SelColCol<i16>>,
        a: usize,
        b: usize,
    },
    CcI32 {
        inst: PrimInstance<SelColCol<i32>>,
        a: usize,
        b: usize,
    },
    CcI64 {
        inst: PrimInstance<SelColCol<i64>>,
        a: usize,
        b: usize,
    },
    CcF64 {
        inst: PrimInstance<SelColCol<f64>>,
        a: usize,
        b: usize,
    },
    StrCmp {
        inst: PrimInstance<SelStrColVal>,
        /// Code-comparison rewrite used when the input vector arrives
        /// dictionary-coded: codes index the *sorted* dictionary, so
        /// `=`/`<>` against a literal becomes an i32 selection over the
        /// codes — the string bytes are never touched. Boxed to keep the
        /// rewrite from bloating every other `PredNode` variant.
        code_inst: Box<PrimInstance<SelColVal<i32>>>,
        eq: bool,
        col: usize,
        v: String,
    },
    Like {
        inst: PrimInstance<SelLike>,
        col: usize,
        pat: LikePattern,
    },
    And(Vec<CompiledPred>),
    Or(Vec<CompiledPred>),
}

/// A compiled predicate: produces the surviving positions of a chunk.
pub struct CompiledPred {
    node: PredNode,
}

impl CompiledPred {
    /// Compiles a predicate tree against the input column types.
    pub fn compile(
        pred: &Pred,
        input_types: &[DataType],
        ctx: &QueryContext,
        label: &str,
    ) -> Result<Self, ExecError> {
        let node = match pred {
            Pred::Cmp { col, op, rhs } => {
                let cty = *input_types
                    .get(*col)
                    .ok_or_else(|| ExecError::Plan(format!("column {col} out of range")))?;
                match rhs {
                    CmpRhs::Const(v) => {
                        if cty == DataType::Str {
                            let val = match v {
                                Value::Str(s) => s.clone(),
                                _ => {
                                    return Err(ExecError::Plan(
                                        "string column compared to non-string".into(),
                                    ))
                                }
                            };
                            let (sig, code_sig, eq) = match op {
                                crate::expr::CmpKind::Eq => {
                                    ("sel_eq_str_col_val", "sel_eq_i32_col_val", true)
                                }
                                crate::expr::CmpKind::Ne => {
                                    ("sel_ne_str_col_val", "sel_ne_i32_col_val", false)
                                }
                                other => {
                                    return Err(ExecError::Plan(format!(
                                        "string comparison {other:?} unsupported"
                                    )))
                                }
                            };
                            PredNode::StrCmp {
                                inst: ctx.instance(
                                    sig,
                                    format!("{label}/{sig}"),
                                    HeurKind::Selection,
                                )?,
                                code_inst: Box::new(ctx.instance(
                                    code_sig,
                                    format!("{label}/{code_sig}/dict"),
                                    HeurKind::Selection,
                                )?),
                                eq,
                                col: *col,
                                v: val,
                            }
                        } else {
                            if v.data_type() != cty {
                                return Err(ExecError::Plan(format!(
                                    "comparison const type {} does not match column {cty}",
                                    v.data_type()
                                )));
                            }
                            let sig = format!("sel_{}_{}_col_val", op.sig_name(), cty.sig_name());
                            let lbl = format!("{label}/{sig}");
                            match v {
                                Value::I16(c) => PredNode::CvI16 {
                                    inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                    col: *col,
                                    v: *c,
                                },
                                Value::I32(c) => PredNode::CvI32 {
                                    inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                    col: *col,
                                    v: *c,
                                },
                                Value::I64(c) => PredNode::CvI64 {
                                    inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                    col: *col,
                                    v: *c,
                                },
                                Value::F64(c) => PredNode::CvF64 {
                                    inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                    col: *col,
                                    v: *c,
                                },
                                Value::Str(_) => unreachable!("handled above"),
                            }
                        }
                    }
                    CmpRhs::Col(other) => {
                        let oty = *input_types.get(*other).ok_or_else(|| {
                            ExecError::Plan(format!("column {other} out of range"))
                        })?;
                        if oty != cty {
                            return Err(ExecError::Plan(format!(
                                "col-col comparison types differ: {cty} vs {oty}"
                            )));
                        }
                        let sig = format!("sel_{}_{}_col_col", op.sig_name(), cty.sig_name());
                        let lbl = format!("{label}/{sig}");
                        match cty {
                            DataType::I16 => PredNode::CcI16 {
                                inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                a: *col,
                                b: *other,
                            },
                            DataType::I32 => PredNode::CcI32 {
                                inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                a: *col,
                                b: *other,
                            },
                            DataType::I64 => PredNode::CcI64 {
                                inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                a: *col,
                                b: *other,
                            },
                            DataType::F64 => PredNode::CcF64 {
                                inst: ctx.instance(&sig, lbl, HeurKind::Selection)?,
                                a: *col,
                                b: *other,
                            },
                            DataType::Str => {
                                return Err(ExecError::Plan(
                                    "string col-col comparison unsupported".into(),
                                ))
                            }
                        }
                    }
                }
            }
            Pred::Like { col, pattern } => PredNode::Like {
                inst: ctx.instance(
                    "sel_like_str_col_val",
                    format!("{label}/sel_like"),
                    HeurKind::None,
                )?,
                col: *col,
                pat: LikePattern::compile(pattern),
            },
            Pred::NotLike { col, pattern } => PredNode::Like {
                inst: ctx.instance(
                    "sel_notlike_str_col_val",
                    format!("{label}/sel_notlike"),
                    HeurKind::None,
                )?,
                col: *col,
                pat: LikePattern::compile(pattern),
            },
            Pred::InStr { col, values } => {
                let branches: Vec<Pred> = values
                    .iter()
                    .map(|v| Pred::str_eq(*col, v.clone()))
                    .collect();
                return CompiledPred::compile(&Pred::Or(branches), input_types, ctx, label);
            }
            Pred::And(ps) => {
                if ps.is_empty() {
                    return Err(ExecError::Plan("empty AND".into()));
                }
                PredNode::And(
                    ps.iter()
                        .map(|p| CompiledPred::compile(p, input_types, ctx, label))
                        .collect::<Result<_, _>>()?,
                )
            }
            Pred::Or(ps) => {
                if ps.is_empty() {
                    return Err(ExecError::Plan("empty OR".into()));
                }
                PredNode::Or(
                    ps.iter()
                        .map(|p| CompiledPred::compile(p, input_types, ctx, label))
                        .collect::<Result<_, _>>()?,
                )
            }
        };
        Ok(CompiledPred { node })
    }

    /// Applies the predicate over a chunk, restricted to `sel_in` (or all
    /// positions if `None`). Returns the surviving positions, ascending.
    pub fn apply(&mut self, chunk: &DataChunk, sel_in: Option<&[u32]>) -> SelVec {
        let candidates = sel_in.map_or(chunk.len(), <[u32]>::len);
        // Leaf evaluation shared by all comparison nodes.
        macro_rules! leaf {
            ($inst:expr, $call:expr) => {{
                let mut buf = vec![0u32; candidates];
                #[allow(clippy::redundant_closure_call)]
                let k = $call(&mut buf);
                let out_sel = if candidates == 0 {
                    0.0
                } else {
                    k as f64 / candidates as f64
                };
                $inst.hint(out_sel); // heuristics: observed selectivity
                buf.truncate(k);
                SelVec::from_positions(buf)
            }};
        }
        match &mut self.node {
            PredNode::CvI16 { inst, col, v } => {
                let c = chunk.column(*col).as_i16();
                let v = *v;
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, c, v, sel_in)))
            }
            PredNode::CvI32 { inst, col, v } => {
                let c = chunk.column(*col).as_i32();
                let v = *v;
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, c, v, sel_in)))
            }
            PredNode::CvI64 { inst, col, v } => {
                let c = chunk.column(*col).as_i64();
                let v = *v;
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, c, v, sel_in)))
            }
            PredNode::CvF64 { inst, col, v } => {
                let c = chunk.column(*col).as_f64();
                let v = *v;
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, c, v, sel_in)))
            }
            PredNode::CcI16 { inst, a, b } => {
                let ca = chunk.column(*a).as_i16();
                let cb = chunk.column(*b).as_i16();
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, ca, cb, sel_in)))
            }
            PredNode::CcI32 { inst, a, b } => {
                let ca = chunk.column(*a).as_i32();
                let cb = chunk.column(*b).as_i32();
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, ca, cb, sel_in)))
            }
            PredNode::CcI64 { inst, a, b } => {
                let ca = chunk.column(*a).as_i64();
                let cb = chunk.column(*b).as_i64();
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, ca, cb, sel_in)))
            }
            PredNode::CcF64 { inst, a, b } => {
                let ca = chunk.column(*a).as_f64();
                let cb = chunk.column(*b).as_f64();
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, ca, cb, sel_in)))
            }
            PredNode::StrCmp {
                inst,
                code_inst,
                eq,
                col,
                v,
            } => {
                let c = chunk.column(*col).as_str_vec();
                if let Some((dict_views, codes)) = c.dict_codes() {
                    // Dictionary-coded vector: rewrite to a code
                    // comparison (codes index the sorted dictionary, so
                    // code equality is string equality). A literal absent
                    // from the dictionary decides the predicate outright.
                    let arena = c.arena();
                    let pos = dict_views.binary_search_by(|&(o, l)| {
                        arena[o as usize..o as usize + l as usize].cmp(v.as_bytes())
                    });
                    return match pos {
                        Ok(code) => {
                            let code = code as i32;
                            leaf!(code_inst, |buf: &mut Vec<u32>| code_inst
                                .invoke(candidates as u64, |f| f(buf, codes, code, sel_in)))
                        }
                        Err(_) if *eq => SelVec::from_positions(Vec::new()),
                        Err(_) => match sel_in {
                            Some(s) => SelVec::from_positions(s.to_vec()),
                            None => SelVec::from_positions((0..chunk.len() as u32).collect()),
                        },
                    };
                }
                let v = v.clone();
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, c, &v, sel_in)))
            }
            PredNode::Like { inst, col, pat } => {
                let c = chunk.column(*col).as_str_vec();
                let pat = pat.clone();
                leaf!(inst, |buf: &mut Vec<u32>| inst
                    .invoke(candidates as u64, |f| f(buf, c, &pat, sel_in)))
            }
            PredNode::And(ps) => {
                let mut cur: Option<SelVec> = None;
                for p in ps {
                    let s = p.apply(chunk, cur.as_ref().map(SelVec::as_slice).or(sel_in));
                    if s.is_empty() {
                        return s;
                    }
                    cur = Some(s);
                }
                cur.expect("non-empty AND")
            }
            PredNode::Or(ps) => {
                let mut acc: Vec<u32> = Vec::new();
                for p in ps {
                    let s = p.apply(chunk, sel_in);
                    acc = union_sorted(&acc, s.as_slice());
                }
                SelVec::from_positions(acc)
            }
        }
    }
}

/// Merges two strictly-increasing position lists.
fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecConfig;
    use crate::expr::CmpKind;
    use ma_primitives::build_dictionary;

    fn ctx() -> QueryContext {
        QueryContext::new(Arc::new(build_dictionary()), ExecConfig::fixed_default())
    }

    fn chunk() -> DataChunk {
        DataChunk::new(vec![
            Arc::new(Vector::I64(vec![10, 20, 30, 40])),
            Arc::new(Vector::I64(vec![1, 2, 3, 4])),
            Arc::new(Vector::I32(vec![100, 200, 300, 400])),
            Arc::new(Vector::Str(ma_vector::StrVec::from_strings(&[
                "MAIL", "SHIP", "MAIL", "RAIL",
            ]))),
            Arc::new(Vector::F64(vec![0.5, 0.25, 0.75, 0.1])),
        ])
    }

    #[test]
    fn arith_col_col_and_col_val() {
        let c = ctx();
        let e = Expr::mul(Expr::col(0), Expr::add(Expr::col(1), Expr::i64(10)));
        let mut ce = CompiledExpr::compile(&e, &[DataType::I64, DataType::I64], &c, "t").unwrap();
        assert_eq!(ce.out_type(), DataType::I64);
        let ch = chunk();
        let v = ce.eval(&ch).unwrap();
        assert_eq!(v.as_i64(), &[110, 240, 390, 560]);
    }

    #[test]
    fn cast_then_arith() {
        let c = ctx();
        // (i32 col 2 as i64) - col 1
        let e = Expr::sub(Expr::cast(DataType::I64, Expr::col(2)), Expr::col(1));
        let types = [DataType::I64, DataType::I64, DataType::I32];
        let mut ce = CompiledExpr::compile(&e, &types, &c, "t").unwrap();
        let v = ce.eval(&chunk()).unwrap();
        assert_eq!(v.as_i64(), &[99, 198, 297, 396]);
    }

    #[test]
    fn eval_respects_selection_vector() {
        let c = ctx();
        let e = Expr::add(Expr::col(1), Expr::i64(100));
        let mut ce = CompiledExpr::compile(&e, &[DataType::I64, DataType::I64], &c, "t").unwrap();
        let mut ch = chunk();
        ch.set_sel(Some(SelVec::from_positions(vec![1, 3])));
        let v = ce.eval(&ch).unwrap();
        assert_eq!(v.as_i64()[1], 102);
        assert_eq!(v.as_i64()[3], 104);
    }

    #[test]
    fn substr_expr() {
        let c = ctx();
        let e = Expr::Substr {
            col: 3,
            start: 0,
            len: 2,
        };
        let types = [DataType::I64, DataType::I64, DataType::I32, DataType::Str];
        let mut ce = CompiledExpr::compile(&e, &types, &c, "t").unwrap();
        assert_eq!(ce.out_type(), DataType::Str);
        let v = ce.eval(&chunk()).unwrap();
        let sv = v.as_str_vec();
        assert_eq!(sv.get(0), "MA");
        assert_eq!(sv.get(1), "SH");
    }

    #[test]
    fn type_mismatch_rejected() {
        let c = ctx();
        let e = Expr::add(Expr::col(0), Expr::col(2)); // i64 + i32
        let types = [DataType::I64, DataType::I64, DataType::I32];
        assert!(matches!(
            CompiledExpr::compile(&e, &types, &c, "t"),
            Err(ExecError::Plan(_))
        ));
    }

    fn types5() -> Vec<DataType> {
        vec![
            DataType::I64,
            DataType::I64,
            DataType::I32,
            DataType::Str,
            DataType::F64,
        ]
    }

    #[test]
    fn cmp_const_predicate() {
        let c = ctx();
        let p = Pred::cmp_val(0, CmpKind::Gt, Value::I64(15));
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        let s = cp.apply(&chunk(), None);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn cmp_col_col_predicate() {
        let c = ctx();
        let p = Pred::cmp_col(0, CmpKind::Gt, 1); // always true here
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        let s = cp.apply(&chunk(), Some(&[0, 2]));
        assert_eq!(s.as_slice(), &[0, 2]);
    }

    #[test]
    fn and_composes_sequentially() {
        let c = ctx();
        let p = Pred::And(vec![
            Pred::cmp_val(0, CmpKind::Gt, Value::I64(15)), // 1,2,3
            Pred::cmp_val(1, CmpKind::Lt, Value::I64(4)),  // 0,1,2
        ]);
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        let s = cp.apply(&chunk(), None);
        assert_eq!(s.as_slice(), &[1, 2]);
    }

    #[test]
    fn or_unions_branches() {
        let c = ctx();
        let p = Pred::Or(vec![
            Pred::cmp_val(0, CmpKind::Le, Value::I64(10)), // 0
            Pred::cmp_val(1, CmpKind::Ge, Value::I64(4)),  // 3
        ]);
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        let s = cp.apply(&chunk(), None);
        assert_eq!(s.as_slice(), &[0, 3]);
    }

    #[test]
    fn str_eq_and_in() {
        let c = ctx();
        let p = Pred::str_eq(3, "MAIL");
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        assert_eq!(cp.apply(&chunk(), None).as_slice(), &[0, 2]);

        let p = Pred::InStr {
            col: 3,
            values: vec!["MAIL".into(), "RAIL".into()],
        };
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        assert_eq!(cp.apply(&chunk(), None).as_slice(), &[0, 2, 3]);
    }

    #[test]
    fn like_predicate() {
        let c = ctx();
        let p = Pred::Like {
            col: 3,
            pattern: "%AIL".into(),
        };
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        assert_eq!(cp.apply(&chunk(), None).as_slice(), &[0, 2, 3]);
        let p = Pred::NotLike {
            col: 3,
            pattern: "%AIL".into(),
        };
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        assert_eq!(cp.apply(&chunk(), None).as_slice(), &[1]);
    }

    #[test]
    fn f64_predicate() {
        let c = ctx();
        let p = Pred::cmp_val(4, CmpKind::Lt, Value::F64(0.3));
        let mut cp = CompiledPred::compile(&p, &types5(), &c, "t").unwrap();
        assert_eq!(cp.apply(&chunk(), None).as_slice(), &[1, 3]);
    }

    #[test]
    fn union_sorted_merges() {
        assert_eq!(union_sorted(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[], &[1]), vec![1]);
        assert_eq!(union_sorted(&[1], &[]), vec![1]);
    }
}
