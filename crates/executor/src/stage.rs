//! Per-stage query profiling (the paper's Table 1).
//!
//! A query run divides into *preprocess* (plan construction, rewriting),
//! *execute* (the pull loop), and *postprocess* (result finalization); inside
//! execute, the share spent in primitive functions is tracked separately.
//! Table 1 shows ~99.9% of the time in execute and ~92% inside primitives —
//! the observation that makes per-call profiling affordable.

/// Tick totals per execution stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageProfile {
    /// Plan construction / operator instantiation.
    pub preprocess: u64,
    /// The pull loop, end to end.
    pub execute: u64,
    /// Ticks inside primitive functions (subset of `execute`).
    pub primitives: u64,
    /// Result assembly after the pull loop.
    pub postprocess: u64,
}

impl StageProfile {
    /// Total ticks across the disjoint stages (primitives are inside
    /// execute, so not added again).
    pub fn total(&self) -> u64 {
        self.preprocess + self.execute + self.postprocess
    }

    /// Percentage of total for each stage, in Table 1 order
    /// (preprocess, execute, primitives, postprocess).
    pub fn percentages(&self) -> [f64; 4] {
        let t = self.total().max(1) as f64;
        [
            self.preprocess as f64 / t * 100.0,
            self.execute as f64 / t * 100.0,
            self.primitives as f64 / t * 100.0,
            self.postprocess as f64 / t * 100.0,
        ]
    }

    /// Renders the Table 1 layout.
    pub fn render(&self) -> String {
        let p = self.percentages();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14} {:>14}\n",
            "stage", "preprocess", "execute", "primitives", "postprocess"
        ));
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14} {:>14}\n",
            "ticks", self.preprocess, self.execute, self.primitives, self.postprocess
        ));
        out.push_str(&format!(
            "{:<12} {:>13.2}% {:>13.2}% {:>13.2}% {:>13.2}%\n",
            "%", p[0], p[1], p[2], p[3]
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_percentages() {
        let s = StageProfile {
            preprocess: 10,
            execute: 970,
            primitives: 900,
            postprocess: 20,
        };
        assert_eq!(s.total(), 1000);
        let p = s.percentages();
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!((p[1] - 97.0).abs() < 1e-9);
        assert!((p[2] - 90.0).abs() < 1e-9);
        assert!((p[3] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn render_contains_all_stages() {
        let s = StageProfile {
            preprocess: 1,
            execute: 2,
            primitives: 1,
            postprocess: 1,
        };
        let txt = s.render();
        for word in ["preprocess", "execute", "primitives", "postprocess"] {
            assert!(txt.contains(word));
        }
    }

    #[test]
    fn zero_profile_does_not_divide_by_zero() {
        let p = StageProfile::default().percentages();
        assert_eq!(p, [0.0; 4]);
    }
}
