#![warn(missing_docs)]
//! # ma-executor — vectorized query executor with Micro Adaptivity
//!
//! A vector-at-a-time pull engine in the Vectorwise architecture (§1):
//! operators exchange [`ma_vector::DataChunk`]s of ~1024 tuples; all data
//! processing happens in primitive functions resolved through the Primitive
//! Dictionary; and the *expression evaluator* ([`eval`]) is the place where
//! the engine — per configuration — either always calls the default flavor,
//! applies hard-coded heuristics (§4.2), or runs a multi-armed bandit per
//! primitive instance (Micro Adaptivity, §3).
//!
//! Operators: [`ops::Scan`], [`ops::Select`], [`ops::Project`],
//! [`ops::HashJoin`] (inner/semi/anti/left-single, bloom-filter
//! accelerated), [`ops::MergeJoin`], [`ops::HashAggregate`],
//! [`ops::StreamAggregate`], [`ops::Sort`], [`ops::Limit`].

pub mod adaptive;
pub mod analyze;
pub mod config;
pub mod cost;
pub mod eval;
pub mod expr;
pub mod frontend;
pub mod heuristics;
#[cfg(test)]
mod model_check;
pub mod ops;
pub mod plan;
pub mod stage;
pub mod verify;

pub use adaptive::{HeurKind, InstanceReport, MemReport, MemTracker, PrimInstance, QueryContext};
pub use analyze::{analyze, AbsDomain, Analysis, AnalysisError, ColFact, Facts};
pub use config::{DecodeMode, ExecConfig, FlavorAxis, FlavorMode};
pub use cost::{cost, CostFinding, CostReport, OpCost};
pub use eval::{CompiledExpr, CompiledPred};
pub use expr::{ArithKind, CmpKind, CmpRhs, Expr, Pred, Value};
pub use ops::{collect, BoxOp, Operator};
pub use plan::{lower, Catalog, LogicalPlan, PlanBuilder, PlanError};
pub use stage::StageProfile;
pub use verify::{sketch, verify, verify_sketch, LaneSketch, PhysSketch, VerifyError};

use ma_vector::TableError;

/// Errors from plan construction and execution.
#[derive(Debug)]
pub enum ExecError {
    /// Malformed plan (type mismatch, bad column index, ...).
    Plan(String),
    /// A primitive signature missing from the dictionary.
    UnknownPrimitive(String),
    /// Storage-level error.
    Table(TableError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Plan(m) => write!(f, "plan error: {m}"),
            ExecError::UnknownPrimitive(s) => write!(f, "unknown primitive: {s}"),
            ExecError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<TableError> for ExecError {
    fn from(e: TableError) -> Self {
        ExecError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(ExecError::Plan("x".into()).to_string().contains("plan"));
        assert!(ExecError::UnknownPrimitive("sig".into())
            .to_string()
            .contains("sig"));
        let t: ExecError = TableError::UnknownColumn("c".into()).into();
        assert!(t.to_string().contains("table error"));
    }
}
