//! Expression and predicate ASTs, as built by query plans.
//!
//! Plans construct these trees; [`crate::eval`] compiles them into chains of
//! primitive instances resolved through the Primitive Dictionary — the point
//! where Micro Adaptivity hooks into execution (§3.2: "the expression
//! evaluator is the component that calls implementation functions for
//! primitives").

use ma_vector::DataType;

/// A constant value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `I16`.
    I16(i16),
    /// `I32`.
    I32(i32),
    /// `I64`.
    I64(i64),
    /// `F64`.
    F64(f64),
    /// `Str`.
    Str(String),
}

impl Value {
    /// The scalar type of the constant.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::I16(_) => DataType::I16,
            Value::I32(_) => DataType::I32,
            Value::I64(_) => DataType::I64,
            Value::F64(_) => DataType::F64,
            Value::Str(_) => DataType::Str,
        }
    }
}

/// Arithmetic operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithKind {
    /// `Add`.
    Add,
    /// `Sub`.
    Sub,
    /// `Mul`.
    Mul,
    /// `Div`.
    Div,
}

impl ArithKind {
    /// Signature fragment (`add`, `sub`, ...).
    pub fn sig_name(self) -> &'static str {
        match self {
            ArithKind::Add => "add",
            ArithKind::Sub => "sub",
            ArithKind::Mul => "mul",
            ArithKind::Div => "div",
        }
    }
}

/// Comparison operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `Lt`.
    Lt,
    /// `Le`.
    Le,
    /// `Gt`.
    Gt,
    /// `Ge`.
    Ge,
    /// `Eq`.
    Eq,
    /// `Ne`.
    Ne,
}

impl CmpKind {
    /// Signature fragment (`lt`, `le`, ...).
    pub fn sig_name(self) -> &'static str {
        match self {
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
        }
    }
}

/// A projection expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Input column by index.
    Col(usize),
    /// A constant (only valid as the rhs of [`Expr::Arith`]; constant
    /// folding happens in the plan builder).
    Const(Value),
    /// Binary arithmetic. Both sides must have the same numeric type
    /// (`i64` or `f64`); insert [`Expr::Cast`]s as needed.
    Arith {
        /// `op`.
        op: ArithKind,
        /// `lhs`.
        lhs: Box<Expr>,
        /// `rhs`.
        rhs: Box<Expr>,
    },
    /// Numeric widening cast.
    Cast {
        /// Target type.
        to: DataType,
        /// The expression being cast.
        inner: Box<Expr>,
    },
    /// `substring(col from start+1 for len)` over a string column
    /// (byte-indexed, `start` is 0-based).
    Substr {
        /// `col`.
        col: usize,
        /// `start`.
        start: usize,
        /// `len`.
        len: usize,
    },
}

#[allow(clippy::should_implement_trait)] // builder fns, not operator impls
impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }
    /// i64 constant.
    pub fn i64(v: i64) -> Expr {
        Expr::Const(Value::I64(v))
    }
    /// f64 constant.
    pub fn f64(v: f64) -> Expr {
        Expr::Const(Value::F64(v))
    }
    /// Arithmetic node.
    pub fn arith(op: ArithKind, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
    /// `lhs + rhs`.
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::arith(ArithKind::Add, lhs, rhs)
    }
    /// `lhs - rhs`.
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::arith(ArithKind::Sub, lhs, rhs)
    }
    /// `lhs * rhs`.
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::arith(ArithKind::Mul, lhs, rhs)
    }
    /// `lhs / rhs`.
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::arith(ArithKind::Div, lhs, rhs)
    }
    /// Cast node.
    pub fn cast(to: DataType, inner: Expr) -> Expr {
        Expr::Cast {
            to,
            inner: Box::new(inner),
        }
    }
}

/// The comparison target of a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum CmpRhs {
    /// Compare against a constant (`col op const` → `_col_val` primitive).
    Const(Value),
    /// Compare against another column (`col op col` → `_col_col`).
    Col(usize),
}

/// A selection predicate tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// `col op rhs`.
    Cmp {
        /// `col`.
        col: usize,
        /// `op`.
        op: CmpKind,
        /// `rhs`.
        rhs: CmpRhs,
    },
    /// `col LIKE pattern`.
    Like {
        /// String column index.
        col: usize,
        /// LIKE pattern text.
        pattern: String,
    },
    /// `col NOT LIKE pattern`.
    NotLike {
        /// String column index.
        col: usize,
        /// LIKE pattern text.
        pattern: String,
    },
    /// `col IN (strings...)` — compiled to an OR of equalities.
    InStr {
        /// String column index.
        col: usize,
        /// Accepted values.
        values: Vec<String>,
    },
    /// Conjunction, evaluated left to right (cheapest/most selective first
    /// is the plan builder's job).
    And(Vec<Pred>),
    /// Disjunction (union of the branch selection vectors).
    Or(Vec<Pred>),
}

impl Pred {
    /// `col op const`.
    pub fn cmp_val(col: usize, op: CmpKind, v: Value) -> Pred {
        Pred::Cmp {
            col,
            op,
            rhs: CmpRhs::Const(v),
        }
    }
    /// `col op col`.
    pub fn cmp_col(col: usize, op: CmpKind, other: usize) -> Pred {
        Pred::Cmp {
            col,
            op,
            rhs: CmpRhs::Col(other),
        }
    }
    /// `lo <= col AND col <= hi` (BETWEEN).
    pub fn between_i32(col: usize, lo: i32, hi: i32) -> Pred {
        Pred::And(vec![
            Pred::cmp_val(col, CmpKind::Ge, Value::I32(lo)),
            Pred::cmp_val(col, CmpKind::Le, Value::I32(hi)),
        ])
    }
    /// `lo <= col AND col <= hi` over i64 (decimals ×100).
    pub fn between_i64(col: usize, lo: i64, hi: i64) -> Pred {
        Pred::And(vec![
            Pred::cmp_val(col, CmpKind::Ge, Value::I64(lo)),
            Pred::cmp_val(col, CmpKind::Le, Value::I64(hi)),
        ])
    }
    /// String equality.
    pub fn str_eq(col: usize, v: impl Into<String>) -> Pred {
        Pred::cmp_val(col, CmpKind::Eq, Value::Str(v.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::I32(1).data_type(), DataType::I32);
        assert_eq!(Value::Str("x".into()).data_type(), DataType::Str);
    }

    #[test]
    fn builders_compose() {
        let e = Expr::mul(Expr::col(0), Expr::sub(Expr::i64(100), Expr::col(1)));
        match e {
            Expr::Arith {
                op: ArithKind::Mul,
                lhs,
                rhs,
            } => {
                assert_eq!(*lhs, Expr::Col(0));
                assert!(matches!(
                    *rhs,
                    Expr::Arith {
                        op: ArithKind::Sub,
                        ..
                    }
                ));
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn between_desugars_to_and() {
        let p = Pred::between_i32(2, 10, 20);
        match p {
            Pred::And(v) => {
                assert_eq!(v.len(), 2);
                assert!(matches!(
                    v[0],
                    Pred::Cmp {
                        op: CmpKind::Ge,
                        ..
                    }
                ));
                assert!(matches!(
                    v[1],
                    Pred::Cmp {
                        op: CmpKind::Le,
                        ..
                    }
                ));
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn sig_names() {
        assert_eq!(ArithKind::Mul.sig_name(), "mul");
        assert_eq!(CmpKind::Ge.sig_name(), "ge");
    }
}
