//! Independent plan-invariant verifier.
//!
//! [`lower`](crate::plan::lower) *establishes* a set of invariants when it
//! turns a [`LogicalPlan`] into a physical pipeline: schemas stay
//! consistent node to node, merge joins only ever see provably key-sorted
//! inputs, order-destroying exchanges never end up under order-sensitive
//! ancestors, partitioned exchanges route both lanes with agreeing keys,
//! and every primitive-instantiating node carries a unique stats label.
//! This module *re-checks* those invariants from scratch, sharing none of
//! the lowering code paths that could hide a common bug:
//!
//! 1. **Logical walk** ([`verify`], first phase): re-derives every node's
//!    output schema bottom-up from expression/aggregate/join typing rules
//!    and compares it against the schema the node declares; re-proves
//!    merge-join input sortedness structurally; enforces stats-label
//!    uniqueness across instantiating nodes; rejects float partition
//!    keys with a typed error instead of a worker-thread panic.
//! 2. **Physical sketch** ([`sketch`] + [`verify_sketch`]): a miniature
//!    IR of the planner's exchange placement ([`PhysSketch`]). `sketch`
//!    mirrors the planner's own verdict functions (sharding, merging,
//!    partition counts) to predict where exchanges go; `verify_sketch`
//!    then walks the sketch with an ordered-context flag and checks the
//!    exchange-placement rules — no [`PhysSketch::Parallel`] or
//!    [`PhysSketch::HashPartition`] under an ordered ancestor outside a
//!    [`PhysSketch::Materialize`] boundary, lanes agree on key
//!    count/class and partition count, no zero-lane consumers, no empty
//!    producer sets, merge keys are single ascending integers.
//!
//! In debug builds [`lower`](crate::plan::lower()) runs [`verify`] on
//! every plan before lowering it, so any test executing a query exercises
//! the verifier for free. Release builds skip it (the checks are pure
//! overhead once a plan shape is proven); CI runs the standalone matrix
//! sweep in `crates/tpch/tests/verify_matrix.rs` across all 22 queries ×
//! worker/partition/vector-size configurations.

use std::collections::HashSet;

use ma_vector::{DataType, Schema};

use crate::config::ExecConfig;
use crate::expr::{CmpRhs, Expr, Pred};
use crate::ops::{AggSpec, JoinKind, ProjItem};
use crate::plan::builder::clustered_key_chain;
use crate::plan::lower::{
    agg_partition_count, child_order, join_partition_count, merge_workers, shard_workers, OrderCtx,
};
use crate::plan::LogicalPlan;

/// A plan invariant violation found by [`verify`] or [`verify_sketch`].
///
/// Every variant names one distinct way a plan can be ill-formed, so
/// tests can assert the *specific* failure and error messages can say
/// precisely what to fix.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// A node referenced a column index outside its input's arity.
    ColumnOutOfRange {
        /// Which node/field referenced the column.
        context: String,
        /// The offending index.
        col: usize,
        /// The input arity it was resolved against.
        arity: usize,
    },
    /// A scan listed a source column its table does not have.
    UnknownScanColumn {
        /// The missing source column name.
        col: String,
    },
    /// A column or expression had the wrong type for its role.
    TypeMismatch {
        /// Which node/field was being checked.
        context: String,
        /// The type the role requires.
        expected: String,
        /// The type actually derived.
        found: DataType,
    },
    /// A node's declared output schema disagrees with the schema the
    /// verifier re-derived from its inputs.
    SchemaMismatch {
        /// Which node was being checked.
        context: String,
        /// The type list the node declares.
        declared: String,
        /// The type list the verifier derived.
        derived: String,
    },
    /// Two primitive-instantiating nodes in one plan share a stats
    /// label, which would silently merge their adaptive statistics.
    DuplicateLabel {
        /// The colliding label.
        label: String,
    },
    /// A merge-join input is not provably sorted by the join key
    /// (neither a clustering-key chain nor a matching ascending sort).
    UnsortedMergeInput {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The join key column on that side.
        key: usize,
    },
    /// A merge-join input is sorted by the join key but *descending* —
    /// the merge scans ascending and would drop matches.
    DescendingMergeKey {
        /// `"left"` or `"right"`.
        side: &'static str,
        /// The join key column on that side.
        key: usize,
    },
    /// A merging exchange was given a composite key; the K-way merge
    /// compares a single column.
    CompositeMergeKey {
        /// Number of key columns found.
        keys: usize,
    },
    /// A merging exchange key is not an integer column.
    NonIntegerMergeKey {
        /// The key's type.
        ty: DataType,
    },
    /// An `f64` column used as a hash-partitioning or join/group key
    /// (float keys don't hash portably and are rejected up front).
    FloatPartitionKey {
        /// Which key of which node.
        context: String,
    },
    /// Two aligned key/value lists have different lengths.
    KeyCountMismatch {
        /// Which node/field pair was being checked.
        context: String,
        /// Length of the first list.
        left: usize,
        /// Length of the second list.
        right: usize,
    },
    /// An order-destroying exchange sits under an order-sensitive
    /// ancestor without a materialization boundary in between.
    OrderViolation {
        /// The offending sketch node (`"Parallel"` or `"HashPartition"`).
        node: &'static str,
    },
    /// Two lanes of one partitioned exchange disagree on a key type
    /// class (after i32/i16 → i64 normalization).
    LaneKeyTypeMismatch {
        /// Index of the disagreeing lane.
        lane: usize,
        /// Key position within the lane.
        pos: usize,
        /// Type class lane 0 routes with.
        expected: DataType,
        /// Type class the disagreeing lane routes with.
        found: DataType,
    },
    /// A lane routes to a different partition count than the exchange's
    /// consumers expect — tuples would be dropped or misrouted.
    PartitionCountMismatch {
        /// Index of the disagreeing lane.
        lane: usize,
        /// The exchange's consumer partition count.
        expected: usize,
        /// The lane's partition count.
        found: usize,
    },
    /// A partitioned exchange with no lanes: its consumers would be fed
    /// by nothing and hang at teardown.
    ZeroLaneConsumer,
    /// A lane with an empty producer set: the partition channels would
    /// close immediately and silently emit nothing.
    EmptyLane {
        /// Index of the empty lane.
        lane: usize,
    },
    /// An exchange with zero workers/partitions.
    EmptyExchange {
        /// The offending sketch node.
        node: &'static str,
    },
    /// The abstract interpreter (phase 3, [`mod@crate::analyze`]) proved a
    /// runtime trap reachable — e.g. an integer division whose divisor
    /// interval contains zero.
    Analysis {
        /// The underlying hazard finding.
        err: crate::analyze::AnalysisError,
    },
    /// The memory/cost pass (phase 4, [`mod@crate::cost`]) proved the
    /// plan's peak resident bytes exceed the configured budget, and
    /// [`crate::ExecConfig::strict_memory`] promotes that finding from a
    /// warning to a rejection.
    MemoryBudget {
        /// Proven whole-query peak bytes.
        peak_bytes: u64,
        /// The configured [`crate::ExecConfig::memory_budget`].
        budget: u64,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::ColumnOutOfRange {
                context,
                col,
                arity,
            } => {
                write!(f, "{context}: column {col} out of range (arity {arity})")
            }
            VerifyError::UnknownScanColumn { col } => {
                write!(f, "scan references column {col} absent from its table")
            }
            VerifyError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            VerifyError::SchemaMismatch {
                context,
                declared,
                derived,
            } => write!(
                f,
                "{context}: declared schema {declared} but derived {derived}"
            ),
            VerifyError::DuplicateLabel { label } => write!(
                f,
                "stats label {label:?} used by more than one primitive-instantiating \
                 node; their adaptive statistics would merge silently"
            ),
            VerifyError::UnsortedMergeInput { side, key } => write!(
                f,
                "{side} merge-join input is not provably sorted by join key column {key}"
            ),
            VerifyError::DescendingMergeKey { side, key } => write!(
                f,
                "{side} merge-join input sorts key column {key} descending; the merge \
                 scans ascending"
            ),
            VerifyError::CompositeMergeKey { keys } => write!(
                f,
                "merging exchange given {keys} key columns; the K-way merge compares \
                 exactly one"
            ),
            VerifyError::NonIntegerMergeKey { ty } => {
                write!(
                    f,
                    "merging exchange key must be an integer column, found {ty}"
                )
            }
            VerifyError::FloatPartitionKey { context } => write!(
                f,
                "{context}: f64 is not a hashable partition key (use an integer or \
                 string column)"
            ),
            VerifyError::KeyCountMismatch {
                context,
                left,
                right,
            } => {
                write!(f, "{context}: {left} vs {right} entries")
            }
            VerifyError::OrderViolation { node } => write!(
                f,
                "{node} exchange under an order-sensitive ancestor would interleave \
                 its outputs in arrival order"
            ),
            VerifyError::LaneKeyTypeMismatch {
                lane,
                pos,
                expected,
                found,
            } => write!(
                f,
                "partition lane {lane} key {pos} routes by {found} while lane 0 \
                 routes by {expected}; equal keys would hash to different partitions"
            ),
            VerifyError::PartitionCountMismatch {
                lane,
                expected,
                found,
            } => write!(
                f,
                "partition lane {lane} routes to {found} partitions but the exchange \
                 has {expected} consumers"
            ),
            VerifyError::ZeroLaneConsumer => {
                write!(
                    f,
                    "partitioned exchange with zero lanes feeds its consumers nothing"
                )
            }
            VerifyError::EmptyLane { lane } => {
                write!(f, "partition lane {lane} has an empty producer set")
            }
            VerifyError::EmptyExchange { node } => {
                write!(f, "{node} exchange with zero workers/partitions")
            }
            VerifyError::Analysis { err } => write!(f, "analysis: {err}"),
            VerifyError::MemoryBudget { peak_bytes, budget } => write!(
                f,
                "proven peak of {peak_bytes} resident bytes exceeds the {budget}-byte \
                 memory budget (strict_memory)"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every invariant of `plan` that [`crate::lower`] relies on:
/// the logical walk (schemas, types, labels, merge-input sortedness),
/// then the physical sketch ([`sketch`] + [`verify_sketch`]) for the
/// exchange placement `cfg` would produce. `Ok(())` means the plan is
/// safe to lower under `cfg`.
pub fn verify(plan: &LogicalPlan, cfg: &ExecConfig) -> Result<(), VerifyError> {
    let mut labels = HashSet::new();
    check_plan(plan, &mut labels)?;
    verify_sketch(&sketch(plan, cfg))?;
    // Phase 3: abstract interpretation. Only *hazards* (reachable traps)
    // fail verification; warnings (possible wraps, checked-panic sum
    // bounds, contradictions) are reported by `crate::analyze::analyze`
    // and the `repro analyze` CLI instead — see
    // `AnalysisError::is_hazard` for the rationale.
    if let Some(err) = crate::analyze::analyze(plan).first_hazard() {
        return Err(VerifyError::Analysis { err: err.clone() });
    }
    // Phase 4: memory/cost bounds. Budget findings are warnings by
    // default (surfaced by `repro analyze` / `repro mem`); under
    // `strict_memory` a plan whose proven peak exceeds the budget is
    // rejected before any operator allocates.
    if cfg.strict_memory {
        let report = crate::cost::cost(plan, cfg);
        if report.peak_bytes > cfg.memory_budget {
            return Err(VerifyError::MemoryBudget {
                peak_bytes: report.peak_bytes,
                budget: cfg.memory_budget,
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// phase 1: the logical walk
// ---------------------------------------------------------------------------

fn is_integer(ty: DataType) -> bool {
    matches!(ty, DataType::I16 | DataType::I32 | DataType::I64)
}

fn fmt_types(types: &[DataType]) -> String {
    let mut s = String::from("(");
    for (i, t) in types.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&t.to_string());
    }
    s.push(')');
    s
}

fn schema_types(schema: &Schema) -> Vec<DataType> {
    schema.fields().iter().map(|f| f.ty).collect()
}

fn col_ty(schema: &Schema, col: usize, context: &str) -> Result<DataType, VerifyError> {
    match schema.fields().get(col) {
        Some(f) => Ok(f.ty),
        None => Err(VerifyError::ColumnOutOfRange {
            context: context.to_string(),
            col,
            arity: schema.fields().len(),
        }),
    }
}

/// Declared-vs-derived output schema comparison (types only: aliases are
/// presentation, types are what operators execute against).
fn expect_schema(
    context: &str,
    declared: &Schema,
    derived: &[DataType],
) -> Result<(), VerifyError> {
    let decl = schema_types(declared);
    if decl != derived {
        return Err(VerifyError::SchemaMismatch {
            context: context.to_string(),
            declared: fmt_types(&decl),
            derived: fmt_types(derived),
        });
    }
    Ok(())
}

/// Stats labels must be unique *per plan* across nodes that instantiate
/// primitives: per-worker/per-partition instances of one node share its
/// label by design (their statistics fold), but two distinct nodes
/// sharing one would merge unrelated bandit state.
fn note_label(labels: &mut HashSet<String>, label: &str) -> Result<(), VerifyError> {
    if !labels.insert(label.to_string()) {
        return Err(VerifyError::DuplicateLabel {
            label: label.to_string(),
        });
    }
    Ok(())
}

/// Re-derives an expression's output type against `input`, enforcing the
/// evaluator's typing rules (same-type numeric arithmetic, numeric-only
/// casts, string-only substr).
fn expr_type(e: &Expr, input: &Schema, context: &str) -> Result<DataType, VerifyError> {
    match e {
        Expr::Col(i) => col_ty(input, *i, context),
        Expr::Const(v) => Ok(v.data_type()),
        Expr::Arith { lhs, rhs, .. } => {
            let lt = expr_type(lhs, input, context)?;
            let rt = expr_type(rhs, input, context)?;
            if lt != rt {
                return Err(VerifyError::TypeMismatch {
                    context: context.to_string(),
                    expected: format!("matching arithmetic operand types (lhs is {lt})"),
                    found: rt,
                });
            }
            if !matches!(lt, DataType::I64 | DataType::F64) {
                return Err(VerifyError::TypeMismatch {
                    context: context.to_string(),
                    expected: "i64 or f64 arithmetic operands".to_string(),
                    found: lt,
                });
            }
            Ok(lt)
        }
        Expr::Cast { to, inner } => {
            let it = expr_type(inner, input, context)?;
            if it == DataType::Str || *to == DataType::Str {
                return Err(VerifyError::TypeMismatch {
                    context: context.to_string(),
                    expected: "numeric cast".to_string(),
                    found: DataType::Str,
                });
            }
            Ok(*to)
        }
        Expr::Substr { col, .. } => {
            let t = col_ty(input, *col, context)?;
            if t != DataType::Str {
                return Err(VerifyError::TypeMismatch {
                    context: context.to_string(),
                    expected: "string column for substr".to_string(),
                    found: t,
                });
            }
            Ok(DataType::Str)
        }
    }
}

/// Checks a predicate tree's column references and type roles against
/// `input`. Constant comparisons only require string/non-string agreement
/// (the evaluator coerces numeric constant widths); column-column
/// comparisons require exact type equality (they resolve to same-type
/// primitives).
fn check_pred(p: &Pred, input: &Schema, context: &str) -> Result<(), VerifyError> {
    match p {
        Pred::Cmp { col, rhs, .. } => {
            let ct = col_ty(input, *col, context)?;
            match rhs {
                CmpRhs::Const(v) => {
                    let vt = v.data_type();
                    if (ct == DataType::Str) != (vt == DataType::Str) {
                        return Err(VerifyError::TypeMismatch {
                            context: context.to_string(),
                            expected: format!("comparison constant compatible with {ct}"),
                            found: vt,
                        });
                    }
                }
                CmpRhs::Col(o) => {
                    let ot = col_ty(input, *o, context)?;
                    if ot != ct {
                        return Err(VerifyError::TypeMismatch {
                            context: context.to_string(),
                            expected: format!("column comparison against {ct}"),
                            found: ot,
                        });
                    }
                }
            }
            Ok(())
        }
        Pred::Like { col, .. } | Pred::NotLike { col, .. } | Pred::InStr { col, .. } => {
            let t = col_ty(input, *col, context)?;
            if t != DataType::Str {
                return Err(VerifyError::TypeMismatch {
                    context: context.to_string(),
                    expected: "string column for LIKE/IN".to_string(),
                    found: t,
                });
            }
            Ok(())
        }
        Pred::And(parts) | Pred::Or(parts) => {
            for part in parts {
                check_pred(part, input, context)?;
            }
            Ok(())
        }
    }
}

/// Re-derives an aggregate's output type and checks its input column's
/// role (integer class for the i64 family, f64 for the f64 family).
fn agg_out_type(spec: &AggSpec, input: &Schema, context: &str) -> Result<DataType, VerifyError> {
    let (col, float) = match spec {
        AggSpec::CountStar => return Ok(DataType::I64),
        AggSpec::SumI64(c) | AggSpec::MinI64(c) | AggSpec::MaxI64(c) => (*c, false),
        AggSpec::SumF64(c) | AggSpec::MinF64(c) | AggSpec::MaxF64(c) => (*c, true),
    };
    let t = col_ty(input, col, context)?;
    if float {
        if t != DataType::F64 {
            return Err(VerifyError::TypeMismatch {
                context: context.to_string(),
                expected: "f64 aggregate input".to_string(),
                found: t,
            });
        }
        Ok(DataType::F64)
    } else {
        if !is_integer(t) {
            return Err(VerifyError::TypeMismatch {
                context: context.to_string(),
                expected: "integer aggregate input".to_string(),
                found: t,
            });
        }
        Ok(DataType::I64)
    }
}

/// A merge-join input must *provably* deliver its key sorted ascending:
/// an explicit sort whose primary key is the join key (descending is its
/// own error — the shape is right, the direction fatal), or a
/// clustering-key chain (the structural proof the builder and the
/// merging exchange share).
fn merge_input_proof(
    side: &'static str,
    plan: &LogicalPlan,
    key: usize,
) -> Result<(), VerifyError> {
    if let LogicalPlan::Sort { keys, .. } = plan {
        return match keys.first() {
            Some(k) if k.col == key && !k.desc => Ok(()),
            Some(k) if k.col == key => Err(VerifyError::DescendingMergeKey { side, key }),
            _ => Err(VerifyError::UnsortedMergeInput { side, key }),
        };
    }
    if clustered_key_chain(plan, key) {
        Ok(())
    } else {
        Err(VerifyError::UnsortedMergeInput { side, key })
    }
}

fn check_plan(plan: &LogicalPlan, labels: &mut HashSet<String>) -> Result<(), VerifyError> {
    match plan {
        LogicalPlan::Scan {
            table,
            cols,
            schema,
            ..
        } => {
            if cols.len() != schema.fields().len() {
                return Err(VerifyError::KeyCountMismatch {
                    context: "scan source columns vs output schema".to_string(),
                    left: cols.len(),
                    right: schema.fields().len(),
                });
            }
            for c in cols {
                if !table.column_names().iter().any(|n| n == c) {
                    return Err(VerifyError::UnknownScanColumn { col: c.clone() });
                }
            }
            Ok(())
        }
        LogicalPlan::Filter {
            input,
            pred,
            label,
            schema,
        } => {
            check_plan(input, labels)?;
            let ctx = format!("filter {label:?}");
            check_pred(pred, input.schema(), &ctx)?;
            expect_schema(&ctx, schema, &schema_types(input.schema()))?;
            note_label(labels, label)
        }
        LogicalPlan::Project {
            input,
            items,
            label,
            schema,
        } => {
            check_plan(input, labels)?;
            let ctx = format!("project {label:?}");
            let mut derived = Vec::with_capacity(items.len());
            let mut instantiates = false;
            for item in items {
                derived.push(match item {
                    ProjItem::Pass(i) => col_ty(input.schema(), *i, &ctx)?,
                    ProjItem::Expr(e) => {
                        instantiates = true;
                        expr_type(e, input.schema(), &ctx)?
                    }
                });
            }
            expect_schema(&ctx, schema, &derived)?;
            // Pass-only projections compile to zero primitive instances,
            // so their label never reaches the stats registry — it can't
            // collide.
            if instantiates {
                note_label(labels, label)?;
            }
            Ok(())
        }
        LogicalPlan::HashAgg {
            input,
            keys,
            aggs,
            label,
            schema,
        } => {
            check_plan(input, labels)?;
            let ctx = format!("hash aggregation {label:?}");
            let mut derived = Vec::with_capacity(keys.len() + aggs.len());
            for (i, &k) in keys.iter().enumerate() {
                let t = col_ty(input.schema(), k, &ctx)?;
                if t == DataType::F64 {
                    return Err(VerifyError::FloatPartitionKey {
                        context: format!("group key {i} of {ctx}"),
                    });
                }
                derived.push(t);
            }
            for a in aggs {
                derived.push(agg_out_type(a, input.schema(), &ctx)?);
            }
            expect_schema(&ctx, schema, &derived)?;
            note_label(labels, label)
        }
        LogicalPlan::StreamAgg {
            input,
            aggs,
            label,
            schema,
        } => {
            check_plan(input, labels)?;
            let ctx = format!("stream aggregation {label:?}");
            let mut derived = Vec::with_capacity(aggs.len());
            for a in aggs {
                derived.push(agg_out_type(a, input.schema(), &ctx)?);
            }
            expect_schema(&ctx, schema, &derived)?;
            note_label(labels, label)
        }
        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            payload,
            kind,
            defaults,
            label,
            schema,
            ..
        } => {
            check_plan(build, labels)?;
            check_plan(probe, labels)?;
            let ctx = format!("hash join {label:?}");
            if build_keys.len() != probe_keys.len() || build_keys.is_empty() {
                return Err(VerifyError::KeyCountMismatch {
                    context: format!("{ctx} build vs probe keys"),
                    left: build_keys.len(),
                    right: probe_keys.len(),
                });
            }
            for (side, keys, schema_in) in [
                ("build", build_keys, build.schema()),
                ("probe", probe_keys, probe.schema()),
            ] {
                for (i, &k) in keys.iter().enumerate() {
                    let t = col_ty(schema_in, k, &ctx)?;
                    if t == DataType::F64 {
                        return Err(VerifyError::FloatPartitionKey {
                            context: format!("{side} key {i} of {ctx}"),
                        });
                    }
                    if !is_integer(t) {
                        return Err(VerifyError::TypeMismatch {
                            context: format!("{side} key {i} of {ctx}"),
                            expected: "integer join key".to_string(),
                            found: t,
                        });
                    }
                }
            }
            let mut payload_types = Vec::with_capacity(payload.len());
            for &p in payload {
                payload_types.push(col_ty(build.schema(), p, &ctx)?);
            }
            if *kind == JoinKind::LeftSingle {
                if defaults.len() != payload.len() {
                    return Err(VerifyError::KeyCountMismatch {
                        context: format!("{ctx} left-single defaults vs payload"),
                        left: defaults.len(),
                        right: payload.len(),
                    });
                }
                for (d, &pt) in defaults.iter().zip(&payload_types) {
                    if d.data_type() != pt {
                        return Err(VerifyError::TypeMismatch {
                            context: format!("{ctx} left-single default"),
                            expected: pt.to_string(),
                            found: d.data_type(),
                        });
                    }
                }
            }
            let mut derived = schema_types(probe.schema());
            match kind {
                JoinKind::Inner | JoinKind::LeftSingle => derived.extend(payload_types),
                JoinKind::Semi | JoinKind::Anti => {}
            }
            expect_schema(&ctx, schema, &derived)?;
            note_label(labels, label)
        }
        LogicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
            payload,
            label,
            schema,
        } => {
            check_plan(left, labels)?;
            check_plan(right, labels)?;
            let ctx = format!("merge join {label:?}");
            for (side, key, schema_in) in [
                ("left", *left_key, left.schema()),
                ("right", *right_key, right.schema()),
            ] {
                let t = col_ty(schema_in, key, &ctx)?;
                if !is_integer(t) {
                    return Err(VerifyError::NonIntegerMergeKey { ty: t });
                }
                let _ = side;
            }
            merge_input_proof("left", left, *left_key)?;
            merge_input_proof("right", right, *right_key)?;
            let mut derived = schema_types(right.schema());
            for &p in payload {
                derived.push(col_ty(left.schema(), p, &ctx)?);
            }
            expect_schema(&ctx, schema, &derived)?;
            note_label(labels, label)
        }
        LogicalPlan::Sort {
            input,
            keys,
            schema,
            ..
        } => {
            check_plan(input, labels)?;
            let ctx = "sort".to_string();
            for k in keys {
                col_ty(input.schema(), k.col, &ctx)?;
            }
            expect_schema(&ctx, schema, &schema_types(input.schema()))
        }
    }
}

// ---------------------------------------------------------------------------
// phase 2: the physical sketch
// ---------------------------------------------------------------------------

/// One routed lane of a [`PhysSketch::HashPartition`] exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSketch {
    /// Producer fragments feeding the lane.
    pub producers: usize,
    /// The types of the columns the lane routes by (raw, before
    /// normalization; [`verify_sketch`] compares *classes*: all integer
    /// widths hash as `i64`).
    pub key_types: Vec<DataType>,
    /// The partition count the lane routes to.
    pub partitions: usize,
    /// The producer-side sub-plan (empty [`PhysSketch::Seq`] when the
    /// producers are inlined scan fragments).
    pub input: PhysSketch,
}

/// A miniature IR of the physical planner's exchange placement, built by
/// [`sketch`] and independently checked by [`verify_sketch`].
///
/// The sketch keeps exactly what the exchange-placement invariants need —
/// where parallelism is introduced, where order is materialized away, and
/// how partitioned lanes route — and drops everything else (predicates,
/// projections, operator internals). It is public so tests can hand-build
/// ill-formed shapes that [`sketch`] itself would never produce and prove
/// [`verify_sketch`] rejects them.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysSketch {
    /// A sequential node: order flows through unchanged.
    Seq {
        /// Child sub-plans (empty at leaves).
        children: Vec<PhysSketch>,
    },
    /// A materialization boundary (sort, aggregate, join build): the
    /// node re-establishes or discards order, so children run unordered.
    Materialize {
        /// Child sub-plans.
        children: Vec<PhysSketch>,
    },
    /// An order-sensitive consumer (merge join): children must preserve
    /// key order.
    Ordered {
        /// Child sub-plans.
        children: Vec<PhysSketch>,
    },
    /// A morsel-sharded scan chain united in arrival order.
    Parallel {
        /// Worker fragment count.
        workers: usize,
    },
    /// A morsel-sharded scan chain re-merged into key order.
    Merge {
        /// Producer fragment count.
        producers: usize,
        /// Merge key columns (must be exactly one).
        key_cols: Vec<usize>,
        /// Merge key types (must be integer).
        key_types: Vec<DataType>,
    },
    /// A hash-partitioned exchange: lanes route producer tuples by key
    /// hash to `partitions` private consumers.
    HashPartition {
        /// Consumer partition count.
        partitions: usize,
        /// Routed input lanes (one for aggregation, two for join
        /// build/probe).
        lanes: Vec<LaneSketch>,
    },
}

/// Predicts the exchange placement [`crate::lower`] would produce for
/// `plan` under `cfg`, using the planner's own verdict functions (shard/
/// merge worker counts, aggregate/join partition counts) over a fresh
/// tree walk. Feed the result to [`verify_sketch`].
pub fn sketch(plan: &LogicalPlan, cfg: &ExecConfig) -> PhysSketch {
    sketch_node(plan, cfg, OrderCtx::Free)
}

/// Lane producer count + producer-side sub-sketch, mirroring the
/// planner's `lane_producers`: inlined worker fragments when the input
/// shards, one serially-lowered producer otherwise.
fn lane_sketch(
    input: &LogicalPlan,
    keys: &[usize],
    cfg: &ExecConfig,
    partitions: usize,
) -> LaneSketch {
    let key_types = keys
        .iter()
        .map(|&k| {
            input
                .schema()
                .fields()
                .get(k)
                .map_or(DataType::I64, |f| f.ty)
        })
        .collect();
    let workers = shard_workers(input, cfg);
    if workers >= 2 {
        LaneSketch {
            producers: workers,
            key_types,
            partitions,
            input: PhysSketch::Seq { children: vec![] },
        }
    } else {
        LaneSketch {
            producers: 1,
            key_types,
            partitions,
            input: sketch_node(input, cfg, OrderCtx::Free),
        }
    }
}

fn sketch_node(plan: &LogicalPlan, cfg: &ExecConfig, order: OrderCtx) -> PhysSketch {
    // Exchange introduction mirrors `lower_node`'s order match: a free
    // pipeline shards into an arrival-order union, an ordered pipeline
    // shards behind a merging exchange when the key provably carries the
    // clustering order, and pinned pipelines stay sequential.
    match order {
        OrderCtx::Free => {
            let workers = shard_workers(plan, cfg);
            if workers >= 2 {
                return PhysSketch::Parallel { workers };
            }
        }
        OrderCtx::Key(key) => {
            let producers = merge_workers(plan, key, cfg);
            if producers >= 2 {
                let ty = plan
                    .schema()
                    .fields()
                    .get(key)
                    .map_or(DataType::I64, |f| f.ty);
                return PhysSketch::Merge {
                    producers,
                    key_cols: vec![key],
                    key_types: vec![ty],
                };
            }
        }
        OrderCtx::Pinned => {}
    }
    match plan {
        LogicalPlan::Scan { .. } => PhysSketch::Seq { children: vec![] },
        LogicalPlan::Filter { input, .. } | LogicalPlan::Project { input, .. } => PhysSketch::Seq {
            children: vec![sketch_node(input, cfg, child_order(plan, 0, order))],
        },
        LogicalPlan::HashAgg { input, keys, .. } => {
            let partitions = if order == OrderCtx::Free {
                agg_partition_count(input, keys, cfg)
            } else {
                1
            };
            if partitions >= 2 {
                PhysSketch::HashPartition {
                    partitions,
                    lanes: vec![lane_sketch(input, keys, cfg, partitions)],
                }
            } else {
                PhysSketch::Materialize {
                    children: vec![sketch_node(input, cfg, child_order(plan, 0, order))],
                }
            }
        }
        LogicalPlan::StreamAgg { input, .. } => PhysSketch::Materialize {
            children: vec![sketch_node(input, cfg, child_order(plan, 0, order))],
        },
        LogicalPlan::HashJoin {
            build,
            probe,
            build_keys,
            probe_keys,
            ..
        } => {
            let partitions = if order == OrderCtx::Free {
                join_partition_count(build, probe, cfg)
            } else {
                1
            };
            if partitions >= 2 {
                PhysSketch::HashPartition {
                    partitions,
                    lanes: vec![
                        lane_sketch(build, build_keys, cfg, partitions),
                        lane_sketch(probe, probe_keys, cfg, partitions),
                    ],
                }
            } else {
                PhysSketch::Seq {
                    children: vec![
                        PhysSketch::Materialize {
                            children: vec![sketch_node(build, cfg, child_order(plan, 0, order))],
                        },
                        sketch_node(probe, cfg, child_order(plan, 1, order)),
                    ],
                }
            }
        }
        LogicalPlan::MergeJoin { left, right, .. } => PhysSketch::Ordered {
            children: vec![
                sketch_node(left, cfg, child_order(plan, 0, order)),
                sketch_node(right, cfg, child_order(plan, 1, order)),
            ],
        },
        LogicalPlan::Sort { input, .. } => PhysSketch::Materialize {
            children: vec![sketch_node(input, cfg, child_order(plan, 0, order))],
        },
    }
}

/// Checks a physical sketch's exchange-placement invariants: no
/// order-destroying exchange ([`PhysSketch::Parallel`],
/// [`PhysSketch::HashPartition`]) under an order-sensitive ancestor
/// without an intervening [`PhysSketch::Materialize`]; merging exchanges
/// carry exactly one ascending integer key; partitioned lanes agree on
/// key count, key type class (i16/i32 hash as i64) and partition count;
/// and no exchange is degenerate (zero lanes, empty producer sets, zero
/// workers/partitions).
pub fn verify_sketch(s: &PhysSketch) -> Result<(), VerifyError> {
    walk_sketch(s, false)
}

fn key_class(ty: DataType) -> DataType {
    match ty {
        DataType::I16 | DataType::I32 | DataType::I64 => DataType::I64,
        other => other,
    }
}

fn walk_sketch(s: &PhysSketch, ordered: bool) -> Result<(), VerifyError> {
    match s {
        PhysSketch::Seq { children } => {
            for c in children {
                walk_sketch(c, ordered)?;
            }
            Ok(())
        }
        PhysSketch::Materialize { children } => {
            for c in children {
                walk_sketch(c, false)?;
            }
            Ok(())
        }
        PhysSketch::Ordered { children } => {
            for c in children {
                walk_sketch(c, true)?;
            }
            Ok(())
        }
        PhysSketch::Parallel { workers } => {
            if ordered {
                return Err(VerifyError::OrderViolation { node: "Parallel" });
            }
            if *workers == 0 {
                return Err(VerifyError::EmptyExchange { node: "Parallel" });
            }
            Ok(())
        }
        PhysSketch::Merge {
            producers,
            key_cols,
            key_types,
        } => {
            if *producers == 0 {
                return Err(VerifyError::EmptyExchange { node: "Merge" });
            }
            if key_cols.len() != 1 {
                return Err(VerifyError::CompositeMergeKey {
                    keys: key_cols.len(),
                });
            }
            for &t in key_types {
                if !is_integer(t) {
                    return Err(VerifyError::NonIntegerMergeKey { ty: t });
                }
            }
            Ok(())
        }
        PhysSketch::HashPartition { partitions, lanes } => {
            if ordered {
                return Err(VerifyError::OrderViolation {
                    node: "HashPartition",
                });
            }
            if lanes.is_empty() {
                return Err(VerifyError::ZeroLaneConsumer);
            }
            if *partitions == 0 {
                return Err(VerifyError::EmptyExchange {
                    node: "HashPartition",
                });
            }
            let lane0 = &lanes[0].key_types;
            for (i, lane) in lanes.iter().enumerate() {
                if lane.producers == 0 {
                    return Err(VerifyError::EmptyLane { lane: i });
                }
                if lane.partitions != *partitions {
                    return Err(VerifyError::PartitionCountMismatch {
                        lane: i,
                        expected: *partitions,
                        found: lane.partitions,
                    });
                }
                if lane.key_types.len() != lane0.len() {
                    return Err(VerifyError::KeyCountMismatch {
                        context: format!("partition lane {i} key columns vs lane 0"),
                        left: lane.key_types.len(),
                        right: lane0.len(),
                    });
                }
                for (j, (&t, &t0)) in lane.key_types.iter().zip(lane0).enumerate() {
                    if t == DataType::F64 {
                        return Err(VerifyError::FloatPartitionKey {
                            context: format!("partition lane {i} key {j}"),
                        });
                    }
                    if key_class(t) != key_class(t0) {
                        return Err(VerifyError::LaneKeyTypeMismatch {
                            lane: i,
                            pos: j,
                            expected: key_class(t0),
                            found: key_class(t),
                        });
                    }
                }
                walk_sketch(&lane.input, false)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{col, count, sum_i64, NamedPred, PlanBuilder};
    use crate::{CmpKind, Value};
    use ma_vector::{ColumnBuilder, Table};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
        let mut id = ColumnBuilder::with_capacity(DataType::I64, rows);
        let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
        let mut f = ColumnBuilder::with_capacity(DataType::F64, rows);
        for i in 0..rows {
            id.push_i64(i as i64);
            k.push_i32((i % 7) as i32);
            f.push_f64(i as f64 * 0.5);
        }
        let t = Arc::new(
            Table::new(
                "t",
                vec![
                    ("id".into(), id.finish()),
                    ("k".into(), k.finish()),
                    ("f".into(), f.finish()),
                ],
            )
            .unwrap(),
        );
        let mut c = HashMap::new();
        c.insert("t".to_string(), t);
        c
    }

    fn cfg(workers: usize) -> ExecConfig {
        let mut cfg = ExecConfig::fixed_default();
        cfg.worker_threads = workers;
        cfg
    }

    #[test]
    fn builder_plans_verify_across_worker_counts() {
        let c = catalog(40_000);
        for workers in [1, 2, 4] {
            let plan = PlanBuilder::scan(&c, "t", &["k", "id"])
                .filter(NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(5)), "sel")
                .hash_agg(&["k"], vec![count(), sum_i64("id")], "agg")
                .sort(&[crate::plan::asc("k")])
                .build()
                .unwrap();
            verify(&plan, &cfg(workers)).unwrap();
        }
    }

    #[test]
    fn sharded_agg_sketches_as_partition_exchange() {
        let c = catalog(40_000);
        let plan = PlanBuilder::scan(&c, "t", &["k", "id"])
            .hash_agg(&["k"], vec![count()], "agg")
            .build()
            .unwrap();
        let s = sketch(&plan, &cfg(4));
        match &s {
            PhysSketch::HashPartition { partitions, lanes } => {
                assert_eq!(*partitions, 4);
                assert_eq!(lanes.len(), 1);
                assert_eq!(lanes[0].producers, 4);
                assert_eq!(lanes[0].key_types, vec![DataType::I32]);
            }
            other => panic!("expected HashPartition, got {other:?}"),
        }
        verify_sketch(&s).unwrap();
    }

    #[test]
    fn single_worker_sketch_is_sequential() {
        let c = catalog(40_000);
        let plan = PlanBuilder::scan(&c, "t", &["k", "id"])
            .hash_agg(&["k"], vec![count()], "agg")
            .build()
            .unwrap();
        assert_eq!(
            sketch(&plan, &cfg(1)),
            PhysSketch::Materialize {
                children: vec![PhysSketch::Seq { children: vec![] }]
            }
        );
    }

    #[test]
    fn merge_join_over_clustered_scans_sketches_merges() {
        let c = catalog(40_000);
        let left = PlanBuilder::scan(&c, "t", &["id", "k"]);
        let plan = PlanBuilder::scan(&c, "t", &["id as rid"])
            .merge_join(left, ("rid", "id"), &["k"], "mj")
            .build()
            .unwrap();
        let s = sketch(&plan, &cfg(4));
        match &s {
            PhysSketch::Ordered { children } => {
                for child in children {
                    assert!(
                        matches!(child, PhysSketch::Merge { producers: 4, .. }),
                        "expected Merge under Ordered, got {child:?}"
                    );
                }
            }
            other => panic!("expected Ordered, got {other:?}"),
        }
        verify(&plan, &cfg(4)).unwrap();
    }

    #[test]
    fn float_group_key_is_typed_error() {
        let c = catalog(100);
        let plan = PlanBuilder::scan(&c, "t", &["f", "id"])
            .hash_agg(&["f"], vec![count()], "agg")
            .build();
        // The builder already rejects this; hand-build the node to prove
        // the verifier independently catches it.
        drop(plan);
        let base = PlanBuilder::scan(&c, "t", &["f", "id"]).build().unwrap();
        let schema = Schema::new(vec![
            ma_vector::Field::new("f", DataType::F64),
            ma_vector::Field::new("n", DataType::I64),
        ]);
        let bad = LogicalPlan::HashAgg {
            input: Box::new(base),
            keys: vec![0],
            aggs: vec![AggSpec::CountStar],
            label: "agg".into(),
            schema,
        };
        let err = verify(&bad, &cfg(1)).unwrap_err();
        assert!(
            matches!(err, VerifyError::FloatPartitionKey { .. }),
            "{err}"
        );
    }

    #[test]
    fn projected_merge_key_still_verifies() {
        let c = catalog(40_000);
        let left = PlanBuilder::scan(&c, "t", &["id", "k"])
            .project(vec![("id", col("id")), ("k", col("k"))], "keep");
        let plan = PlanBuilder::scan(&c, "t", &["id as rid"])
            .merge_join(left, ("rid", "id"), &["k"], "mj")
            .build()
            .unwrap();
        verify(&plan, &cfg(4)).unwrap();
    }
}
