//! Exhaustive-interleaving model checker for the exchange teardown
//! protocol (test builds only).
//!
//! DESIGN.md §8 hand-argues that the unified exchange core cannot
//! deadlock, lose a wakeup, or drop tuples across its three teardown
//! paths (normal completion, early consumer drop, mid-stream producer
//! error). This module *checks* those arguments: it runs the identical
//! [`UnionCore`] code — the same `next()`/`Drop`/`run_worker` logic
//! production executes — on a model runtime ([`ModelRt`]) whose channel
//! and thread operations are serialized by a cooperative scheduler, then
//! enumerates the schedule tree by depth-first search over the choice
//! points (CHESS-style, with a preemption bound to keep the tree
//! tractable).
//!
//! Mechanics: model threads are real OS threads, but at most one is ever
//! *runnable* — every visible operation (send, receive, channel-half
//! drop, join, thread exit) first parks the thread on the scheduler,
//! which picks the next thread to run. Recording the picks gives a
//! deterministic replayable trace; backtracking over the last
//! not-fully-explored pick enumerates all distinct schedules. A state
//! where no thread is runnable but some are blocked is a deadlock (a
//! lost wakeup manifests exactly this way: the sleeping thread is never
//! made runnable again) and fails the run with the blocked set named.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::ops::xrt::{Rt, RtJoinHandle, RtReceiver, RtSender};

// ---------------------------------------------------------------------------
// scheduler
// ---------------------------------------------------------------------------

/// Why a thread is parked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Wait {
    /// Blocked sending on a full channel.
    SendFull(usize),
    /// Blocked receiving on an empty channel.
    RecvEmpty(usize),
    /// Blocked joining a thread.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TStatus {
    Runnable,
    Blocked(Wait),
    Finished,
}

/// One bounded channel's model state. Payloads are type-erased so a
/// single scheduler owns every channel of a run.
struct ChanState {
    queue: VecDeque<Box<dyn Any + Send>>,
    cap: usize,
    senders: usize,
    rx_alive: bool,
}

/// One recorded scheduling decision: `chosen` indexes the (deterministic)
/// candidate list of length `options`.
#[derive(Clone, Copy)]
struct Choice {
    options: usize,
    chosen: usize,
}

struct SchedState {
    threads: Vec<TStatus>,
    channels: Vec<ChanState>,
    /// The thread currently holding the run token.
    cur: Option<usize>,
    /// The thread that performed the previous step (preemption tracking).
    last: Option<usize>,
    /// Decisions to replay from a previous run, then extend.
    prefix: Vec<usize>,
    trace: Vec<Choice>,
    steps: usize,
    preemptions: usize,
    /// Fatal model failure (deadlock, step-cap blowout); every parked
    /// thread panics with this message.
    failure: Option<String>,
}

struct Sched {
    state: Mutex<SchedState>,
    cv: Condvar,
    preemption_bound: usize,
    max_steps: usize,
}

thread_local! {
    /// The scheduler of the run this thread belongs to.
    static CURRENT: RefCell<Option<Arc<Sched>>> = const { RefCell::new(None) };
    /// This thread's id within the run.
    static TID: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn current_sched() -> Arc<Sched> {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("model runtime used outside explore()")
    })
}

impl Sched {
    fn new(prefix: Vec<usize>, preemption_bound: usize, max_steps: usize) -> Sched {
        Sched {
            state: Mutex::new(SchedState {
                // tid 0 is the main (consumer) thread, runnable and
                // holding the token.
                threads: vec![TStatus::Runnable],
                channels: Vec::new(),
                cur: Some(0),
                last: Some(0),
                prefix,
                trace: Vec::new(),
                steps: 0,
                preemptions: 0,
                failure: None,
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_steps,
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        // A panicking model thread may poison the mutex; the state is
        // still consistent (all mutations are single-step).
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Picks the next thread to run. Called by the thread giving up the
    /// token (after marking its own status).
    fn choose_next(&self, st: &mut SchedState) {
        if st.failure.is_some() {
            self.cv.notify_all();
            return;
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.failure = Some(format!("step cap {} exceeded", self.max_steps));
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TStatus::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let blocked: Vec<(usize, Wait)> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    TStatus::Blocked(w) => Some((i, *w)),
                    _ => None,
                })
                .collect();
            if blocked.is_empty() {
                // Every thread finished: the run is over.
                st.cur = None;
            } else {
                st.failure = Some(format!("deadlock: all live threads blocked {blocked:?}"));
            }
            self.cv.notify_all();
            return;
        }
        // Preemption bound: once spent, keep running the previous thread
        // whenever it still can run (CHESS-style schedule pruning).
        let options = if st.preemptions >= self.preemption_bound
            && st.last.is_some_and(|l| runnable.contains(&l))
        {
            vec![st.last.expect("checked")]
        } else {
            runnable.clone()
        };
        let chosen_idx = st.prefix.get(st.trace.len()).copied().unwrap_or(0);
        let chosen_idx = chosen_idx.min(options.len() - 1);
        let chosen = options[chosen_idx];
        st.trace.push(Choice {
            options: options.len(),
            chosen: chosen_idx,
        });
        if st
            .last
            .is_some_and(|l| l != chosen && runnable.contains(&l))
        {
            st.preemptions += 1;
        }
        st.last = Some(chosen);
        st.cur = Some(chosen);
        self.cv.notify_all();
    }

    /// Parks until this thread holds the token (or the run failed).
    fn wait_for_token<'a>(
        &'a self,
        tid: usize,
        mut st: MutexGuard<'a, SchedState>,
    ) -> MutexGuard<'a, SchedState> {
        loop {
            if let Some(msg) = &st.failure {
                let msg = msg.clone();
                drop(st);
                panic!("model check failed: {msg}");
            }
            if st.cur == Some(tid) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A visible-operation boundary: offer the scheduler a chance to run
    /// any other thread before this one proceeds.
    fn op_point(&self, tid: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.cur, Some(tid), "op_point without the token");
        self.choose_next(&mut st);
        let st = self.wait_for_token(tid, st);
        drop(st);
    }

    /// Parks the token-holding thread as blocked and hands the token on;
    /// returns when the thread has been woken *and* rescheduled.
    fn block_on<'a>(
        &'a self,
        tid: usize,
        wait: Wait,
        mut st: MutexGuard<'a, SchedState>,
    ) -> MutexGuard<'a, SchedState> {
        st.threads[tid] = TStatus::Blocked(wait);
        self.choose_next(&mut st);
        self.wait_for_token(tid, st)
    }

    /// Makes every thread blocked on `wait` runnable again.
    fn wake(st: &mut SchedState, wait: Wait) {
        for s in &mut st.threads {
            if *s == TStatus::Blocked(wait) {
                *s = TStatus::Runnable;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// the model runtime
// ---------------------------------------------------------------------------

/// The model runtime: same trait surface as `StdRt`, every operation a
/// scheduler-visible step.
pub(crate) struct ModelRt;

pub(crate) struct ModelSender<T> {
    sched: Arc<Sched>,
    cid: usize,
    _p: std::marker::PhantomData<fn(T)>,
}

pub(crate) struct ModelReceiver<T> {
    sched: Arc<Sched>,
    cid: usize,
    _p: std::marker::PhantomData<fn(T)>,
}

pub(crate) struct ModelJoin {
    sched: Arc<Sched>,
    target: usize,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> Clone for ModelSender<T> {
    fn clone(&self) -> Self {
        let mut st = self.sched.lock();
        st.channels[self.cid].senders += 1;
        drop(st);
        ModelSender {
            sched: Arc::clone(&self.sched),
            cid: self.cid,
            _p: std::marker::PhantomData,
        }
    }
}

impl<T> Drop for ModelSender<T> {
    fn drop(&mut self) {
        let mut st = self.sched.lock();
        if st.failure.is_some() {
            return;
        }
        let ch = &mut st.channels[self.cid];
        ch.senders -= 1;
        if ch.senders == 0 {
            // Last sender gone: a receiver blocked on empty must wake to
            // observe the hangup.
            Sched::wake(&mut st, Wait::RecvEmpty(self.cid));
        }
    }
}

impl<T> Drop for ModelReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.sched.lock();
        if st.failure.is_some() {
            return;
        }
        st.channels[self.cid].rx_alive = false;
        // Senders blocked on full must wake to observe the hangup — the
        // exact lost-wakeup hazard the early-drop teardown path risks.
        Sched::wake(&mut st, Wait::SendFull(self.cid));
    }
}

impl<T: Send + 'static> RtSender<T> for ModelSender<T> {
    fn send(&self, msg: T) -> Result<(), T> {
        let tid = TID.with(Cell::get);
        self.sched.op_point(tid);
        let mut st = self.sched.lock();
        loop {
            let ch = &mut st.channels[self.cid];
            if !ch.rx_alive {
                return Err(msg);
            }
            if ch.queue.len() < ch.cap {
                ch.queue.push_back(Box::new(msg));
                Sched::wake(&mut st, Wait::RecvEmpty(self.cid));
                return Ok(());
            }
            st = self.sched.block_on(tid, Wait::SendFull(self.cid), st);
        }
    }
}

impl<T: Send + 'static> RtReceiver<T> for ModelReceiver<T> {
    fn recv(&self) -> Result<T, ()> {
        let tid = TID.with(Cell::get);
        self.sched.op_point(tid);
        let mut st = self.sched.lock();
        loop {
            let ch = &mut st.channels[self.cid];
            if let Some(b) = ch.queue.pop_front() {
                Sched::wake(&mut st, Wait::SendFull(self.cid));
                let msg = *b.downcast::<T>().expect("channel payload type");
                return Ok(msg);
            }
            if ch.senders == 0 {
                return Err(());
            }
            st = self.sched.block_on(tid, Wait::RecvEmpty(self.cid), st);
        }
    }
}

impl RtJoinHandle for ModelJoin {
    fn join(mut self) -> std::thread::Result<()> {
        let tid = TID.with(Cell::get);
        self.sched.op_point(tid);
        let mut st = self.sched.lock();
        while st.threads[self.target] != TStatus::Finished {
            st = self.sched.block_on(tid, Wait::Join(self.target), st);
        }
        drop(st);
        // The OS thread is past its finish-guard; reap its panic payload.
        self.os.take().expect("joined once").join()
    }
}

/// Marks the thread finished and hands the token on — runs on unwind
/// too, so a panicking model thread cannot wedge the schedule.
struct FinishGuard {
    sched: Arc<Sched>,
    tid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        let mut st = self.sched.lock();
        self.sched.cv.notify_all();
        st.threads[self.tid] = TStatus::Finished;
        Sched::wake(&mut st, Wait::Join(self.tid));
        self.sched.choose_next(&mut st);
    }
}

impl Rt for ModelRt {
    type Sender<T: Send + 'static> = ModelSender<T>;
    type Receiver<T: Send + 'static> = ModelReceiver<T>;
    type JoinHandle = ModelJoin;

    fn sync_channel<T: Send + 'static>(bound: usize) -> (Self::Sender<T>, Self::Receiver<T>) {
        let sched = current_sched();
        let cid = {
            let mut st = sched.lock();
            st.channels.push(ChanState {
                queue: VecDeque::new(),
                cap: bound.max(1),
                senders: 1,
                rx_alive: true,
            });
            st.channels.len() - 1
        };
        (
            ModelSender {
                sched: Arc::clone(&sched),
                cid,
                _p: std::marker::PhantomData,
            },
            ModelReceiver {
                sched,
                cid,
                _p: std::marker::PhantomData,
            },
        )
    }

    fn spawn<F: FnOnce() + Send + 'static>(f: F) -> Self::JoinHandle {
        let sched = current_sched();
        let tid = {
            let mut st = sched.lock();
            st.threads.push(TStatus::Runnable);
            st.threads.len() - 1
        };
        let child_sched = Arc::clone(&sched);
        let os = std::thread::spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&child_sched)));
            TID.with(|t| t.set(tid));
            let _guard = FinishGuard {
                sched: Arc::clone(&child_sched),
                tid,
            };
            // Wait to be scheduled for the first time.
            let st = child_sched.lock();
            let st = child_sched.wait_for_token(tid, st);
            drop(st);
            f();
        });
        ModelJoin {
            sched,
            target: tid,
            os: Some(os),
        }
    }
}

// ---------------------------------------------------------------------------
// exploration driver
// ---------------------------------------------------------------------------

/// Exploration statistics for one scenario.
pub(crate) struct ExploreStats {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Scheduling decisions across all schedules.
    pub steps: usize,
    /// Whether the bounded schedule tree was exhausted (vs. capped).
    pub exhausted: bool,
}

/// Runs `scenario` under every schedule of the bounded tree (depth-first,
/// `preemption_bound` extra context switches, at most `max_schedules`
/// runs). The scenario runs on the calling thread as model thread 0 and
/// must leave every spawned model thread finished when it returns.
pub(crate) fn explore(
    preemption_bound: usize,
    max_schedules: usize,
    scenario: impl Fn(),
) -> ExploreStats {
    let mut prefix: Vec<usize> = Vec::new();
    let mut stats = ExploreStats {
        schedules: 0,
        steps: 0,
        exhausted: false,
    };
    loop {
        let sched = Arc::new(Sched::new(prefix.clone(), preemption_bound, 20_000));
        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&sched)));
        TID.with(|t| t.set(0));
        scenario();
        CURRENT.with(|c| *c.borrow_mut() = None);
        let st = sched.lock();
        assert!(
            st.failure.is_none(),
            "model check failed: {}",
            st.failure.as_deref().unwrap_or("")
        );
        assert!(
            st.threads[1..].iter().all(|s| *s == TStatus::Finished),
            "scenario leaked model threads: {:?}",
            st.threads
        );
        stats.schedules += 1;
        stats.steps += st.steps;
        let trace: Vec<Choice> = st.trace.clone();
        drop(st);
        drop(sched);
        // DFS backtrack: bump the deepest decision with an unexplored
        // sibling, drop everything after it.
        let Some(k) = trace.iter().rposition(|c| c.chosen + 1 < c.options) else {
            stats.exhausted = true;
            break;
        };
        prefix = trace[..k].iter().map(|c| c.chosen).collect();
        prefix.push(trace[k].chosen + 1);
        if stats.schedules >= max_schedules {
            break;
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// scenarios
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::exchange::UnionCore;
    use crate::ops::{BoxOp, Operator};
    use crate::ExecError;
    use ma_vector::{DataChunk, DataType, Vector};

    /// Emits `emit` single-value chunks (value = `base + i`), then ends —
    /// or errors after the last chunk when `fail` is set.
    struct Script {
        base: i64,
        emit: i64,
        sent: i64,
        fail: bool,
        types: Vec<DataType>,
    }

    impl Script {
        fn new(base: i64, emit: i64, fail: bool) -> Script {
            Script {
                base,
                emit,
                sent: 0,
                fail,
                types: vec![DataType::I64],
            }
        }
    }

    impl Operator for Script {
        fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
            if self.sent == self.emit {
                self.sent += 1;
                return if self.fail {
                    Err(ExecError::Plan("injected model error".into()))
                } else {
                    Ok(None)
                };
            }
            if self.sent > self.emit {
                return Ok(None);
            }
            let v = self.base + self.sent;
            self.sent += 1;
            Ok(Some(DataChunk::new(vec![std::sync::Arc::new(
                Vector::I64(vec![v]),
            )])))
        }

        fn out_types(&self) -> &[DataType] {
            &self.types
        }
    }

    fn producers(counts: &[(i64, i64, bool)]) -> Vec<BoxOp> {
        counts
            .iter()
            .map(|&(base, emit, fail)| Box::new(Script::new(base, emit, fail)) as BoxOp)
            .collect()
    }

    /// Normal completion: across every schedule, the consumer sees each
    /// produced tuple exactly once and then a clean end-of-stream.
    #[test]
    fn model_check_union_normal_completion_loses_no_tuples() {
        // 2 producers × 9 chunks: two batched sends each (batch size 8),
        // enough to fill the depth-2-per-worker channel under some
        // schedules and exercise the blocking send path.
        let stats = explore(3, 4000, || {
            let mut union =
                UnionCore::<ModelRt>::spawn(producers(&[(0, 9, false), (100, 9, false)]));
            let mut got: Vec<i64> = Vec::new();
            while let Some(chunk) = union.next().expect("no error in this scenario") {
                for p in chunk.live_positions() {
                    got.push(chunk.column(0).as_i64()[p]);
                }
            }
            assert!(union.next().expect("terminal").is_none());
            got.sort_unstable();
            let want: Vec<i64> = (0..9).chain(100..109).collect();
            assert_eq!(got, want, "tuple loss or duplication");
        });
        eprintln!(
            "explored {} schedules (exhausted: {})",
            stats.schedules, stats.exhausted
        );
        assert!(stats.schedules >= 300, "only {} schedules", stats.schedules);
    }

    /// Early consumer drop: the union is dropped mid-stream; under every
    /// schedule the producers must unblock and exit (a lost hangup
    /// wakeup would deadlock and fail the run).
    #[test]
    fn model_check_union_early_drop_terminates_all_workers() {
        let stats = explore(3, 4000, || {
            let mut union =
                UnionCore::<ModelRt>::spawn(producers(&[(0, 17, false), (100, 17, false)]));
            // Take one batch, then hang up with both producers still busy.
            let first = union.next().expect("first batch");
            assert!(first.is_some());
            drop(union);
        });
        eprintln!(
            "explored {} schedules (exhausted: {})",
            stats.schedules, stats.exhausted
        );
        assert!(stats.schedules >= 300, "only {} schedules", stats.schedules);
    }

    /// Mid-stream producer error: the error surfaces exactly once, the
    /// stream is terminal afterwards, and the surviving producer's
    /// remaining output is discarded — never interleaved after the error.
    #[test]
    fn model_check_union_error_is_terminal_under_all_schedules() {
        let stats = explore(2, 4000, || {
            let mut union =
                UnionCore::<ModelRt>::spawn(producers(&[(0, 2, true), (100, 9, false)]));
            let mut saw_error = false;
            loop {
                match union.next() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        assert!(e.to_string().contains("injected model error"));
                        saw_error = true;
                        // Terminal: the stream never resumes.
                        assert!(union.next().expect("terminal").is_none());
                        assert!(union.next().expect("terminal").is_none());
                        break;
                    }
                }
            }
            assert!(saw_error, "the producer error must surface");
        });
        eprintln!(
            "explored {} schedules (exhausted: {})",
            stats.schedules, stats.exhausted
        );
        assert!(stats.schedules >= 100, "only {} schedules", stats.schedules);
    }

    /// A small configuration explored to exhaustion: the bounded schedule
    /// tree is finite and fully enumerated, so the three properties above
    /// hold for *every* bounded-preemption schedule, not a sample.
    #[test]
    fn model_check_union_small_config_exhausts_schedule_tree() {
        let stats = explore(2, 50_000, || {
            let mut union =
                UnionCore::<ModelRt>::spawn(producers(&[(0, 2, false), (100, 2, false)]));
            let mut n = 0;
            while let Some(chunk) = union.next().expect("no error") {
                n += chunk.live_count();
            }
            assert_eq!(n, 4);
        });
        assert!(
            stats.exhausted,
            "expected exhaustive exploration, capped at {}",
            stats.schedules
        );
        eprintln!(
            "explored {} schedules (exhausted: {})",
            stats.schedules, stats.exhausted
        );
        assert!(stats.schedules >= 40, "only {} schedules", stats.schedules);
    }

    /// The scheduler itself detects deadlocks: a receive on a channel
    /// whose sender is parked forever must fail the run rather than hang.
    #[test]
    #[should_panic(expected = "deadlock")]
    fn model_check_scheduler_detects_deadlock() {
        explore(2, 10, || {
            let (_tx, rx) = ModelRt::sync_channel::<i32>(1);
            // No sender thread will ever feed this: recv blocks, nobody
            // else is runnable → deadlock, reported by the scheduler.
            let _ = rx.recv();
        });
    }
}
