//! Negative suite for the abstract-interpretation pass: each
//! [`AnalysisError`] variant is produced by a purpose-built plan whose
//! hazard is *provable from base-table statistics alone* — mirroring
//! `verify_negative.rs` for the verifier's logical/sketch phases.
//!
//! The severity split is pinned here too: only `DivByZeroReachable` is a
//! hazard (it aborts `verify`), while overflow and contradiction findings
//! are warnings — integer wrap is defined (wrapping) semantics, the sum
//! kernel's narrowing is a checked panic, and a contradictory predicate
//! is legal (if pointless) SQL.

use std::collections::HashMap;
use std::sync::Arc;

use ma_executor::plan::{col, count, lit_i64, sum_i64, PlanBuilder};
use ma_executor::{analyze, verify, AnalysisError, CmpKind, ExecConfig, Value, VerifyError};
use ma_vector::{ColumnBuilder, DataType, Table};

use ma_executor::plan::NamedPred;

fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
    let mut id = ColumnBuilder::with_capacity(DataType::I64, rows);
    let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
    for i in 0..rows {
        id.push_i64(i as i64);
        k.push_i32((i % 5) as i32);
    }
    let t = Arc::new(
        Table::new(
            "t",
            vec![("id".into(), id.finish()), ("k".into(), k.finish())],
        )
        .unwrap(),
    );
    let mut c = HashMap::new();
    c.insert("t".to_string(), t);
    c
}

#[test]
fn wide_arithmetic_reports_possible_overflow() {
    // id ∈ [0, 99]; adding i64::MAX provably exceeds the i64 range on
    // every row but the first, so the wrap is reachable.
    let c = catalog(100);
    let plan = PlanBuilder::scan(&c, "t", &["id"])
        .project(vec![("w", col("id").add(lit_i64(i64::MAX)))], "proj")
        .build()
        .unwrap();
    let a = analyze(&plan);
    assert!(
        a.errors
            .iter()
            .any(|e| matches!(e, AnalysisError::PossibleOverflow { op: "add", .. })),
        "expected PossibleOverflow, got {:?}",
        a.errors
    );
    // Wrapping is defined semantics: a warning, not a verify failure.
    assert!(a.errors.iter().all(|e| !e.is_hazard()));
    verify(&plan, &ExecConfig::fixed_default()).unwrap();
}

#[test]
fn sum_over_wide_literal_reports_sum_overflow() {
    // Each row contributes ~i64::MAX/50; 100 rows provably exceed the
    // i64 accumulator output range (the kernel panics via checked
    // narrowing — the analysis flags it statically).
    let c = catalog(100);
    let plan = PlanBuilder::scan(&c, "t", &["id"])
        .project(vec![("w", col("id").add(lit_i64(i64::MAX / 50)))], "proj")
        .stream_agg(vec![sum_i64("w")], "agg")
        .build()
        .unwrap();
    let a = analyze(&plan);
    assert!(
        a.errors
            .iter()
            .any(|e| matches!(e, AnalysisError::SumOverflow { .. })),
        "expected SumOverflow, got {:?}",
        a.errors
    );
    assert!(a.errors.iter().all(|e| !e.is_hazard()));
}

#[test]
fn division_by_column_containing_zero_is_a_hazard() {
    // id ∈ [0, 99]: zero is in the divisor interval and nothing above
    // the scan excludes it, so the runtime trap is reachable.
    let c = catalog(100);
    let plan = PlanBuilder::scan(&c, "t", &["id"])
        .project(vec![("q", col("id").div(col("id")))], "proj")
        .build()
        .unwrap();
    let a = analyze(&plan);
    match a.first_hazard() {
        Some(AnalysisError::DivByZeroReachable { lo, hi, .. }) => {
            assert_eq!((*lo, *hi), (0, 99));
        }
        other => panic!("expected DivByZeroReachable hazard, got {other:?}"),
    }
    // The sole hazard variant: verify's third phase rejects the plan.
    match verify(&plan, &ExecConfig::fixed_default()) {
        Err(VerifyError::Analysis {
            err: AnalysisError::DivByZeroReachable { .. },
        }) => {}
        other => panic!("expected analysis rejection, got {other:?}"),
    }
}

#[test]
fn filter_excluding_zero_discharges_the_division_hazard() {
    // The same division becomes safe once a filter proves the divisor
    // interval excludes zero — the narrowing must reach the projection.
    let c = catalog(100);
    let plan = PlanBuilder::scan(&c, "t", &["id"])
        .filter(
            NamedPred::cmp_val("id", CmpKind::Ge, Value::I64(1)),
            "nonzero",
        )
        .project(vec![("q", col("id").div(col("id")))], "proj")
        .build()
        .unwrap();
    let a = analyze(&plan);
    assert!(a.errors.is_empty(), "expected clean, got {:?}", a.errors);
    verify(&plan, &ExecConfig::fixed_default()).unwrap();
}

#[test]
fn contradictory_range_predicate_is_reported() {
    // k < 2 AND k > 3 empties the column's interval: no row can pass.
    let c = catalog(100);
    let plan = PlanBuilder::scan(&c, "t", &["k"])
        .filter(
            NamedPred::And(vec![
                NamedPred::cmp_val("k", CmpKind::Lt, Value::I32(2)),
                NamedPred::cmp_val("k", CmpKind::Gt, Value::I32(3)),
            ]),
            "contra",
        )
        .hash_agg(&["k"], vec![count()], "agg")
        .build()
        .unwrap();
    let a = analyze(&plan);
    match &a.errors[..] {
        [AnalysisError::ContradictionPred { column, .. }] => assert_eq!(column, "k"),
        other => panic!("expected one ContradictionPred, got {other:?}"),
    }
    // A contradiction is legal SQL (it returns zero rows): warning only,
    // and the derived row bound collapses to zero.
    assert!(a.errors.iter().all(|e| !e.is_hazard()));
    assert_eq!(a.facts.rows, 0);
    verify(&plan, &ExecConfig::fixed_default()).unwrap();
}

#[test]
fn every_error_variant_displays_its_context() {
    // Display output is what `repro analyze` and verify failures print —
    // each variant must name the node it fired in.
    let c = catalog(100);
    let over = PlanBuilder::scan(&c, "t", &["id"])
        .project(vec![("w", col("id").add(lit_i64(i64::MAX)))], "po")
        .build()
        .unwrap();
    let text = format!("{}", analyze(&over).errors[0]);
    assert!(text.contains("po"), "missing context: {text}");
    let div = PlanBuilder::scan(&c, "t", &["id"])
        .project(vec![("q", col("id").div(col("id")))], "dz")
        .build()
        .unwrap();
    let text = format!("{}", analyze(&div).errors[0]);
    assert!(text.contains("dz"), "missing context: {text}");
}
