//! Negative suite for the plan-invariant verifier: hand-built ill-formed
//! plans and physical sketches, each rejected with its *specific* typed
//! [`VerifyError`] variant.
//!
//! The [`PlanBuilder`] API makes most of these shapes unrepresentable —
//! which is exactly why the verifier must be tested against hand-built
//! [`LogicalPlan`] / [`PhysSketch`] values: it is the safety net for plan
//! *producers other than the builder* (future optimizer rewrites,
//! deserialized plans, test rigs) and for regressions in the builder
//! itself.

use std::collections::HashMap;
use std::sync::Arc;

use ma_executor::ops::{AggSpec, ProjItem, SortKey};
use ma_executor::plan::PlanBuilder;
use ma_executor::{
    sketch, verify, verify_sketch, ExecConfig, LaneSketch, LogicalPlan, PhysSketch, Pred,
    VerifyError,
};
use ma_vector::{ColumnBuilder, DataType, Field, Schema, Table};

fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
    let mut id = ColumnBuilder::with_capacity(DataType::I64, rows);
    let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
    let mut f = ColumnBuilder::with_capacity(DataType::F64, rows);
    for i in 0..rows {
        id.push_i64(i as i64);
        k.push_i32((i % 5) as i32);
        f.push_f64(i as f64);
    }
    let t = Arc::new(
        Table::new(
            "t",
            vec![
                ("id".into(), id.finish()),
                ("k".into(), k.finish()),
                ("f".into(), f.finish()),
            ],
        )
        .unwrap(),
    );
    let mut c = HashMap::new();
    c.insert("t".to_string(), t);
    c
}

fn cfg() -> ExecConfig {
    ExecConfig::fixed_default()
}

/// A well-formed scan over (id:i64, k:i32, f:f64) to graft bad nodes onto.
fn base_scan(c: &HashMap<String, Arc<Table>>) -> LogicalPlan {
    PlanBuilder::scan(c, "t", &["id", "k", "f"])
        .build()
        .unwrap()
}

fn filter_all(input: LogicalPlan, label: &str) -> LogicalPlan {
    let schema = input.schema().clone();
    LogicalPlan::Filter {
        input: Box::new(input),
        pred: Pred::cmp_val(0, ma_executor::CmpKind::Ge, ma_executor::Value::I64(0)),
        label: label.to_string(),
        schema,
    }
}

// ---------------------------------------------------------------------------
// logical-walk rejections (hand-built LogicalPlans)
// ---------------------------------------------------------------------------

/// Two primitive-instantiating nodes sharing one stats label would merge
/// their adaptive statistics silently.
#[test]
fn duplicate_stats_label_rejected() {
    let c = catalog(100);
    let plan = filter_all(filter_all(base_scan(&c), "dup"), "dup");
    match verify(&plan, &cfg()) {
        Err(VerifyError::DuplicateLabel { label }) => assert_eq!(label, "dup"),
        other => panic!("expected DuplicateLabel, got {other:?}"),
    }
}

/// A merge join whose input's key does not trace to the clustering
/// column (and has no sort) cannot prove sortedness.
#[test]
fn unsorted_merge_input_rejected() {
    let c = catalog(100);
    let left = base_scan(&c);
    let right = base_scan(&c);
    let schema = Schema::new(vec![
        Field::new("id", DataType::I64),
        Field::new("k", DataType::I32),
        Field::new("f", DataType::F64),
        Field::new("lk", DataType::I32),
    ]);
    let plan = LogicalPlan::MergeJoin {
        left: Box::new(left),
        right: Box::new(right),
        // Column 1 ("k") is not the clustering (first) column on either
        // side: sortedness is unprovable.
        left_key: 1,
        right_key: 1,
        payload: vec![1],
        label: "mj".to_string(),
        schema,
    };
    match verify(&plan, &cfg()) {
        Err(VerifyError::UnsortedMergeInput {
            side: "left",
            key: 1,
        }) => {}
        other => panic!("expected UnsortedMergeInput, got {other:?}"),
    }
}

/// A merge input sorted by the right key but *descending* gets its own
/// diagnosis (the shape is right, the direction fatal).
#[test]
fn descending_merge_key_rejected() {
    let c = catalog(100);
    let left = base_scan(&c);
    let sort_schema = left.schema().clone();
    let left_sorted = LogicalPlan::Sort {
        input: Box::new(left),
        keys: vec![SortKey::desc(0)],
        limit: None,
        schema: sort_schema,
    };
    let right = base_scan(&c);
    let schema = Schema::new(vec![
        Field::new("id", DataType::I64),
        Field::new("k", DataType::I32),
        Field::new("f", DataType::F64),
        Field::new("lk", DataType::I32),
    ]);
    let plan = LogicalPlan::MergeJoin {
        left: Box::new(left_sorted),
        right: Box::new(right),
        left_key: 0,
        right_key: 0,
        payload: vec![1],
        label: "mj".to_string(),
        schema,
    };
    match verify(&plan, &cfg()) {
        Err(VerifyError::DescendingMergeKey {
            side: "left",
            key: 0,
        }) => {}
        other => panic!("expected DescendingMergeKey, got {other:?}"),
    }
}

/// An f64 group key is rejected as a typed error at verify time — not as
/// a key-normalization panic on a worker thread at execution time.
#[test]
fn float_group_key_rejected() {
    let c = catalog(100);
    let plan = LogicalPlan::HashAgg {
        input: Box::new(base_scan(&c)),
        keys: vec![2], // "f": f64
        aggs: vec![AggSpec::CountStar],
        label: "agg".to_string(),
        schema: Schema::new(vec![
            Field::new("f", DataType::F64),
            Field::new("n", DataType::I64),
        ]),
    };
    match verify(&plan, &cfg()) {
        Err(VerifyError::FloatPartitionKey { context }) => {
            assert!(context.contains("group key"), "{context}");
        }
        other => panic!("expected FloatPartitionKey, got {other:?}"),
    }
}

/// A node whose declared output schema disagrees with what its inputs
/// derive is caught before any operator would act on the wrong types.
#[test]
fn declared_schema_mismatch_rejected() {
    let c = catalog(100);
    let plan = LogicalPlan::Project {
        input: Box::new(base_scan(&c)),
        items: vec![ProjItem::Pass(0)],
        label: "proj".to_string(),
        // Declares i32 for a passed-through i64 column.
        schema: Schema::new(vec![Field::new("id", DataType::I32)]),
    };
    match verify(&plan, &cfg()) {
        Err(VerifyError::SchemaMismatch { .. }) => {}
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
}

/// A predicate referencing a column beyond its input's arity.
#[test]
fn column_out_of_range_rejected() {
    let c = catalog(100);
    let scan = base_scan(&c);
    let schema = scan.schema().clone();
    let plan = LogicalPlan::Filter {
        input: Box::new(scan),
        pred: Pred::cmp_val(9, ma_executor::CmpKind::Ge, ma_executor::Value::I64(0)),
        label: "sel".to_string(),
        schema,
    };
    match verify(&plan, &cfg()) {
        Err(VerifyError::ColumnOutOfRange {
            col: 9, arity: 3, ..
        }) => {}
        other => panic!("expected ColumnOutOfRange, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// sketch-walk rejections (hand-built PhysSketches)
// ---------------------------------------------------------------------------

fn lane(producers: usize, key_types: Vec<DataType>, partitions: usize) -> LaneSketch {
    LaneSketch {
        producers,
        key_types,
        partitions,
        input: PhysSketch::Seq { children: vec![] },
    }
}

/// An arrival-order exchange under an order-sensitive ancestor would
/// interleave worker streams and break the merge contract.
#[test]
fn parallel_under_ordered_ancestor_rejected() {
    let s = PhysSketch::Ordered {
        children: vec![PhysSketch::Parallel { workers: 4 }],
    };
    match verify_sketch(&s) {
        Err(VerifyError::OrderViolation { node: "Parallel" }) => {}
        other => panic!("expected OrderViolation, got {other:?}"),
    }
}

/// Same for a partitioned exchange — unless a materialization boundary
/// (sort, aggregate, join build) resets the order requirement first.
#[test]
fn partition_under_ordered_ancestor_rejected_unless_materialized() {
    let bad = PhysSketch::Ordered {
        children: vec![PhysSketch::HashPartition {
            partitions: 2,
            lanes: vec![lane(2, vec![DataType::I64], 2)],
        }],
    };
    match verify_sketch(&bad) {
        Err(VerifyError::OrderViolation {
            node: "HashPartition",
        }) => {}
        other => panic!("expected OrderViolation, got {other:?}"),
    }
    // A Materialize boundary legalizes the identical subtree.
    let ok = PhysSketch::Ordered {
        children: vec![PhysSketch::Materialize {
            children: vec![PhysSketch::HashPartition {
                partitions: 2,
                lanes: vec![lane(2, vec![DataType::I64], 2)],
            }],
        }],
    };
    verify_sketch(&ok).unwrap();
}

/// Lanes routing by different key type classes would hash equal keys to
/// different partitions (i16/i32 normalize to i64 and are *not* a
/// mismatch; str vs integer is).
#[test]
fn lane_key_type_mismatch_rejected() {
    let s = PhysSketch::HashPartition {
        partitions: 2,
        lanes: vec![
            lane(2, vec![DataType::I32], 2), // normalizes to i64
            lane(1, vec![DataType::Str], 2),
        ],
    };
    match verify_sketch(&s) {
        Err(VerifyError::LaneKeyTypeMismatch {
            lane: 1,
            pos: 0,
            expected: DataType::I64,
            found: DataType::Str,
        }) => {}
        other => panic!("expected LaneKeyTypeMismatch, got {other:?}"),
    }
    // The i16/i32/i64 widths agree by normalization.
    let ok = PhysSketch::HashPartition {
        partitions: 2,
        lanes: vec![
            lane(2, vec![DataType::I32], 2),
            lane(1, vec![DataType::I64], 2),
        ],
    };
    verify_sketch(&ok).unwrap();
}

/// A lane routing to a different partition count than the exchange's
/// consumers would drop or misroute every tuple hashed past the end.
#[test]
fn partition_count_mismatch_rejected() {
    let s = PhysSketch::HashPartition {
        partitions: 4,
        lanes: vec![
            lane(2, vec![DataType::I64], 4),
            lane(1, vec![DataType::I64], 2),
        ],
    };
    match verify_sketch(&s) {
        Err(VerifyError::PartitionCountMismatch {
            lane: 1,
            expected: 4,
            found: 2,
        }) => {}
        other => panic!("expected PartitionCountMismatch, got {other:?}"),
    }
}

/// A partitioned exchange with no lanes would feed its consumers nothing
/// and hang teardown.
#[test]
fn zero_lane_consumer_rejected() {
    let s = PhysSketch::HashPartition {
        partitions: 2,
        lanes: vec![],
    };
    match verify_sketch(&s) {
        Err(VerifyError::ZeroLaneConsumer) => {}
        other => panic!("expected ZeroLaneConsumer, got {other:?}"),
    }
}

/// A lane with an empty producer set closes its channels immediately and
/// silently yields an empty partition stream.
#[test]
fn empty_lane_rejected() {
    let s = PhysSketch::HashPartition {
        partitions: 2,
        lanes: vec![
            lane(2, vec![DataType::I64], 2),
            lane(0, vec![DataType::I64], 2),
        ],
    };
    match verify_sketch(&s) {
        Err(VerifyError::EmptyLane { lane: 1 }) => {}
        other => panic!("expected EmptyLane, got {other:?}"),
    }
}

/// The K-way merge compares a single ascending integer key; composite
/// keys get a descriptive typed error, not silent wrong answers.
#[test]
fn composite_merge_key_rejected() {
    let s = PhysSketch::Merge {
        producers: 4,
        key_cols: vec![0, 1],
        key_types: vec![DataType::I64, DataType::I64],
    };
    match verify_sketch(&s) {
        Err(VerifyError::CompositeMergeKey { keys: 2 }) => {}
        other => panic!("expected CompositeMergeKey, got {other:?}"),
    }
}

/// Non-integer merge keys cannot drive the K-way comparison.
#[test]
fn non_integer_merge_key_rejected() {
    let s = PhysSketch::Merge {
        producers: 4,
        key_cols: vec![0],
        key_types: vec![DataType::Str],
    };
    match verify_sketch(&s) {
        Err(VerifyError::NonIntegerMergeKey { ty: DataType::Str }) => {}
        other => panic!("expected NonIntegerMergeKey, got {other:?}"),
    }
}

/// Degenerate exchanges (zero workers) are rejected outright.
#[test]
fn empty_exchange_rejected() {
    match verify_sketch(&PhysSketch::Parallel { workers: 0 }) {
        Err(VerifyError::EmptyExchange { node: "Parallel" }) => {}
        other => panic!("expected EmptyExchange, got {other:?}"),
    }
}

/// End-to-end: the sketch the verifier builds for a well-formed sharded
/// plan passes its own checks (the negative cases above are unreachable
/// from `sketch` — that is the point of hand-building them).
#[test]
fn sketch_of_well_formed_plan_passes() {
    let c = catalog(100_000);
    let plan = PlanBuilder::scan(&c, "t", &["k", "id"])
        .hash_agg(
            &["k"],
            vec![ma_executor::plan::count(), ma_executor::plan::sum_i64("id")],
            "agg",
        )
        .build()
        .unwrap();
    let mut cfg = cfg();
    cfg.worker_threads = 4;
    verify_sketch(&sketch(&plan, &cfg)).unwrap();
    verify(&plan, &cfg).unwrap();
}
