//! Front-end suite: parser round-trips, typed error paths, and
//! end-to-end text-to-result execution over a toy catalog.
//!
//! The round-trip property proper (random queries, thousands of cases)
//! lives with the fuzzer in `ma-tpch`; this suite pins the canonical
//! rendering of every stage and expression form, and the *specific*
//! typed error each misuse produces.

use std::collections::HashMap;
use std::sync::Arc;

use ma_executor::frontend::{self, FrontendError, ParseErrorKind};
use ma_executor::plan::{lower, PlanError};
use ma_executor::{ExecConfig, QueryContext};
use ma_vector::{ColumnBuilder, DataType, Table};

fn catalog() -> HashMap<String, Arc<Table>> {
    let rows = 100;
    let mut id = ColumnBuilder::with_capacity(DataType::I64, rows);
    let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
    let mut v = ColumnBuilder::with_capacity(DataType::I64, rows);
    let mut f = ColumnBuilder::with_capacity(DataType::F64, rows);
    let mut s = ColumnBuilder::with_capacity(DataType::Str, rows);
    for i in 0..rows {
        id.push_i64(i as i64);
        k.push_i32((i % 5) as i32);
        v.push_i64((i * 10) as i64);
        f.push_f64(i as f64 * 0.5);
        s.push_str(["alpha", "beta", "gamma"][i % 3]);
    }
    let t = Arc::new(
        Table::new(
            "t",
            vec![
                ("id".into(), id.finish()),
                ("k".into(), k.finish()),
                ("v".into(), v.finish()),
                ("f".into(), f.finish()),
                ("s".into(), s.finish()),
            ],
        )
        .unwrap(),
    );
    let mut uk = ColumnBuilder::with_capacity(DataType::I64, 5);
    let mut uv = ColumnBuilder::with_capacity(DataType::I64, 5);
    for i in 0..5 {
        uk.push_i64(i as i64);
        uv.push_i64(i as i64 * 1000);
    }
    let u = Arc::new(
        Table::new(
            "u",
            vec![("uk".into(), uk.finish()), ("uv".into(), uv.finish())],
        )
        .unwrap(),
    );
    let mut c = HashMap::new();
    c.insert("t".to_string(), t);
    c.insert("u".to_string(), u);
    c
}

// ---------------------------------------------------------------------------
// round-trips
// ---------------------------------------------------------------------------

/// Canonical queries: `display(parse(q)) == q` exactly, and re-parsing
/// the rendering yields an identical AST.
#[test]
fn canonical_corpus_round_trips() {
    let corpus = [
        "from t [id, k, v]",
        "from t [id as row_id, k]",
        "from t [id, k] | where k < 3",
        "from t [id, k] | where k < 3 and id >= 10",
        "from t [id, k, s] | where s = \"alpha\" or k != 2 and id < 50",
        "from t [id, k, s] | where (s = \"alpha\" or k != 2) and id < 50",
        "from t [id, s] | where s like \"al%\"",
        "from t [id, s] | where s not like \"%mm%\"",
        "from t [id, s] | where s in (\"alpha\", \"beta\")",
        "from t [id, k] | where k = -1",
        "from t [id, v] | select id = id, double_v = v * 2",
        "from t [id, v, f] | select r = f * 0.5 + 1.0, neg = v * -1",
        "from t [id, k] | select wide = i64(k) * 3",
        "from t [f] | select scaled = f / 2.5",
        "from t [id, v] | select tail = v - (id + 1)",
        "from t [s] | select head = substr(s, 0, 2)",
        "from t [id, k] | keep [k as key, id]",
        "from t [k, v] | agg by [k] [count, sum(v) as total]",
        "from t [v, f] | agg [sum(v), min(v), max(v), sum(f), min(f), max(f)]",
        "from t [id, k] | join inner (from u [uk, uv]) on id = uk payload [uv as val] bloom",
        "from t [id, k] | join semi (from u [uk]) on id = uk",
        "from t [id, k] | join anti (from u [uk]) on id = uk bloom",
        "from t [id, k] | join single (from u [uk, uv]) on id = uk payload [uv default -1]",
        "from t [id, v] | merge join (from u [uk, uv]) on id = uk payload [uv]",
        "from t [id, k] | order by k desc, id",
        "from t [id, k, v] | top 7 by v desc, id",
        "from t [id, k, v] | where k < 4 | select id = id, vv = v * 2 | agg by [id] \
         [sum(vv) as sv, count as c] | order by sv desc, id",
    ];
    for q in corpus {
        let ast = frontend::parse(q).unwrap_or_else(|e| panic!("parse {q:?}: {e}"));
        let rendered = ast.to_string();
        assert_eq!(rendered, q, "canonical rendering changed");
        let again = frontend::parse(&rendered).unwrap();
        assert_eq!(again, ast, "round-trip AST mismatch for {q:?}");
    }
}

/// Redundant spellings normalize to the same AST: `==`/`<>`, explicit
/// `asc`, extra parentheses and whitespace.
#[test]
fn alternate_spellings_normalize() {
    let pairs = [
        ("from t [id] | where id == 3", "from t [id] | where id = 3"),
        ("from t [id] | where id <> 3", "from t [id] | where id != 3"),
        (
            "from t [id, k] | order by k asc",
            "from t [id, k] | order by k",
        ),
        (
            "from t [id] | where ((id < 3))",
            "from t [id] | where id < 3",
        ),
        (
            "from t [id, v] | select x = (v * 2)",
            "from t [id, v] | select x = v * 2",
        ),
        (
            "from   t\n [ id , k ]\n | where k < 3",
            "from t [id, k] | where k < 3",
        ),
    ];
    for (written, canonical) in pairs {
        let a = frontend::parse(written).unwrap();
        let b = frontend::parse(canonical).unwrap();
        assert_eq!(a, b, "{written:?} should normalize to {canonical:?}");
        assert_eq!(a.to_string(), canonical);
    }
}

/// Operator precedence and associativity survive the round trip: the
/// rendering of a parenthesized tree re-parses to the same tree.
#[test]
fn expression_parens_round_trip() {
    for q in [
        "from t [v, id] | select x = v * (id + 1)",
        "from t [v, id] | select x = v - (id - 1)",
        "from t [v, id] | select x = v + id * 2",
        "from t [v, id, f] | select x = i64(k) + 1",
        "from t [f, v] | select x = f64(v) * (f + 1.0) / 2.0",
    ] {
        let Ok(ast) = frontend::parse(q) else {
            continue; // `k` not in the list — only shape matters here
        };
        let again = frontend::parse(&ast.to_string()).unwrap();
        assert_eq!(again, ast, "{q:?}");
    }
}

// ---------------------------------------------------------------------------
// typed error paths
// ---------------------------------------------------------------------------

fn plan_err(text: &str) -> (PlanError, frontend::Span) {
    match frontend::plan_text(text, &catalog()) {
        Err(FrontendError::Plan { err, span }) => (err, span),
        other => panic!("expected plan error for {text:?}, got {other:?}"),
    }
}

#[test]
fn unknown_column_is_typed_and_spanned() {
    let text = "from t [id, k] | where missing < 3";
    let (err, span) = plan_err(text);
    match err {
        PlanError::UnknownColumn { name, .. } => assert_eq!(name, "missing"),
        other => panic!("expected UnknownColumn, got {other:?}"),
    }
    assert_eq!(&text[span.start..span.end], "missing");
}

#[test]
fn type_mismatch_is_typed_and_spanned() {
    // Ordering comparison on a string column.
    let text = "from t [id, s] | where s < 5";
    let (err, span) = plan_err(text);
    match &err {
        PlanError::TypeMismatch { found, .. } => assert_eq!(*found, DataType::Str),
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
    assert_eq!(&text[span.start..span.end], "s < 5");

    // Float literal against an integer column.
    let text = "from t [id, k] | where k = 2.5";
    let (err, span) = plan_err(text);
    match &err {
        PlanError::TypeMismatch { found, .. } => assert_eq!(*found, DataType::F64),
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
    assert_eq!(&text[span.start..span.end], "k = 2.5");

    // Summing a string column.
    let text = "from t [s] | agg [sum(s)]";
    let (err, span) = plan_err(text);
    assert!(matches!(err, PlanError::TypeMismatch { .. }), "{err:?}");
    assert_eq!(&text[span.start..span.end], "s");
}

#[test]
fn out_of_range_literal_is_rejected() {
    // k is i32; this literal does not fit.
    let (err, _) = plan_err("from t [id, k] | where k < 99999999999");
    assert!(matches!(err, PlanError::Invalid(_)), "{err:?}");
}

#[test]
fn reserved_word_as_alias_is_a_parse_error() {
    for text in [
        "from t [id as order]",
        "from t [id] | select count = id",
        "from t [id, k] | keep [k as select]",
    ] {
        match frontend::parse(text) {
            Err(e) => assert!(
                matches!(e.kind, ParseErrorKind::ReservedWord(_)),
                "{text:?}: {e:?}"
            ),
            Ok(_) => panic!("{text:?} should not parse"),
        }
    }
}

#[test]
fn parse_error_kinds_are_specific() {
    use ParseErrorKind as K;
    type Check = fn(&K) -> bool;
    let cases: &[(&str, Check)] = &[
        ("from t [id] | where id < ", |k| {
            matches!(k, K::UnexpectedToken { .. })
        }),
        ("from t [id] extra", |k| matches!(k, K::TrailingInput)),
        ("from t [id] | where s = \"unterminated", |k| {
            matches!(k, K::UnterminatedString)
        }),
        ("from t [id] | where id ? 3", |k| {
            matches!(k, K::UnexpectedChar('?'))
        }),
        ("from t [id] | where id < 99999999999999999999", |k| {
            matches!(k, K::BadNumber(_))
        }),
        ("from t [id] | top 0 by id", |k| {
            matches!(k, K::UnexpectedToken { .. })
        }),
    ];
    for (text, check) in cases {
        match frontend::parse(text) {
            Err(e) => assert!(check(&e.kind), "{text:?}: {:?}", e.kind),
            Ok(_) => panic!("{text:?} should not parse"),
        }
    }
}

#[test]
fn unknown_table_is_typed() {
    let (err, _) = plan_err("from nope [x]");
    assert!(matches!(err, PlanError::UnknownTable(_)), "{err:?}");
}

// ---------------------------------------------------------------------------
// end to end
// ---------------------------------------------------------------------------

fn run(text: &str) -> Vec<Vec<String>> {
    let c = catalog();
    let plan = frontend::plan_text(text, &c).unwrap_or_else(|e| panic!("{text:?}: {e}"));
    let dict = Arc::new(ma_primitives::build_dictionary());
    let ctx = QueryContext::new(dict, ExecConfig::fixed_default());
    let mut op = lower(&plan, &ctx).unwrap();
    let store = ma_executor::ops::materialize(op.as_mut()).unwrap();
    let mut rows = Vec::new();
    for r in 0..store.rows() {
        let mut row = Vec::new();
        for c in 0..store.types().len() {
            row.push(match store.col(c) {
                ma_vector::Vector::I16(v) => v[r].to_string(),
                ma_vector::Vector::I32(v) => v[r].to_string(),
                ma_vector::Vector::I64(v) => v[r].to_string(),
                ma_vector::Vector::F64(v) => format!("{:?}", v[r]),
                ma_vector::Vector::Str(s) => s.get(r).to_string(),
            });
        }
        rows.push(row);
    }
    rows
}

#[test]
fn text_query_filters_and_aggregates() {
    // k cycles 0..5 over 100 rows; k < 2 keeps 40 rows, 20 per group.
    let rows = run(
        "from t [k, v] | where k < 2 | agg by [k] [count as c, sum(v) as sv] \
                    | order by k",
    );
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], "0");
    assert_eq!(rows[0][1], "20");
    // k=0 rows are ids 0,5,10,...,95; v = 10*id → sum = 10 * 950.
    assert_eq!(rows[0][2], "9500");
    assert_eq!(rows[1][0], "1");
}

#[test]
fn text_query_joins_and_sorts() {
    // Join t's 100 rows against u's 5 unique keys 0..5 (ids 0..5 match).
    let rows = run(
        "from t [id, v] | join inner (from u [uk, uv]) on id = uk payload [uv] \
         | order by uv desc, id",
    );
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0][2], "4000");
    assert_eq!(rows[4][2], "0");

    let rows = run(
        "from t [id, v] | join single (from u [uk, uv]) on id = uk payload [uv default -5] \
         | where uv = -5 | agg [count as misses]",
    );
    assert_eq!(rows[0][0], "95");
}

#[test]
fn text_merge_join_runs() {
    let rows = run(
        "from t [id, v] | merge join (from u [uk, uv]) on id = uk payload [uv] \
         | agg [count as matches, sum(uv) as total]",
    );
    assert_eq!(rows[0][0], "5");
    assert_eq!(rows[0][1], "10000");
}

#[test]
fn generated_labels_are_unique_and_plans_verify() {
    let c = catalog();
    let plan = frontend::plan_text(
        "from t [id, k, v] | where k < 3 | select id = id, vv = v * 2 \
         | join inner (from u [uk, uv]) on id = uk payload [uv] \
         | agg by [id] [sum(vv) as s] | top 3 by s desc, id",
        &c,
    )
    .unwrap();
    ma_executor::verify(&plan, &ExecConfig::fixed_default()).unwrap();
}
