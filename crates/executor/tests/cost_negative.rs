//! Negative suite for the memory/cost pass: each [`CostFinding`] variant
//! is produced by a purpose-built plan-plus-budget pair, each negative
//! test has a positive twin proving the finding discharges once the
//! budget covers the proven peak, and the strict-mode verdict is pinned
//! to flip at the *exact* byte threshold — mirroring
//! `analyze_negative.rs` for the abstract-interpretation pass.
//!
//! The severity split is pinned here too: budget findings are warnings
//! by default (`repro analyze` / `repro mem` surface them), and only
//! [`ExecConfig::with_strict_memory`] promotes them to a
//! [`VerifyError::MemoryBudget`] rejection.

use std::collections::HashMap;
use std::sync::Arc;

use ma_executor::plan::{asc, sum_i64, LogicalPlan, PlanBuilder};
use ma_executor::{cost, verify, CostFinding, ExecConfig, VerifyError};
use ma_vector::{ColumnBuilder, DataType, Table};

fn catalog(rows: usize) -> HashMap<String, Arc<Table>> {
    let mut id = ColumnBuilder::with_capacity(DataType::I64, rows);
    let mut k = ColumnBuilder::with_capacity(DataType::I32, rows);
    for i in 0..rows {
        id.push_i64(i as i64);
        k.push_i32((i % 5) as i32);
    }
    let t = Arc::new(
        Table::new(
            "t",
            vec![("id".into(), id.finish()), ("k".into(), k.finish())],
        )
        .unwrap(),
    );
    let mut c = HashMap::new();
    c.insert("t".to_string(), t);
    c
}

/// Aggregate-then-sort: two stages with nonzero proven bounds, so a
/// budget can sit *between* the largest single stage and the roll-up.
fn agg_sort_plan(c: &HashMap<String, Arc<Table>>) -> LogicalPlan {
    PlanBuilder::scan(c, "t", &["id", "k"])
        .hash_agg(&["k"], vec![sum_i64("id")], "agg")
        .sort(&[asc("k")])
        .build()
        .unwrap()
}

/// The baseline report under an effectively-unlimited budget, plus the
/// largest single-stage bound. Asserts the preconditions every test
/// below leans on: a finite nonzero peak spread over more than one
/// resident stage.
fn baseline(plan: &LogicalPlan) -> (u64, u64) {
    let report = cost(plan, &ExecConfig::fixed_default());
    assert!(report.findings.is_empty(), "baseline must fit 1 GiB");
    let max_op = report.ops.iter().map(|o| o.bytes).max().unwrap_or(0);
    assert!(max_op > 0, "plan must have a resident stage");
    assert!(
        max_op < report.peak_bytes,
        "plan must spread bytes over >1 stage (max {max_op}, peak {})",
        report.peak_bytes
    );
    (report.peak_bytes, max_op)
}

#[test]
fn rollup_over_budget_reports_budget_exceeded_only() {
    // Budget covers every individual stage but not their sum: the
    // roll-up finding fires alone, with the exact proven numbers.
    let c = catalog(1000);
    let plan = agg_sort_plan(&c);
    let (peak, max_op) = baseline(&plan);
    let budget = peak - 1;
    assert!(budget >= max_op, "budget must still cover each stage");
    let report = cost(
        &plan,
        &ExecConfig::fixed_default().with_memory_budget(budget),
    );
    assert_eq!(
        report.findings,
        vec![CostFinding::BudgetExceeded {
            peak_bytes: peak,
            budget
        }],
        "expected exactly the roll-up finding"
    );
}

#[test]
fn single_stage_over_budget_names_the_offender() {
    // Budget below the largest single stage: that stage is called out
    // by label (alongside the implied roll-up finding — the sum always
    // dominates any one term).
    let c = catalog(1000);
    let plan = agg_sort_plan(&c);
    let (_, max_op) = baseline(&plan);
    let budget = max_op - 1;
    let cfg = ExecConfig::fixed_default().with_memory_budget(budget);
    let report = cost(&plan, &cfg);
    let offender = report
        .findings
        .iter()
        .find_map(|f| match f {
            CostFinding::OpBudgetExceeded { label, bytes, .. } => Some((label.clone(), *bytes)),
            _ => None,
        })
        .expect("expected an OpBudgetExceeded finding");
    assert_eq!(offender.1, max_op);
    let labelled = report.ops.iter().any(|o| o.label == offender.0);
    assert!(labelled, "finding label {:?} must name a stage", offender.0);
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f, CostFinding::BudgetExceeded { .. })),
        "roll-up finding must accompany a per-stage breach"
    );
}

#[test]
fn raising_the_budget_discharges_every_finding() {
    // Positive twin: the same plan under a budget equal to the proven
    // peak is clean — findings fire on strict excess only.
    let c = catalog(1000);
    let plan = agg_sort_plan(&c);
    let (peak, _) = baseline(&plan);
    let cfg = ExecConfig::fixed_default()
        .with_memory_budget(peak)
        .with_strict_memory(true);
    let report = cost(&plan, &cfg);
    assert!(report.findings.is_empty(), "got {:?}", report.findings);
    verify(&plan, &cfg).unwrap();
}

#[test]
fn strict_verdict_flips_exactly_at_the_proven_peak() {
    // budget == peak passes; one byte less is rejected with the exact
    // proven numbers. Pinning the boundary keeps the comparison honest
    // (no off-by-one slack creeping into the gate).
    let c = catalog(1000);
    let plan = agg_sort_plan(&c);
    let (peak, _) = baseline(&plan);
    let at = ExecConfig::fixed_default()
        .with_memory_budget(peak)
        .with_strict_memory(true);
    verify(&plan, &at).unwrap();
    let below = ExecConfig::fixed_default()
        .with_memory_budget(peak - 1)
        .with_strict_memory(true);
    match verify(&plan, &below) {
        Err(VerifyError::MemoryBudget { peak_bytes, budget }) => {
            assert_eq!(peak_bytes, peak);
            assert_eq!(budget, peak - 1);
        }
        other => panic!("expected MemoryBudget rejection, got {other:?}"),
    }
}

#[test]
fn default_mode_demotes_budget_findings_to_warnings() {
    // Without strict_memory the same over-budget plan still verifies:
    // the finding is advisory, surfaced by the analyze/mem CLIs.
    let c = catalog(1000);
    let plan = agg_sort_plan(&c);
    let (peak, _) = baseline(&plan);
    let cfg = ExecConfig::fixed_default().with_memory_budget(peak - 1);
    assert!(!cost(&plan, &cfg).findings.is_empty());
    verify(&plan, &cfg).unwrap();
}

#[test]
fn every_finding_variant_displays_its_numbers() {
    // Display output is what `repro analyze --budget` prints — each
    // variant must carry the offending label/figures, human-readable.
    let c = catalog(1000);
    let plan = agg_sort_plan(&c);
    let (_, max_op) = baseline(&plan);
    let cfg = ExecConfig::fixed_default().with_memory_budget(max_op - 1);
    let report = cost(&plan, &cfg);
    for f in &report.findings {
        let text = format!("{f}");
        assert!(
            text.contains("memory budget"),
            "finding must mention the budget: {text}"
        );
        if let CostFinding::OpBudgetExceeded { label, .. } = f {
            assert!(text.contains(label.as_str()), "missing label: {text}");
        }
    }
}
