//! Regression comparison between two `ma-bench/v1` JSON reports.
//!
//! `repro compare old.json new.json` parses both reports (with a tiny
//! hand-rolled JSON reader — the tree deliberately has no serde), matches
//! experiments by id, and flags any whose `wall_ticks` grew by more than
//! the threshold (default 10%). The CI bench-smoke job runs this against
//! the previous commit's uploaded artifact.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// minimal JSON reader (objects, arrays, strings, numbers, bools, null)
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// Object (insertion order not preserved; reports never rely on it).
    Object(BTreeMap<String, Json>),
    /// Array.
    Array(Vec<Json>),
    /// String.
    Str(String),
    /// Number (all numbers as f64 — tick counts fit exactly below 2^53,
    /// far beyond any report's magnitude).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }
    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? != b {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, self.bytes[self.pos] as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(m));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            m.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(m));
                }
                c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(a));
        }
        loop {
            a.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(a));
                }
                c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // High surrogate: combine with the following
                            // \uXXXX low half (standard serializers write
                            // non-BMP chars as surrogate pairs).
                            let ch = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xDC00..=0xDFFF).contains(&low) {
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(c).unwrap_or('\u{FFFD}')
                                    } else {
                                        '\u{FFFD}'
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(code).unwrap_or('\u{FFFD}')
                            };
                            out.push(ch);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                other => {
                    // Multi-byte UTF-8 passes through byte-wise.
                    let start = self.pos - 1;
                    let len = utf8_len(other);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// ma-bench/v1 report model and comparison
// ---------------------------------------------------------------------------

/// One experiment of a parsed report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportEntry {
    /// Experiment id (e.g. `table1`, `scaling`).
    pub id: String,
    /// Wall ticks the experiment took.
    pub wall_ticks: f64,
    /// Named metrics.
    pub metrics: Vec<(String, f64)>,
}

/// A parsed `ma-bench/v1` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Scale factor of the run.
    pub sf: f64,
    /// Data seed of the run. Carried as f64 (the reader's only numeric
    /// type), so seeds are compared exactly only below 2^53 — any seed a
    /// human or CI config writes. Pathological ≥2^53 seeds differing only
    /// in the low bits could alias in [`comparable`].
    pub seed: f64,
    /// Per-experiment entries, in file order... (BTreeMap order of ids).
    pub entries: Vec<ReportEntry>,
}

/// Parses a report document, checking the schema tag.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let doc = parse_json(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing schema tag")?;
    if schema != "ma-bench/v1" {
        return Err(format!("unsupported schema {schema}"));
    }
    let entries = doc
        .get("experiments")
        .and_then(Json::as_array)
        .ok_or("missing experiments array")?
        .iter()
        .map(|e| {
            let id = e
                .get("id")
                .and_then(Json::as_str)
                .ok_or("experiment without id")?
                .to_string();
            let wall_ticks = e
                .get("wall_ticks")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("experiment {id} without wall_ticks"))?;
            let metrics = match e.get("metrics") {
                Some(Json::Object(m)) => m
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
                    .collect(),
                _ => Vec::new(),
            };
            Ok(ReportEntry {
                id,
                wall_ticks,
                metrics,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BenchReport {
        sf: doc.get("sf").and_then(Json::as_f64).unwrap_or(0.0),
        seed: doc.get("seed").and_then(Json::as_f64).unwrap_or(0.0),
        entries,
    })
}

/// One row of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Experiment id.
    pub id: String,
    /// Old wall ticks (`None`: new experiment).
    pub old: Option<f64>,
    /// New wall ticks (`None`: experiment disappeared).
    pub new: Option<f64>,
    /// `new/old - 1` where both sides exist.
    pub delta: Option<f64>,
    /// Whether the row exceeds the regression threshold.
    pub regressed: bool,
}

/// Comparison of two reports.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-experiment rows (union of ids, old-report order first).
    pub rows: Vec<CompareRow>,
    /// The regression threshold used (fraction, e.g. 0.10).
    pub threshold: f64,
}

impl Comparison {
    /// True when any experiment regressed beyond the threshold.
    pub fn any_regression(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// Renders an aligned table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>14} {:>14} {:>9}  {}\n",
            "experiment", "old ticks", "new ticks", "delta", "verdict"
        ));
        for r in &self.rows {
            let fmt_ticks = |t: Option<f64>| match t {
                Some(v) => format!("{v:.0}"),
                None => "-".to_string(),
            };
            let delta = match r.delta {
                Some(d) => format!("{:+.1}%", d * 100.0),
                None => "-".to_string(),
            };
            let verdict = if r.regressed {
                "REGRESSED"
            } else if r.delta.is_none() {
                "unmatched"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<28} {:>14} {:>14} {:>9}  {}\n",
                r.id,
                fmt_ticks(r.old),
                fmt_ticks(r.new),
                delta,
                verdict
            ));
        }
        out
    }
}

/// True when two reports were produced with the same run parameters —
/// wall ticks from different scale factors or data seeds are not
/// comparable, and diffing them would report spurious (or masked)
/// regressions.
pub fn comparable(a: &BenchReport, b: &BenchReport) -> bool {
    a.sf == b.sf && a.seed == b.seed
}

/// Compares two reports on per-experiment `wall_ticks`. An experiment
/// regresses when `new > old * (1 + threshold)`. Experiments present in
/// only one report are listed but never count as regressions (first runs
/// and renamed experiments must not fail the build).
pub fn compare(old: &BenchReport, new: &BenchReport, threshold: f64) -> Comparison {
    let mut rows = Vec::new();
    let new_by_id: BTreeMap<&str, &ReportEntry> =
        new.entries.iter().map(|e| (e.id.as_str(), e)).collect();
    let mut seen: Vec<&str> = Vec::new();
    for o in &old.entries {
        seen.push(o.id.as_str());
        let n = new_by_id.get(o.id.as_str());
        let delta = n.map(|n| n.wall_ticks / o.wall_ticks - 1.0);
        rows.push(CompareRow {
            id: o.id.clone(),
            old: Some(o.wall_ticks),
            new: n.map(|n| n.wall_ticks),
            delta,
            regressed: delta.is_some_and(|d| d > threshold),
        });
    }
    for n in &new.entries {
        if !seen.contains(&n.id.as_str()) {
            rows.push(CompareRow {
                id: n.id.clone(),
                old: None,
                new: Some(n.wall_ticks),
                delta: None,
                regressed: false,
            });
        }
    }
    Comparison { rows, threshold }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::json_report;

    fn report(entries: &[(&str, u64)]) -> BenchReport {
        let e: Vec<crate::report::JsonEntry> = entries
            .iter()
            .map(|(id, w)| (id.to_string(), *w, vec![("m".to_string(), 1.5)]))
            .collect();
        parse_report(&json_report(0.05, 7, &e)).unwrap()
    }

    #[test]
    fn round_trips_the_writer_output() {
        let r = report(&[("table1", 100), ("scaling", 2000)]);
        assert_eq!(r.sf, 0.05);
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].id, "table1");
        assert_eq!(r.entries[0].wall_ticks, 100.0);
        assert_eq!(r.entries[0].metrics, vec![("m".to_string(), 1.5)]);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v =
            parse_json(r#"{"a": [1, -2.5e1, "x\ny\"z"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1], Json::Num(-25.0));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2],
            Json::Str("x\ny\"z".into())
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn surrogate_pairs_and_control_escapes() {
        // 😀 is U+1F600 as a serializer-escaped surrogate pair.
        let v = parse_json(r#""a\ud83d\ude00b\bc\fd""#).unwrap();
        assert_eq!(v, Json::Str("a\u{1F600}b\u{0008}c\u{000C}d".into()));
        // Raw (unescaped) multi-byte UTF-8 also passes through.
        assert_eq!(
            parse_json("\"\u{1F600}\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
        // Unpaired halves degrade to U+FFFD instead of failing.
        assert_eq!(
            parse_json(r#""x\ud83dy""#).unwrap(),
            Json::Str("x\u{FFFD}y".into())
        );
    }

    #[test]
    fn comparability_requires_matching_run_params() {
        let a = report(&[("t", 1)]);
        assert!(comparable(&a, &a));
        let mut b = a.clone();
        b.sf = 0.1;
        assert!(!comparable(&a, &b));
        let mut c = a.clone();
        c.seed = 9.0;
        assert!(!comparable(&a, &c));
    }

    #[test]
    fn wrong_schema_rejected() {
        assert!(parse_report(r#"{"schema": "other/v2", "experiments": []}"#).is_err());
    }

    #[test]
    fn regression_detection_at_threshold() {
        let old = report(&[("a", 1000), ("b", 1000), ("gone", 50)]);
        let new = report(&[("a", 1099), ("b", 1200), ("fresh", 70)]);
        let cmp = compare(&old, &new, 0.10);
        // a: +9.9% — within threshold; b: +20% — regressed.
        assert!(!cmp.rows[0].regressed);
        assert!(cmp.rows[1].regressed);
        assert!(cmp.any_regression());
        // unmatched rows never regress
        let gone = cmp.rows.iter().find(|r| r.id == "gone").unwrap();
        assert!(!gone.regressed && gone.new.is_none());
        let fresh = cmp.rows.iter().find(|r| r.id == "fresh").unwrap();
        assert!(!fresh.regressed && fresh.old.is_none());
        let table = cmp.render();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("+20.0%"), "{table}");
        assert!(table.contains("unmatched"), "{table}");
    }

    #[test]
    fn improvement_is_never_a_regression() {
        let old = report(&[("a", 1000)]);
        let new = report(&[("a", 10)]);
        assert!(!compare(&old, &new, 0.10).any_regression());
    }
}
