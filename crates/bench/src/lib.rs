#![warn(missing_docs)]
//! # ma-bench — the reproduction harness
//!
//! One experiment per table/figure of the paper, shared by the `repro`
//! binary and the Criterion benches. See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for recorded paper-vs-measured results.

pub mod compare;
pub mod experiments;
pub mod measure;
pub mod report;

/// `add_years` without dragging the tpch date module into every experiment
/// signature (used by Fig. 2's Q12 window).
pub(crate) fn dates_add_year(day: i32) -> i32 {
    ma_tpch::dates::add_years(day, 1)
}
