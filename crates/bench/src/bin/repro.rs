//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment|all> [--sf F] [--seed S] [--json PATH]
//!
//! experiments: table1 fig1 fig2 fig4 fig5 fig6 table4 fig8 fig10 table5
//!              tables6-10 table11 fig11 ablation scaling
//! ```
//!
//! TPC-H experiments default to scale factor 0.05 (≈300K lineitems); the
//! micro-benchmarks run on fixed synthetic data. Output goes to stdout;
//! absolute tick counts are host-specific, shapes and factors are the
//! reproduction targets (see EXPERIMENTS.md). `--json` additionally writes
//! a machine-readable report (per-experiment wall ticks + metrics) — the
//! artifact the CI bench-smoke job uploads as the bench baseline.

use ma_bench::experiments::{make_runner, run_experiment_with_metrics, ALL_EXPERIMENTS};
use ma_bench::report::{json_report, JsonEntry};
use ma_core::cycles::ticks_now;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut sf = 0.05f64;
    let mut seed = 0xC0FFEEu64;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                sf = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sf needs a number"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--json needs a path")),
                );
            }
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment given");
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("generating TPC-H data at SF {sf} (seed {seed:#x}) ...");
    let runner = make_runner(sf, seed);
    let mut entries: Vec<JsonEntry> = Vec::new();
    for id in &ids {
        let t0 = ticks_now();
        match run_experiment_with_metrics(id, &runner, seed) {
            Some((report, metrics)) => {
                let wall = ticks_now().saturating_sub(t0);
                println!("{report}");
                entries.push((id.clone(), wall, metrics));
            }
            None => {
                eprintln!("unknown experiment: {id}");
                usage("");
            }
        }
    }
    if let Some(path) = json_path {
        let doc = json_report(sf, seed, &entries);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {path}");
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: repro <experiment|all> [--sf F] [--seed S] [--json PATH]");
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
    std::process::exit(2);
}
