//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment|all> [--sf F] [--seed S] [--json PATH]
//! repro compare OLD.json NEW.json [--threshold PCT]
//! repro query "<dsl>" [--sf F] [--limit N]
//! repro fuzz [--cases N] [--seed S] [--sf F]
//! repro analyze <query|all|"dsl"> [--sf F] [--budget BYTES]
//! repro mem <query|all|"dsl"> [--sf F] [--workers N] [--budget BYTES]
//!
//! experiments: table1 fig1 fig2 fig4 fig5 fig6 table4 fig8 fig10 table5
//!              tables6-10 table11 fig11 ablation scaling agg-scaling
//!              join-scaling
//! ```
//!
//! `query` runs one DSL pipeline (see DESIGN.md §10) against freshly
//! generated TPC-H data and prints the result table. `fuzz` runs the
//! differential plan fuzzer — random well-typed queries executed under
//! every worker/partition/vector-size configuration, results compared —
//! and exits nonzero on any divergence, printing the shrunk reproduction
//! and its `(seed, case)` line.
//!
//! TPC-H experiments default to scale factor 0.05 (≈300K lineitems); the
//! micro-benchmarks run on fixed synthetic data. Output goes to stdout;
//! absolute tick counts are host-specific, shapes and factors are the
//! reproduction targets (see EXPERIMENTS.md). `--json` additionally writes
//! a machine-readable report (per-experiment wall ticks + metrics) — the
//! artifact the CI bench-smoke job uploads as the bench baseline.
//!
//! `compare` diffs two such reports: it prints a per-experiment table and
//! exits nonzero when any experiment's `wall_ticks` regressed more than
//! the threshold (default 10%) — the CI job feeds it the previous
//! commit's artifact.

use ma_bench::experiments::{make_runner, run_experiment_with_metrics, ALL_EXPERIMENTS};
use ma_bench::report::{json_report, JsonEntry};
use ma_core::cycles::ticks_now;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        compare_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("query") {
        query_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        fuzz_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("analyze") {
        analyze_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("mem") {
        mem_main(&args[1..]);
    }
    let mut ids: Vec<String> = Vec::new();
    let mut sf = 0.05f64;
    let mut seed = 0xC0FFEEu64;
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                sf = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sf needs a number"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--json needs a path")),
                );
            }
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment given");
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("generating TPC-H data at SF {sf} (seed {seed:#x}) ...");
    let runner = make_runner(sf, seed);
    let mut entries: Vec<JsonEntry> = Vec::new();
    for id in &ids {
        let t0 = ticks_now();
        match run_experiment_with_metrics(id, &runner, seed) {
            Some((report, metrics)) => {
                let wall = ticks_now().saturating_sub(t0);
                println!("{report}");
                entries.push((id.clone(), wall, metrics));
            }
            None => {
                eprintln!("unknown experiment: {id}");
                usage("");
            }
        }
    }
    if let Some(path) = json_path {
        let doc = json_report(sf, seed, &entries);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote JSON report to {path}");
    }
}

/// `repro compare OLD.json NEW.json [--threshold PCT]` — never returns.
fn compare_main(args: &[String]) -> ! {
    let mut files: Vec<String> = Vec::new();
    let mut threshold = 0.10f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                let pct: f64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threshold needs a percentage"));
                threshold = pct / 100.0;
            }
            "--help" | "-h" => usage(""),
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    if files.len() != 2 {
        usage("compare needs exactly two report paths");
    }
    let load = |path: &str| -> ma_bench::compare::BenchReport {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        ma_bench::compare::parse_report(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(&files[0]);
    let new = load(&files[1]);
    if !ma_bench::compare::comparable(&old, &new) {
        // A changed --sf/--seed would make every delta meaningless; treat
        // it like a missing baseline rather than hard-failing on noise.
        eprintln!(
            "note: reports are not comparable (old: sf {} seed {}, new: sf {} seed {}); \
             skipping regression gate",
            old.sf, old.seed, new.sf, new.seed
        );
        std::process::exit(0);
    }
    let cmp = ma_bench::compare::compare(&old, &new, threshold);
    print!("{}", cmp.render());
    if cmp.any_regression() {
        eprintln!(
            "FAIL: at least one experiment regressed more than {:.0}%",
            threshold * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "OK: no experiment regressed more than {:.0}%",
        threshold * 100.0
    );
    std::process::exit(0);
}

/// `repro query "<dsl>" [--sf F] [--limit N]` — never returns.
fn query_main(args: &[String]) -> ! {
    use ma_vector::Vector;
    let mut text: Option<String> = None;
    let mut sf = 0.01f64;
    let mut limit = 20usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                sf = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sf needs a number"));
            }
            "--limit" => {
                i += 1;
                limit = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--limit needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other if text.is_none() => text = Some(other.to_string()),
            _ => usage("query takes exactly one DSL string"),
        }
        i += 1;
    }
    let text = text.unwrap_or_else(|| usage("query needs a DSL string"));
    eprintln!("generating TPC-H data at SF {sf} ...");
    let db = ma_tpch::TpchData::generate(sf, 0xDBD1);
    let plan = match ma_executor::frontend::plan_text(&text, &db) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let ctx = ma_executor::QueryContext::new(
        std::sync::Arc::new(ma_primitives::build_dictionary()),
        ma_executor::ExecConfig::fixed_default(),
    );
    let store = ma_executor::lower(&plan, &ctx)
        .and_then(|mut op| ma_executor::ops::materialize(op.as_mut()))
        .unwrap_or_else(|e| {
            eprintln!("execution error: {e}");
            std::process::exit(1);
        });
    let names: Vec<&str> = plan
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    println!("{}", names.join("\t"));
    let shown = store.rows().min(limit);
    for r in 0..shown {
        let row: Vec<String> = (0..names.len())
            .map(|c| match store.col(c) {
                Vector::I16(v) => v[r].to_string(),
                Vector::I32(v) => v[r].to_string(),
                Vector::I64(v) => v[r].to_string(),
                Vector::F64(v) => format!("{:.4}", v[r]),
                Vector::Str(s) => s.get(r).to_string(),
            })
            .collect();
        println!("{}", row.join("\t"));
    }
    if shown < store.rows() {
        println!("... ({} more rows)", store.rows() - shown);
    }
    eprintln!("{} rows", store.rows());
    std::process::exit(0);
}

/// `repro fuzz [--cases N] [--seed S] [--sf F]` — never returns.
fn fuzz_main(args: &[String]) -> ! {
    let mut cases = 500u64;
    let mut seed = 0xF022u64;
    let mut sf = 0.01f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => {
                i += 1;
                cases = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cases needs an integer"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--sf" => {
                i += 1;
                sf = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sf needs a number"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown fuzz option: {other}")),
        }
        i += 1;
    }
    eprintln!("generating TPC-H data at SF {sf} ...");
    let db = std::sync::Arc::new(ma_tpch::TpchData::generate(sf, 0xDBD1));
    let fuzzer = ma_tpch::fuzz::Fuzzer::new(db);
    eprintln!("fuzzing {cases} cases from seed {seed:#x} ...");
    let t0 = ticks_now();
    let report = fuzzer.run(seed, cases, |done, fails| {
        if done % 50 == 0 || done == cases {
            eprintln!("  {done}/{cases} cases, {fails} failure(s)");
        }
    });
    let _ = ticks_now().saturating_sub(t0);
    for f in &report.failures {
        println!("FAIL case {} (seed {:#x})", f.case, f.seed);
        println!("  query:     {}", f.query);
        println!("  minimized: {}", f.minimized);
        println!("  detail:    {}", f.detail);
    }
    if report.ok() {
        println!("OK: {cases} cases, all configurations agree");
        std::process::exit(0);
    }
    eprintln!("FAIL: {} of {cases} cases diverged", report.failures.len());
    std::process::exit(1);
}

/// `repro analyze <query|all|"dsl"> [--budget BYTES]` — runs the
/// abstract-interpretation pass over a plan and prints the derived
/// per-node facts (row bounds, column intervals, NDV caps, distinctness
/// proofs) plus any findings, followed by the memory/cost pass's proven
/// peak-byte report. Exits nonzero when a finding is a *hazard* (a
/// reachable runtime trap, the same class `verify` rejects) — or, when
/// `--budget` is given explicitly, when any plan's proven peak exceeds
/// it. Never returns.
fn analyze_main(args: &[String]) -> ! {
    let mut target: Option<String> = None;
    let mut sf = 0.01f64;
    let mut budget: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                sf = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sf needs a number"));
            }
            "--budget" => {
                i += 1;
                budget = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--budget needs a byte count")),
                );
            }
            "--help" | "-h" => usage(""),
            other if target.is_none() => target = Some(other.to_string()),
            _ => usage("analyze takes one query number, 'all', or a DSL string"),
        }
        i += 1;
    }
    let target =
        target.unwrap_or_else(|| usage("analyze needs a query number, 'all', or a DSL string"));
    eprintln!("generating TPC-H data at SF {sf} ...");
    let db = ma_tpch::TpchData::generate(sf, 0xDBD1);
    let queries: Vec<usize> = if target == "all" {
        (1..=22).collect()
    } else if let Ok(q) = target.parse::<usize>() {
        vec![q]
    } else {
        Vec::new()
    };
    let mut cfg = ma_executor::ExecConfig::fixed_default();
    if let Some(b) = budget {
        cfg = cfg.with_memory_budget(b);
    }
    let budget_is_gate = budget.is_some();
    let mut hazards = 0usize;
    let mut analyze_one = |title: &str, plan: &ma_executor::LogicalPlan| {
        println!("-- {title} --");
        println!("{}", ma_executor::analyze::render(plan));
        let a = ma_executor::analyze(plan);
        if a.errors.is_empty() {
            println!("analysis clean: no findings");
        } else {
            for e in &a.errors {
                let sev = if e.is_hazard() { "HAZARD" } else { "warning" };
                println!("{sev}: {e}");
            }
            hazards += a.errors.iter().filter(|e| e.is_hazard()).count();
        }
        let cost = ma_executor::cost(plan, &cfg);
        print!("{}", ma_executor::cost::render(&cost));
        println!();
        if budget_is_gate {
            hazards += cost.findings.len();
        }
    };
    if queries.is_empty() {
        let plan = match ma_executor::frontend::plan_text(&target, &db) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        analyze_one("query", &plan);
    } else {
        let params = ma_tpch::Params::default();
        for q in queries {
            let pb = ma_tpch::queries::query_plan(q, &db, &params).unwrap_or_else(|e| {
                eprintln!("Q{q}: {e}");
                std::process::exit(1);
            });
            let plan = pb.build().unwrap_or_else(|e| {
                eprintln!("Q{q}: {e}");
                std::process::exit(1);
            });
            analyze_one(&format!("Q{q}"), &plan);
        }
    }
    std::process::exit(if hazards > 0 { 1 } else { 0 });
}

/// `repro mem <query|all|"dsl"> [--sf F] [--workers N] [--budget BYTES]`
/// — the predicted-vs-actual memory sweep: prints the cost pass's proven
/// per-stage byte bounds for each plan, executes it, and compares every
/// tracked operator instance's recorded high-water resident bytes against
/// the bound the planner registered for it. Exits nonzero if any actual
/// exceeds its proven bound (a cost-model soundness bug). Never returns.
fn mem_main(args: &[String]) -> ! {
    let mut target: Option<String> = None;
    let mut sf = 0.01f64;
    let mut workers = 2usize;
    let mut budget: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                sf = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sf needs a number"));
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs an integer"));
            }
            "--budget" => {
                i += 1;
                budget = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--budget needs a byte count")),
                );
            }
            "--help" | "-h" => usage(""),
            other if target.is_none() => target = Some(other.to_string()),
            _ => usage("mem takes one query number, 'all', or a DSL string"),
        }
        i += 1;
    }
    let target =
        target.unwrap_or_else(|| usage("mem needs a query number, 'all', or a DSL string"));
    eprintln!("generating TPC-H data at SF {sf} ...");
    let db = ma_tpch::TpchData::generate(sf, 0xDBD1);
    let queries: Vec<usize> = if target == "all" {
        (1..=22).collect()
    } else if let Ok(q) = target.parse::<usize>() {
        vec![q]
    } else {
        Vec::new()
    };
    let mut cfg = ma_executor::ExecConfig::fixed_default().with_workers(workers);
    if let Some(b) = budget {
        cfg = cfg.with_memory_budget(b);
    }
    let dict = std::sync::Arc::new(ma_primitives::build_dictionary());
    let mut violations = 0usize;
    let mut mem_one = |title: &str, plan: &ma_executor::LogicalPlan| {
        println!("-- {title} --");
        let report = ma_executor::cost(plan, &cfg);
        print!("{}", ma_executor::cost::render(&report));
        let ctx = ma_executor::QueryContext::new(std::sync::Arc::clone(&dict), cfg.clone());
        let store = ma_executor::lower(plan, &ctx)
            .and_then(|mut op| ma_executor::ops::materialize(op.as_mut()))
            .unwrap_or_else(|e| {
                eprintln!("{title}: execution error: {e}");
                std::process::exit(1);
            });
        println!("  executed: {} result rows", store.rows());
        let reports = ctx.mem_reports();
        if reports.is_empty() {
            println!("  (no tracked operator instances in this plan)");
        }
        for r in &reports {
            let ok = r.high_water <= r.bound;
            if !ok {
                violations += 1;
            }
            println!(
                "  {:<28} bound {:>12}  actual {:>12}  {}",
                r.label,
                ma_executor::cost::fmt_bytes(r.bound),
                ma_executor::cost::fmt_bytes(r.high_water),
                if ok { "ok" } else { "EXCEEDED" },
            );
        }
        println!();
    };
    if queries.is_empty() {
        let plan = match ma_executor::frontend::plan_text(&target, &db) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        mem_one("query", &plan);
    } else {
        let params = ma_tpch::Params::default();
        for q in queries {
            let pb = ma_tpch::queries::query_plan(q, &db, &params).unwrap_or_else(|e| {
                eprintln!("Q{q}: {e}");
                std::process::exit(1);
            });
            let plan = pb.build().unwrap_or_else(|e| {
                eprintln!("Q{q}: {e}");
                std::process::exit(1);
            });
            mem_one(&format!("Q{q}"), &plan);
        }
    }
    if violations > 0 {
        eprintln!("FAIL: {violations} operator instance(s) exceeded their proven byte bound");
        std::process::exit(1);
    }
    println!("OK: every tracked instance stayed within its proven bound");
    std::process::exit(0);
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: repro <experiment|all> [--sf F] [--seed S] [--json PATH]");
    eprintln!("       repro compare OLD.json NEW.json [--threshold PCT]");
    eprintln!("       repro query \"<dsl>\" [--sf F] [--limit N]");
    eprintln!("       repro fuzz [--cases N] [--seed S] [--sf F]");
    eprintln!("       repro analyze <query|all|\"dsl\"> [--sf F] [--budget BYTES]");
    eprintln!("       repro mem <query|all|\"dsl\"> [--sf F] [--workers N] [--budget BYTES]");
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
    std::process::exit(2);
}
