//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <experiment|all> [--sf F] [--seed S]
//!
//! experiments: table1 fig1 fig2 fig4 fig5 fig6 table4 fig8 fig10 table5
//!              tables6-10 table11 fig11
//! ```
//!
//! TPC-H experiments default to scale factor 0.05 (≈300K lineitems); the
//! micro-benchmarks run on fixed synthetic data. Output goes to stdout;
//! absolute tick counts are host-specific, shapes and factors are the
//! reproduction targets (see EXPERIMENTS.md).

use ma_bench::experiments::{make_runner, run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut sf = 0.05f64;
    let mut seed = 0xC0FFEEu64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sf" => {
                i += 1;
                sf = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--sf needs a number"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage("no experiment given");
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("generating TPC-H data at SF {sf} (seed {seed:#x}) ...");
    let runner = make_runner(sf, seed);
    for id in &ids {
        match run_experiment(id, &runner, seed) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment: {id}");
                usage("");
            }
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: repro <experiment|all> [--sf F] [--seed S]");
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(" "));
    std::process::exit(2);
}
