//! Experiment registry: one entry per paper table/figure.

pub mod ablation;
pub mod agg_scaling;
pub mod compress;
pub mod demo;
pub mod join_scaling;
pub mod micro;
pub mod scaling;
pub mod tpch_exp;

use std::sync::Arc;

use ma_executor::FlavorAxis;
use ma_tpch::{Runner, TpchData};

/// All experiment identifiers, in paper order ("scaling", "agg-scaling",
/// "join-scaling" and "compress" are ours, not the paper's: the
/// parallel-executor thread sweep, the partitioned-aggregation sweep,
/// the partitioned-join-build sweep, and the compressed-storage
/// byte/tick comparison).
pub const ALL_EXPERIMENTS: [&str; 18] = [
    "table1",
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "table4",
    "fig8",
    "fig10",
    "table5",
    "tables6-10",
    "table11",
    "fig11",
    "ablation",
    "scaling",
    "agg-scaling",
    "join-scaling",
    "compress",
];

/// Runs one experiment by id, returning its report text.
///
/// `sf` scales the TPC-H experiments; micro-benchmarks ignore it. The
/// runner is shared so the database generates once per invocation.
pub fn run_experiment(id: &str, runner: &Runner, seed: u64) -> Option<String> {
    let all_queries: Vec<usize> = (1..=22).collect();
    Some(match id {
        "table1" => tpch_exp::table1(runner),
        "fig1" => micro::fig01(),
        "fig2" => tpch_exp::fig02(runner),
        "fig4" => tpch_exp::fig04(runner),
        "fig5" => micro::fig05(),
        "fig6" => micro::fig06(),
        "table4" => micro::table4(),
        "fig8" => micro::fig08(),
        "fig10" => demo::fig10(seed),
        "table5" => demo::table5(runner, &all_queries, seed),
        "tables6-10" => {
            let mut out = String::new();
            out.push_str(&tpch_exp::flavor_set_table(
                runner,
                "Table 6: (No-)Branching flavors",
                FlavorAxis::Branching,
                "branching",
                &["no_branching"],
                &all_queries,
            ));
            out.push('\n');
            out.push_str(&tpch_exp::flavor_set_table(
                runner,
                "Table 7: Compiler flavors",
                FlavorAxis::Compiler,
                "gcc",
                &["icc", "clang"],
                &all_queries,
            ));
            out.push('\n');
            out.push_str(&tpch_exp::flavor_set_table(
                runner,
                "Table 8: Loop Fission flavors",
                FlavorAxis::Fission,
                "fused",
                &["fission"],
                &all_queries,
            ));
            out.push('\n');
            out.push_str(&tpch_exp::flavor_set_table(
                runner,
                "Table 9: Full Computation flavors",
                FlavorAxis::FullComputation,
                "selective",
                &["full"],
                &all_queries,
            ));
            out.push('\n');
            out.push_str(&tpch_exp::flavor_set_table(
                runner,
                "Table 10: Hand-Unrolling flavors",
                FlavorAxis::Unrolling,
                "unroll8",
                &["no_unroll"],
                &all_queries,
            ));
            out
        }
        "table11" => tpch_exp::table11(runner, &all_queries),
        "fig11" => tpch_exp::fig11(runner),
        "scaling" => scaling::scaling(runner),
        "agg-scaling" => agg_scaling::agg_scaling(runner),
        "join-scaling" => join_scaling::join_scaling(runner),
        "compress" => compress::compress(runner),
        "ablation" => {
            let mut out = ablation::vector_size(runner);
            out.push('\n');
            out.push_str(&ablation::vw_params(seed));
            out.push('\n');
            out.push_str(&ablation::aph_buckets());
            out
        }
        _ => return None,
    })
}

/// Like [`run_experiment`], additionally returning numeric metrics for
/// machine-readable reports. Most experiments expose no metrics; "scaling"
/// exposes its per-worker-count power-run ticks.
pub fn run_experiment_with_metrics(
    id: &str,
    runner: &Runner,
    seed: u64,
) -> Option<(String, Vec<(String, f64)>)> {
    match id {
        "scaling" => {
            let points = scaling::measure(runner, &scaling::DEFAULT_THREADS);
            let metrics = points
                .iter()
                .map(|p| (format!("power_ticks_workers_{}", p.threads), p.ticks as f64))
                .collect();
            Some((scaling::render(&points), metrics))
        }
        "agg-scaling" => {
            let points = agg_scaling::measure(runner, &agg_scaling::DEFAULT_THREADS);
            let metrics = points
                .iter()
                .map(|p| {
                    let mode = if p.partitioned { "part" } else { "single" };
                    (
                        format!("agg_ticks_workers_{}_{mode}", p.threads),
                        p.ticks as f64,
                    )
                })
                .collect();
            Some((agg_scaling::render(&points), metrics))
        }
        "join-scaling" => {
            let points = join_scaling::measure(runner, &join_scaling::DEFAULT_THREADS);
            let metrics = points
                .iter()
                .map(|p| {
                    let mode = if p.partitioned { "part" } else { "single" };
                    (
                        format!("join_ticks_workers_{}_{mode}", p.threads),
                        p.ticks as f64,
                    )
                })
                .collect();
            Some((join_scaling::render(&points), metrics))
        }
        _ => run_experiment(id, runner, seed).map(|text| (text, Vec::new())),
    }
}

/// Builds the shared runner at a scale factor.
pub fn make_runner(sf: f64, seed: u64) -> Runner {
    Runner::new(Arc::new(TpchData::generate(sf, seed)))
}

/// True when two result checksums agree up to float-reassociation noise
/// (parallel execution reorders f64 additions). The single tolerance every
/// sweep's cross-validation uses.
pub fn checksums_match(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(1.0)
}
