//! Thread-scaling experiment: the TPC-H power run swept over scan worker
//! counts. Not a paper figure — it seeds the bench-baseline trajectory for
//! the parallel executor (sharded morsel scans + per-worker bandit state).

use ma_core::cycles::ticks_now;
use ma_executor::ExecConfig;
use ma_tpch::Runner;

/// One swept point: worker count and power-run wall ticks.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Scan worker threads.
    pub threads: usize,
    /// Wall ticks for the full 22-query power run.
    pub ticks: u64,
    /// Result checksum folded over all queries (cross-count validation).
    pub checksum: f64,
}

/// Worker counts swept by default.
pub const DEFAULT_THREADS: [usize; 3] = [1, 2, 4];

/// Runs one power run per worker count, returning `(threads, ticks)`
/// points. The first sweep entry is run once extra as warmup so data is
/// paged in before anything is timed.
pub fn measure(runner: &Runner, thread_counts: &[usize]) -> Vec<ScalingPoint> {
    let mut out = Vec::with_capacity(thread_counts.len());
    let mut warmed = false;
    for &threads in thread_counts {
        let config = ExecConfig::fixed_default().with_workers(threads);
        if !warmed {
            runner.power_run(&config).expect("warmup power run");
            warmed = true;
        }
        let t0 = ticks_now();
        let results = runner.power_run(&config).expect("power run");
        let ticks = ticks_now().saturating_sub(t0);
        let checksum = results.iter().map(|r| r.checksum).sum();
        out.push(ScalingPoint {
            threads,
            ticks,
            checksum,
        });
    }
    // Hard cross-validation: worker counts disagreeing on results at
    // bench scale must fail the run (and CI), not just print a note.
    if let Some(first) = out.first() {
        for p in &out[1..] {
            assert!(
                crate::experiments::checksums_match(first.checksum, p.checksum),
                "scaling checksum mismatch: {} workers gave {}, baseline {}",
                p.threads,
                p.checksum,
                first.checksum
            );
        }
    }
    out
}

/// Renders the sweep with speedups relative to 1 worker.
pub fn scaling(runner: &Runner) -> String {
    let points = measure(runner, &DEFAULT_THREADS);
    render(&points)
}

/// Text table for a measured sweep.
pub fn render(points: &[ScalingPoint]) -> String {
    let mut out = String::from("--- Scaling: power-run wall ticks by scan workers ---\n");
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("host hardware threads: {hw}\n"));
    if points.iter().any(|p| p.threads > hw) {
        out.push_str(
            "note: worker counts above the hardware thread count measure \
             oversubscription overhead, not speedup\n",
        );
    }
    let base = points.first().map_or(0, |p| p.ticks);
    out.push_str(&format!(
        "{:>8} {:>16} {:>9}\n",
        "workers", "wall ticks", "speedup"
    ));
    for p in points {
        let speedup = if p.ticks > 0 {
            base as f64 / p.ticks as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:>8} {:>16} {:>8.2}x\n",
            p.threads, p.ticks, speedup
        ));
    }
    if points.len() > 1 {
        let all_match = points
            .windows(2)
            .all(|w| crate::experiments::checksums_match(w[0].checksum, w[1].checksum));
        out.push_str(if all_match {
            "checksums: identical across worker counts\n"
        } else {
            "checksums: MISMATCH across worker counts\n"
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::make_runner;

    #[test]
    fn sweep_measures_and_validates() {
        let runner = make_runner(0.005, 0x5CA1E);
        let points = measure(&runner, &[1, 2]);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.ticks > 0));
        assert!(
            crate::experiments::checksums_match(points[0].checksum, points[1].checksum),
            "worker counts must agree on results"
        );
        let txt = render(&points);
        assert!(txt.contains("workers"));
        assert!(txt.contains("identical"));
    }
}
