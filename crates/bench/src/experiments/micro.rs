//! Micro-benchmark experiments: Fig. 1, Fig. 5, Fig. 6, Table 4, Fig. 8.
//!
//! Each prints two blocks: the **host measurement** (the real curve on the
//! machine running the experiment) and the **machine-model curves** for the
//! paper's four machines (the cross-hardware claim). Shapes and winner
//! changes are the reproduction target; absolute values are host-specific.

use ma_machsim::{costmodel, ALL_MACHINES, MACHINE1, MACHINE3, MACHINE4};
use ma_primitives::bloom::{
    sel_bloomfilter_fission, sel_bloomfilter_fused, sel_bloomfilter_prefetch, BloomFilter,
};
use ma_primitives::hashing::hash_u64;
use ma_primitives::map_arith::{
    map_col_col_clang, map_col_col_full, map_col_col_selective, map_col_col_unroll8,
};
use ma_primitives::merge::{mergejoin_i64_clang, mergejoin_i64_gcc, mergejoin_i64_icc};
use ma_primitives::ops::Lt;
use ma_primitives::ops::Mul;
use ma_primitives::selection::{sel_col_val_branching, sel_col_val_no_branching};

use crate::measure::{sel_vector, selective_data, ticks_per_tuple};
use crate::report::{render_curves, Series};

/// Fig. 1: (no-)branching selection cost vs selectivity.
pub fn fig01() -> String {
    let n = 64 * 1024;
    let mut out = String::from("=== Figure 1: (No-)Branching selection cost vs selectivity ===\n");
    let sels: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
    let mut host_br = Vec::new();
    let mut host_nobr = Vec::new();
    let mut res = vec![0u32; n];
    for &s in &sels {
        let (data, thr) = selective_data(n, s, 42);
        host_br.push(ticks_per_tuple(n as u64, 15, || {
            std::hint::black_box(sel_col_val_branching::<i32, Lt>(&mut res, &data, thr, None));
        }));
        host_nobr.push(ticks_per_tuple(n as u64, 15, || {
            std::hint::black_box(sel_col_val_no_branching::<i32, Lt>(
                &mut res, &data, thr, None,
            ));
        }));
    }
    let xs: Vec<String> = sels.iter().map(|s| format!("{:.0}%", s * 100.0)).collect();
    let mut series = vec![
        Series::new("host branching", host_br),
        Series::new("host no-branch", host_nobr),
    ];
    for m in [&MACHINE1, &MACHINE3] {
        series.push(Series::new(
            format!("{} br", m.name),
            sels.iter()
                .map(|&s| costmodel::branching_cost(m, s))
                .collect(),
        ));
        series.push(Series::new(
            format!("{} nobr", m.name),
            sels.iter()
                .map(|&s| costmodel::no_branching_cost(m, s))
                .collect(),
        ));
    }
    out.push_str(&render_curves("selectivity", &xs, &series));
    for m in &ALL_MACHINES {
        let (lo, hi) = costmodel::branching_crossovers(m);
        out.push_str(&format!(
            "{}: modelled cross-overs at {:.0}% and {:.0}%\n",
            m.name,
            lo * 100.0,
            hi * 100.0
        ));
    }
    out
}

/// Fig. 5: merge-join — the best compiler style depends on the machine.
pub fn fig05() -> String {
    let mut out =
        String::from("=== Figure 5: mergejoin — best compiler style depends on machine ===\n");
    // Host: 1M right keys against 500K unique left keys, vectors of 1024.
    let lkeys: Vec<i64> = (0..500_000).map(|i| i * 2).collect();
    let rkeys: Vec<i64> = (0..1_000_000).collect();
    let n = rkeys.len();
    let mut rpos = vec![0u32; 1024];
    let mut lidx = vec![0u32; 1024];
    let styles: [(&str, ma_primitives::MergeJoinFn); 3] = [
        ("gcc", mergejoin_i64_gcc),
        ("icc", mergejoin_i64_icc),
        ("clang", mergejoin_i64_clang),
    ];
    out.push_str("host measurement (ticks/tuple):\n");
    for (name, f) in styles {
        let t = ticks_per_tuple(n as u64, 7, || {
            let mut cursor = 0;
            for chunk in rkeys.chunks(1024) {
                std::hint::black_box(f(&mut cursor, &lkeys, chunk, None, &mut rpos, &mut lidx));
            }
        });
        out.push_str(&format!("  {name:<6} {t:>8.3}\n"));
    }
    out.push_str("machine models (cycles/tuple):\n");
    let xs: Vec<String> = vec!["gcc".into(), "icc".into(), "clang".into()];
    let series: Vec<Series> = [&MACHINE1, &MACHINE3, &MACHINE4]
        .iter()
        .map(|m| {
            Series::new(
                m.name,
                ["gcc", "icc", "clang"]
                    .iter()
                    .map(|s| costmodel::mergejoin_cost(m, s))
                    .collect(),
            )
        })
        .collect();
    out.push_str(&render_curves("style", &xs, &series));
    out
}

/// Fig. 6: bloom-filter loop-fission speedup vs filter size.
pub fn fig06() -> String {
    let mut out = String::from("=== Figure 6: sel_bloomfilter speedup with loop fission ===\n");
    let n = 64 * 1024;
    let hashes: Vec<u64> = (0..n as u64).map(|i| hash_u64(i * 2 + 1)).collect();
    let mut res = vec![0u32; 1024];
    let sizes: Vec<usize> = (12..=27).map(|p| 1usize << p).collect();
    let mut host = Vec::new();
    let mut host_pf = Vec::new();
    for &bytes in &sizes {
        let mut bf = BloomFilter::with_bytes(bytes);
        // ~1 key per 8 bits.
        for k in 0..(bytes as u64) {
            bf.insert_key(k * 7919);
        }
        let fused = ticks_per_tuple(n as u64, 5, || {
            for chunk in hashes.chunks(1024) {
                std::hint::black_box(sel_bloomfilter_fused(&mut res, &bf, chunk, None));
            }
        });
        let fission = ticks_per_tuple(n as u64, 5, || {
            for chunk in hashes.chunks(1024) {
                std::hint::black_box(sel_bloomfilter_fission(&mut res, &bf, chunk, None));
            }
        });
        let prefetch = ticks_per_tuple(n as u64, 5, || {
            for chunk in hashes.chunks(1024) {
                std::hint::black_box(sel_bloomfilter_prefetch(&mut res, &bf, chunk, None));
            }
        });
        host.push(fused / fission);
        host_pf.push(fused / prefetch);
    }
    let xs: Vec<String> = sizes.iter().map(|s| format!("{}K", s >> 10)).collect();
    let mut series = vec![
        Series::new("host fission", host),
        Series::new("host prefetch", host_pf),
    ];
    for m in &ALL_MACHINES {
        series.push(Series::new(
            m.name,
            sizes
                .iter()
                .map(|&b| costmodel::fission_speedup(m, b as u64))
                .collect(),
        ));
    }
    out.push_str(&render_curves("bloom size", &xs, &series));
    out
}

/// Table 4: hand vs compiler unrolling (cycles/tuple), machines 1 and 3.
pub fn table4() -> String {
    let mut out = String::from("=== Table 4: map_mul hand vs compiler unrolling ===\n");
    // Host: our concrete variants of the dense i32 multiply.
    let n = 64 * 1024;
    let a: Vec<i32> = (0..n as i32).collect();
    let b: Vec<i32> = (0..n as i32).map(|i| i.wrapping_mul(3)).collect();
    let mut res = vec![0i32; n];
    out.push_str("host (ticks/tuple):\n");
    for (name, f) in [
        (
            "selective (plain loop)",
            map_col_col_selective::<i32, Mul> as ma_primitives::MapColCol<i32>,
        ),
        ("full (dense/SIMD)", map_col_col_full::<i32, Mul>),
        ("hand unroll8", map_col_col_unroll8::<i32, Mul>),
        ("clang style (zip)", map_col_col_clang::<i32, Mul>),
    ] {
        let t = ticks_per_tuple(n as u64, 15, || {
            f(&mut res, &a, &b, None);
            std::hint::black_box(&res);
        });
        out.push_str(&format!("  {name:<24} {t:>8.3}\n"));
    }
    out.push_str("machine models (cycles/tuple):\n");
    out.push_str(&format!(
        "{:<22} {:>10} {:>14} {:>14} {:>12} {:>12}\n",
        "machine", "hand-u8", "simd+unroll", "no-simd+unrl", "simd", "neither"
    ));
    for m in &ALL_MACHINES {
        out.push_str(&format!(
            "{:<22} {:>10.2} {:>14.2} {:>14.2} {:>12.2} {:>12.2}\n",
            m.name,
            costmodel::unroll_table_cell(m, true, true, true),
            costmodel::unroll_table_cell(m, false, true, true),
            costmodel::unroll_table_cell(m, false, false, true),
            costmodel::unroll_table_cell(m, false, true, false),
            costmodel::unroll_table_cell(m, false, false, false),
        ));
    }
    out
}

/// Fig. 8: full-computation speedup vs input selectivity, per data type.
pub fn fig08() -> String {
    let mut out = String::from("=== Figure 8: map_mul full-computation speedup ===\n");
    let n = 16 * 1024;
    let densities: Vec<f64> = (1..=10).map(|i| i as f64 * 0.1).collect();
    let xs: Vec<String> = densities
        .iter()
        .map(|d| format!("{:.0}%", d * 100.0))
        .collect();

    fn host_curve<T: Copy + Default>(
        n: usize,
        densities: &[f64],
        data: &[T],
        selective: ma_primitives::MapColCol<T>,
        full: ma_primitives::MapColCol<T>,
    ) -> Vec<f64> {
        let mut res = vec![T::default(); n];
        densities
            .iter()
            .map(|&d| {
                let sel = sel_vector(n, d, 7);
                let t_sel = ticks_per_tuple(n as u64, 11, || {
                    selective(&mut res, data, data, Some(&sel));
                    std::hint::black_box(&res);
                });
                let t_full = ticks_per_tuple(n as u64, 11, || {
                    full(&mut res, data, data, Some(&sel));
                    std::hint::black_box(&res);
                });
                t_sel / t_full
            })
            .collect()
    }

    let d16: Vec<i16> = (0..n).map(|i| i as i16).collect();
    let d32: Vec<i32> = (0..n as i32).collect();
    let d64: Vec<i64> = (0..n as i64).collect();
    let mut series = vec![
        Series::new(
            "host i16",
            host_curve(
                n,
                &densities,
                &d16,
                map_col_col_selective::<i16, Mul>,
                map_col_col_full::<i16, Mul>,
            ),
        ),
        Series::new(
            "host i32",
            host_curve(
                n,
                &densities,
                &d32,
                map_col_col_selective::<i32, Mul>,
                map_col_col_full::<i32, Mul>,
            ),
        ),
        Series::new(
            "host i64",
            host_curve(
                n,
                &densities,
                &d64,
                map_col_col_selective::<i64, Mul>,
                map_col_col_full::<i64, Mul>,
            ),
        ),
    ];
    for (m, elem, label) in [
        (&MACHINE1, 4, "m1 i32"),
        (&MACHINE3, 4, "m3 i32"),
        (&MACHINE1, 2, "m1 i16"),
        (&MACHINE1, 8, "m1 i64"),
    ] {
        series.push(Series::new(
            label,
            densities
                .iter()
                .map(|&d| costmodel::full_speedup(m, elem, d))
                .collect(),
        ));
    }
    out.push_str(&render_curves("density", &xs, &series));
    out.push_str("modelled cross-over densities (full computation wins above):\n");
    for m in &ALL_MACHINES {
        out.push_str(&format!(
            "  {:<22} i16 {:>4.0}%  i32 {:>4.0}%  i64 {}\n",
            m.name,
            costmodel::full_crossover(m, 2) * 100.0,
            costmodel::full_crossover(m, 4) * 100.0,
            if costmodel::full_crossover(m, 8) >= 0.99 {
                "never".to_string()
            } else {
                format!("{:>4.0}%", costmodel::full_crossover(m, 8) * 100.0)
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_produces_curves_and_crossovers() {
        let txt = fig01();
        assert!(txt.contains("host branching"));
        assert!(txt.contains("cross-overs"));
        assert!(txt.lines().count() > 20);
    }

    #[test]
    fn fig05_lists_three_styles() {
        let txt = fig05();
        for s in ["gcc", "icc", "clang", "machine1", "machine3"] {
            assert!(txt.contains(s), "missing {s}");
        }
    }

    #[test]
    fn table4_has_all_machines() {
        let txt = table4();
        for m in ["machine1", "machine2", "machine3", "machine4"] {
            assert!(txt.contains(m));
        }
        assert!(txt.contains("hand unroll8"));
    }
}
