//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **vector size** — the paper's premise is that ~1K-tuple vectors make
//!   per-call measurement cheap *and* give the bandit enough signal; both
//!   degrade at the extremes (tuple-at-a-time ≈ 1, column-at-a-time ≈ ∞).
//! * **vw-greedy parameters** — explore/exploit period and explore length
//!   trade learning speed against steady-state overhead (§3.2's simulation
//!   sweep, rerun on the Fig. 10 non-stationary trace).
//! * **APH bucket budget** — fewer buckets = cheaper profiling but coarser
//!   OPT estimation.

use ma_core::policy::VwGreedyParams;
use ma_core::{simulate_instance, Aph, PolicyKind};
use ma_executor::{ExecConfig, FlavorAxis};
use ma_machsim::{fig10_trace, Fig10Spec};
use ma_tpch::Runner;

/// Vector-size ablation: Q6 and Q1 execute ticks under the adaptive engine
/// at several vector sizes.
pub fn vector_size(runner: &Runner) -> String {
    let mut out = String::from("=== Ablation: vector size (adaptive engine, median of 3) ===\n");
    out.push_str(&format!(
        "{:>12} {:>14} {:>14}\n",
        "vector size", "Q6 Mticks", "Q1 Mticks"
    ));
    for vs in [64usize, 256, 1024, 4096, 16384] {
        let run = |q: usize| -> f64 {
            let mut ticks: Vec<u64> = (0..3)
                .map(|i| {
                    let mut cfg = ExecConfig::adaptive(FlavorAxis::All).with_seed(7 ^ i);
                    cfg.vector_size = vs;
                    runner.run(q, cfg).expect("query").stages.execute
                })
                .collect();
            ticks.sort_unstable();
            ticks[1] as f64 / 1e6
        };
        out.push_str(&format!("{:>12} {:>14.1} {:>14.1}\n", vs, run(6), run(1)));
    }
    out.push_str(
        "(small vectors: per-call dispatch overhead dominates; huge vectors:\n fewer calls → slower adaptation and worse cache locality)\n",
    );
    out
}

/// vw-greedy parameter sweep on the Fig. 10 non-stationary trace.
pub fn vw_params(seed: u64) -> String {
    let mut out = String::from(
        "=== Ablation: vw-greedy parameters on the Fig. 10 trace (ratio to OPT) ===\n",
    );
    out.push_str(&format!(
        "{:>24} {:>12}\n",
        "(period,exploit,len)", "ratio/OPT"
    ));
    let tr = fig10_trace(&Fig10Spec::default(), seed);
    for (a, b, c) in [
        (256, 8, 2),
        (1024, 8, 2),
        (4096, 8, 2),
        (1024, 64, 8),
        (1024, 256, 32),
        (4096, 256, 32),
        (8192, 512, 64),
    ] {
        let params = VwGreedyParams {
            explore_period: a,
            exploit_period: b,
            explore_length: c,
        };
        let mut p = PolicyKind::VwGreedy(params).build(3, seed ^ 0xAB);
        let r = simulate_instance(&tr, p.as_mut());
        out.push_str(&format!(
            "{:>24} {:>12.3}\n",
            format!("({a},{b},{c})"),
            r.ratio_to_opt()
        ));
    }
    out.push_str(
        "(short explore periods adapt fastest but pay steady-state regret;\n long ones miss the mid-query flavor change)\n",
    );
    out
}

/// APH bucket-budget ablation: OPT estimate quality on a two-phase stream.
pub fn aph_buckets() -> String {
    let mut out = String::from("=== Ablation: APH bucket budget vs OPT fidelity ===\n");
    // Two flavors, each best in one half: exact OPT = 2 ticks/tuple.
    let calls = 100_000u64;
    let run = |buckets: usize| -> f64 {
        let mut a = Aph::new(buckets);
        let mut b = Aph::new(buckets);
        for t in 0..calls {
            let (ca, cb) = if t < calls / 2 { (2, 10) } else { (10, 2) };
            a.record(100, ca * 100);
            b.record(100, cb * 100);
        }
        let opt = Aph::opt_ticks(&[&a, &b]) as f64;
        let exact = (2 * 100 * calls) as f64;
        opt / exact
    };
    out.push_str(&format!("{:>10} {:>16}\n", "buckets", "OPT/exact"));
    for buckets in [4usize, 16, 64, 512, 4096] {
        out.push_str(&format!("{:>10} {:>16.4}\n", buckets, run(buckets)));
    }
    out.push_str("(the paper's 512 buckets recover the phase-wise optimum almost exactly)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_tpch::TpchData;
    use std::sync::Arc;

    #[test]
    fn vw_params_sweep_has_all_rows() {
        let txt = vw_params(3);
        assert!(txt.contains("(1024,256,32)"));
        assert!(txt.lines().count() >= 9);
    }

    #[test]
    fn aph_bucket_ablation_converges_with_budget() {
        let txt = aph_buckets();
        assert!(txt.contains("512"));
        // More buckets → OPT/exact closer to 1 than the 4-bucket case.
        let ratio_of = |buckets: &str| -> f64 {
            txt.lines()
                .find(|l| l.trim_start().starts_with(buckets))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap()
        };
        let coarse = (ratio_of("4") - 1.0).abs();
        let fine = (ratio_of("512") - 1.0).abs();
        assert!(fine <= coarse + 1e-9, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn vector_size_ablation_runs() {
        let runner = Runner::new(Arc::new(TpchData::generate(0.002, 0xAB1)));
        let txt = vector_size(&runner);
        assert!(txt.contains("1024"));
        assert!(txt.contains("16384"));
    }
}
