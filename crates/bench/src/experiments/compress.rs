//! Compressed-storage experiment: resident bytes and scan-side ticks,
//! encoded columns vs their raw twins. Not a paper figure — it
//! quantifies the storage layer added on top of the paper's kernels:
//! per-column compression ratios for every codec the table build
//! selected, and Q1/Q6/Q12 executed on both storage modes with the
//! decode-kernel ticks broken out (raw storage has no decode step, so
//! its scan cost is pure slicing and does not appear as primitive
//! ticks).

use ma_executor::ExecConfig;
use ma_tpch::{Runner, TpchData};
use ma_vector::encode::raw_bytes;
use ma_vector::{Encoding, Table};

/// One encoded column: its codec and both storage footprints.
#[derive(Debug, Clone)]
pub struct ColPoint {
    /// Owning table.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Codec the build selected.
    pub encoding: Encoding,
    /// Bytes of the uncompressed representation.
    pub raw: usize,
    /// Bytes resident under the selected codec.
    pub encoded: usize,
}

impl ColPoint {
    /// Compression ratio (raw / encoded); the build only keeps codecs
    /// that save space, so this is ≥ 1 by construction.
    pub fn ratio(&self) -> f64 {
        self.raw as f64 / (self.encoded.max(1)) as f64
    }
}

/// One query under both storage modes.
#[derive(Debug, Clone)]
pub struct QueryPoint {
    /// Query number.
    pub query: usize,
    /// Execute ticks on encoded storage.
    pub enc_ticks: u64,
    /// Ticks inside the decode primitives (subset of `enc_ticks`).
    pub decode_ticks: u64,
    /// Execute ticks on the raw twin.
    pub raw_ticks: u64,
    /// Checksums of both runs (must agree).
    pub checksums: (f64, f64),
}

/// Byte footprints for every column the build chose to encode.
pub fn measure_bytes(db: &TpchData) -> Vec<ColPoint> {
    let tables = [
        "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
    ];
    let mut out = Vec::new();
    for name in tables {
        let t: &Table = db.table(name).expect("static schema");
        for (i, col_name) in t.column_names().iter().enumerate() {
            let col = t.column_at(i);
            if let Some(encoding) = col.encoding() {
                out.push(ColPoint {
                    table: name.to_string(),
                    column: col_name.clone(),
                    encoding,
                    raw: raw_bytes(col),
                    encoded: col.resident_bytes(),
                });
            }
        }
    }
    out
}

/// Queries measured by default: the widest scan (Q1), the most
/// selective scan (Q6) and the two-table merge-join pipeline (Q12).
pub const DEFAULT_QUERIES: [usize; 3] = [1, 6, 12];

/// Runs each query on encoded storage and on the raw twin, with one
/// warmup pass per runner so page-in cost is not attributed to either
/// mode. Panics when the two storage modes disagree on a checksum —
/// compressed execution must be value-identical.
pub fn measure_queries(encoded: &Runner, raw: &Runner, queries: &[usize]) -> Vec<QueryPoint> {
    let cfg = ExecConfig::fixed_default();
    let mut out = Vec::with_capacity(queries.len());
    for &q in queries {
        encoded.run(q, cfg.clone()).expect("warmup");
        raw.run(q, cfg.clone()).expect("warmup");
        let e = encoded.run(q, cfg.clone()).expect("encoded run");
        let r = raw.run(q, cfg.clone()).expect("raw run");
        assert!(
            crate::experiments::checksums_match(e.checksum, r.checksum),
            "Q{q}: encoded checksum {} diverges from raw {}",
            e.checksum,
            r.checksum
        );
        out.push(QueryPoint {
            query: q,
            enc_ticks: e.stages.execute,
            decode_ticks: e.ticks_matching(|i| i.signature.starts_with("decode_")),
            raw_ticks: r.stages.execute,
            checksums: (e.checksum, r.checksum),
        });
    }
    out
}

/// Full experiment: byte table for every encoded column, then the
/// Q1/Q6/Q12 tick comparison. The raw twin is derived from the
/// encoded database by decoding every column, so both runs see
/// value-identical data.
pub fn compress(runner: &Runner) -> String {
    let cols = measure_bytes(runner.db());
    let raw_runner = Runner::new(std::sync::Arc::new(runner.db().decode_all()));
    let queries = measure_queries(runner, &raw_runner, &DEFAULT_QUERIES);
    render(&cols, &queries)
}

/// Text tables for the measured footprints and query runs.
pub fn render(cols: &[ColPoint], queries: &[QueryPoint]) -> String {
    let mut out = String::from("--- Compress: encoded columns vs raw storage ---\n");
    out.push_str(&format!(
        "{:<10} {:<16} {:>6} {:>12} {:>12} {:>7}\n",
        "table", "column", "codec", "raw bytes", "enc bytes", "ratio"
    ));
    let (mut raw_total, mut enc_total) = (0usize, 0usize);
    for c in cols {
        raw_total += c.raw;
        enc_total += c.encoded;
        out.push_str(&format!(
            "{:<10} {:<16} {:>6} {:>12} {:>12} {:>6.2}x\n",
            c.table,
            c.column,
            c.encoding.to_string(),
            c.raw,
            c.encoded,
            c.ratio()
        ));
    }
    out.push_str(&format!(
        "{:<10} {:<16} {:>6} {:>12} {:>12} {:>6.2}x\n",
        "total",
        "(encoded cols)",
        "",
        raw_total,
        enc_total,
        raw_total as f64 / (enc_total.max(1)) as f64
    ));
    out.push_str("\n--- Compress: query ticks, encoded vs raw storage ---\n");
    out.push_str(&format!(
        "{:>5} {:>16} {:>16} {:>16} {:>10}\n",
        "query", "enc ticks", "decode ticks", "raw ticks", "enc/raw"
    ));
    for p in queries {
        let rel = if p.raw_ticks > 0 {
            p.enc_ticks as f64 / p.raw_ticks as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:>5} {:>16} {:>16} {:>16} {:>9.2}x\n",
            format!("Q{}", p.query),
            p.enc_ticks,
            p.decode_ticks,
            p.raw_ticks,
            rel
        ));
    }
    let all_match = queries
        .iter()
        .all(|p| crate::experiments::checksums_match(p.checksums.0, p.checksums.1));
    out.push_str(if all_match {
        "checksums: identical across storage modes\n"
    } else {
        "checksums: MISMATCH across storage modes\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::make_runner;

    #[test]
    fn byte_table_hits_target_ratios() {
        // The acceptance bar for the storage layer: at least one
        // string-heavy (dict) column and one clustered-key (delta)
        // column compress ≥ 2×, and every kept codec saves space.
        let runner = make_runner(0.01, 0xC0B5);
        let cols = measure_bytes(runner.db());
        assert!(!cols.is_empty());
        assert!(cols.iter().all(|c| c.ratio() > 1.0), "{cols:?}");
        let best = |e: Encoding| {
            cols.iter()
                .filter(|c| c.encoding == e)
                .map(|c| c.ratio())
                .fold(0.0f64, f64::max)
        };
        assert!(
            best(Encoding::Dict) >= 2.0,
            "dict best: {}",
            best(Encoding::Dict)
        );
        assert!(
            best(Encoding::Delta) >= 2.0,
            "delta best: {}",
            best(Encoding::Delta)
        );
    }

    #[test]
    fn queries_agree_across_storage_modes() {
        let runner = make_runner(0.005, 0xC0B5);
        let raw = ma_tpch::Runner::new(std::sync::Arc::new(runner.db().decode_all()));
        let points = measure_queries(&runner, &raw, &DEFAULT_QUERIES);
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.enc_ticks > 0 && p.raw_ticks > 0));
        // Encoded scans must actually go through the decode kernels.
        assert!(
            points.iter().all(|p| p.decode_ticks > 0),
            "decode primitives unused"
        );
        let txt = render(&measure_bytes(runner.db()), &points);
        assert!(txt.contains("identical across storage modes"));
        assert!(txt.contains("ratio"));
    }
}
