//! TPC-H based experiments: Table 1, Fig. 2, Fig. 4, Tables 6–10,
//! Table 11, Fig. 11.

use std::sync::Arc;

use ma_core::cycles::ticks_now;
use ma_core::Aph;
use ma_executor::ops::{collect, ProjItem, Project, Scan, Select};
use ma_executor::{
    BoxOp, CmpKind, ExecConfig, FlavorAxis, InstanceReport, Pred, QueryContext, StageProfile, Value,
};
use ma_tpch::{geometric_mean, Runner};

use crate::report::render_aph_series;

/// Table 1: ticks per execution stage for
/// `SELECT l_orderkey FROM lineitem WHERE l_quantity < 40`.
pub fn table1(runner: &Runner) -> String {
    let mut out = String::from(
        "=== Table 1: time per execution stage (SELECT l_orderkey WHERE l_quantity < 40) ===\n",
    );
    let dict = Arc::clone(runner.dictionary());
    let ctx = QueryContext::new(dict, ExecConfig::fixed_default());

    // preprocess: plan construction
    let t0 = ticks_now();
    let scan: BoxOp = Box::new(
        Scan::new(
            Arc::clone(&runner.db().lineitem),
            &["l_quantity", "l_orderkey"],
            ctx.vector_size(),
        )
        .expect("lineitem columns"),
    );
    let sel = Select::new(
        scan,
        &Pred::cmp_val(0, CmpKind::Lt, Value::I32(40)),
        &ctx,
        "T1/sel",
    )
    .expect("predicate");
    let mut proj: BoxOp = Box::new(
        Project::new(Box::new(sel), vec![ProjItem::Pass(1)], &ctx, "T1/out").expect("projection"),
    );
    let preprocess = ticks_now().saturating_sub(t0);

    // execute: the pull loop
    let t1 = ticks_now();
    let chunks = collect(proj.as_mut()).expect("execution");
    let execute = ticks_now().saturating_sub(t1);

    // postprocess: result counting/assembly
    let t2 = ticks_now();
    let rows: usize = chunks.iter().map(ma_vector::DataChunk::live_count).sum();
    let postprocess = ticks_now().saturating_sub(t2);

    // Instance stats publish at batch granularity; drop the plan so the
    // final partial batch lands before the primitive-tick readout.
    drop(proj);
    let stages = StageProfile {
        preprocess,
        execute,
        primitives: ctx.total_primitive_ticks(),
        postprocess,
    };
    out.push_str(&stages.render());
    out.push_str(&format!("({rows} qualifying tuples)\n"));
    out
}

/// Fig. 2: (no-)branching selection APHs across the Q12 date predicate —
/// a long 100% plateau collapsing to 0% at the end, thanks to the
/// date-clustered storage.
pub fn fig02(runner: &Runner) -> String {
    let mut out =
        String::from("=== Figure 2: (No-)Branching cost during the Q12 date selection ===\n");
    let p = runner.params();
    let (ge_day, lt_day) = (p.q12_date, crate::dates_add_year(p.q12_date));
    let mut series = Vec::new();
    for flavor in ["branching", "no_branching"] {
        let ctx = QueryContext::new(Arc::clone(runner.dictionary()), ExecConfig::fixed(flavor));
        let scan: BoxOp = Box::new(
            Scan::new(
                Arc::clone(&runner.db().lineitem),
                &["l_receiptdate"],
                ctx.vector_size(),
            )
            .expect("lineitem"),
        );
        // First conjunct narrows; the second (the plotted instance) then
        // sees ~100% selectivity for most of the query, dropping at the end.
        let sel = Select::new(
            scan,
            &Pred::And(vec![
                Pred::cmp_val(0, CmpKind::Ge, Value::I32(ge_day)),
                Pred::cmp_val(0, CmpKind::Lt, Value::I32(lt_day)),
            ]),
            &ctx,
            "F2",
        )
        .expect("predicate");
        let mut op: BoxOp = Box::new(sel);
        while op.next().expect("run").is_some() {}
        // Instance stats publish at batch granularity; drop the plan so
        // the final partial batch lands before reading reports.
        drop(op);
        let report = ctx
            .reports()
            .into_iter()
            .find(|r| r.signature.starts_with("sel_lt_i32"))
            .expect("the < instance");
        let aph = report.aph.expect("APH collected");
        series.push((flavor.to_string(), aph.series()));
    }
    out.push_str(&render_aph_series(
        "cycles/tuple vs call number",
        &series,
        32,
    ));
    out
}

/// Helper: runs one query under several configs and extracts the APH series
/// of the first instance matching `pick`.
fn aph_for_configs(
    runner: &Runner,
    query: usize,
    configs: &[(&str, ExecConfig)],
    pick: impl Fn(&InstanceReport) -> bool,
) -> Vec<(String, Vec<(u64, f64)>)> {
    configs
        .iter()
        .map(|(name, cfg)| {
            let r = runner.run(query, cfg.clone()).expect("query run");
            let inst = r
                .instances
                .into_iter()
                .find(&pick)
                .unwrap_or_else(|| panic!("Q{query}: no instance matched for {name}"));
            (name.to_string(), inst.aph.expect("APH collected").series())
        })
        .collect()
}

/// A boxed instance-report predicate used by the figure case tables.
type Pick = Box<dyn Fn(&InstanceReport) -> bool>;

/// Fig. 4: compiler-style APHs for five sample primitive instances.
pub fn fig04(runner: &Runner) -> String {
    let mut out = String::from("=== Figure 4: compiler-style differences, sample APHs ===\n");
    let styles = || -> Vec<(&'static str, ExecConfig)> {
        vec![
            ("gcc", ExecConfig::fixed("gcc")),
            ("icc", ExecConfig::fixed("icc")),
            ("clang", ExecConfig::fixed("clang")),
        ]
    };
    let cases: Vec<(&str, usize, Pick)> = vec![
        (
            "(a) Q1 Projection(map_add_f64)",
            1,
            Box::new(|r| r.signature.starts_with("map_add_f64")),
        ),
        (
            "(b) Q1 Aggregation(aggr_sum128_i64)",
            1,
            Box::new(|r| r.signature == "aggr_sum128_i64_col"),
        ),
        (
            "(c) Q12 MergeJoin(mergejoin_i64)",
            12,
            Box::new(|r| r.signature.starts_with("mergejoin")),
        ),
        (
            "(d) Q12 fetch(map_fetch_str)",
            12,
            Box::new(|r| r.signature.starts_with("map_fetch_str")),
        ),
        (
            "(e) Q16 Aggregation(hash_insertcheck_str)",
            16,
            Box::new(|r| r.signature == "hash_insertcheck_str_col"),
        ),
    ];
    for (title, q, pick) in cases {
        let series = aph_for_configs(runner, q, &styles(), pick);
        out.push_str(&render_aph_series(title, &series, 24));
    }
    out
}

/// Whether an instance belongs to the flavor set of `axis` (mirrors the
/// registry's flavor registration).
pub fn affected(axis: FlavorAxis, sig: &str) -> bool {
    let is_numeric_sel =
        sig.starts_with("sel_") && !sig.contains("str") && sig != "sel_bloomfilter";
    let is_arith_map = ["map_add_", "map_sub_", "map_mul_", "map_div_"]
        .iter()
        .any(|p| sig.starts_with(p));
    match axis {
        FlavorAxis::Branching => {
            sig.starts_with("sel_") && !sig.contains("like") && sig != "sel_bloomfilter"
        }
        FlavorAxis::Compiler => {
            is_numeric_sel
                || is_arith_map
                || sig.starts_with("map_fetch_")
                || sig.starts_with("map_hash_")
                || sig.starts_with("aggr_sum")
                || sig.starts_with("aggr0_sum")
                || sig == "aggr_count"
                || sig.starts_with("hash_insertcheck")
                || sig.starts_with("mergejoin")
        }
        FlavorAxis::Fission => sig == "sel_bloomfilter",
        FlavorAxis::FullComputation => {
            is_arith_map && (!sig.starts_with("map_div_") || sig.contains("f64"))
        }
        FlavorAxis::Unrolling => {
            (is_arith_map || is_numeric_sel) && sig.contains("col_val")
                || is_arith_map && sig.contains("col_col")
        }
        FlavorAxis::Default | FlavorAxis::All => true,
    }
}

/// One of Tables 6–10: runs the full workload with each fixed flavor of the
/// set, with Micro Adaptivity on the axis, and reports improvement factors
/// over the baseline plus the bucket-wise OPT.
pub fn flavor_set_table(
    runner: &Runner,
    title: &str,
    axis: FlavorAxis,
    baseline: &'static str,
    alternatives: &[&'static str],
    queries: &[usize],
) -> String {
    let run_fixed = |flavor: &'static str| -> Vec<Vec<InstanceReport>> {
        queries
            .iter()
            .map(|&q| {
                runner
                    .run(q, ExecConfig::fixed(flavor))
                    .unwrap_or_else(|e| panic!("Q{q}: {e}"))
                    .instances
            })
            .collect()
    };
    let base_runs = run_fixed(baseline);
    let alt_runs: Vec<(&str, Vec<Vec<InstanceReport>>)> =
        alternatives.iter().map(|&a| (a, run_fixed(a))).collect();
    let adaptive_runs: Vec<Vec<InstanceReport>> = queries
        .iter()
        .map(|&q| {
            runner
                .run(q, ExecConfig::adaptive(axis))
                .unwrap_or_else(|e| panic!("Q{q}: {e}"))
                .instances
        })
        .collect();

    let affected_ticks = |runs: &[Vec<InstanceReport>]| -> u64 {
        runs.iter()
            .flat_map(|insts| insts.iter())
            .filter(|i| affected(axis, &i.signature))
            .map(|i| i.ticks)
            .sum()
    };
    let total_base: u64 = base_runs
        .iter()
        .flat_map(|insts| insts.iter())
        .map(|i| i.ticks)
        .sum();
    let base_ticks = affected_ticks(&base_runs);
    let pct = base_ticks as f64 / total_base.max(1) as f64 * 100.0;

    // OPT: bucket-wise minimum across the fixed-flavor runs, per instance.
    let mut opt_ticks = 0u64;
    for (qi, base_insts) in base_runs.iter().enumerate() {
        for (ii, bi) in base_insts.iter().enumerate() {
            if !affected(axis, &bi.signature) {
                continue;
            }
            let mut aphs: Vec<&Aph> = Vec::new();
            if let Some(a) = &bi.aph {
                aphs.push(a);
            }
            for (_, ar) in &alt_runs {
                if let Some(inst) = ar[qi].get(ii) {
                    if let (Some(a), true) =
                        (&inst.aph, inst.calls == bi.calls && inst.label == bi.label)
                    {
                        aphs.push(a);
                    }
                }
            }
            opt_ticks += if aphs.len() > 1 {
                Aph::opt_ticks(&aphs)
            } else {
                bi.ticks
            };
        }
    }

    let mut factors: Vec<(String, f64)> = Vec::new();
    for (name, runs) in &alt_runs {
        let t = affected_ticks(runs);
        factors.push((
            format!("Always {name}"),
            base_ticks as f64 / t.max(1) as f64,
        ));
    }
    factors.push((
        "Micro Adaptive".into(),
        base_ticks as f64 / affected_ticks(&adaptive_runs).max(1) as f64,
    ));
    factors.push(("OPT".into(), base_ticks as f64 / opt_ticks.max(1) as f64));

    crate::report::render_factor_table(
        title,
        &format!("Always {baseline} (baseline)"),
        base_ticks,
        pct,
        &factors,
    )
}

/// Table 11: per-query improvement of Heuristics and Micro Adaptivity over
/// the stock engine, plus the geometric mean.
pub fn table11(runner: &Runner, queries: &[usize]) -> String {
    let mut out =
        String::from("=== Table 11: TPC-H per query — heuristics vs Micro Adaptivity ===\n");
    out.push_str(&format!(
        "{:<6} {:>14} {:>12} {:>14}\n",
        "query", "base Mticks", "Heuristics", "MicroAdaptive"
    ));
    let mut hf = Vec::new();
    let mut af = Vec::new();
    // Each (query, config) runs three times; the median execute time is
    // used, like any sane wall-clock comparison.
    let median_run = |q: usize, cfg: &ExecConfig| -> (u64, f64) {
        let mut runs: Vec<_> = (0..3)
            .map(|i| {
                runner
                    .run(q, cfg.clone().with_seed(cfg.seed ^ i))
                    .unwrap_or_else(|e| panic!("Q{q}: {e}"))
            })
            .collect();
        runs.sort_by_key(|r| r.stages.execute);
        let mid = runs.swap_remove(1);
        (mid.stages.execute, mid.checksum)
    };
    for &q in queries {
        let (base_t, base_ck) = median_run(q, &ExecConfig::fixed_default());
        let (heur_t, heur_ck) = median_run(q, &ExecConfig::heuristic());
        let (adapt_t, adapt_ck) = median_run(q, &ExecConfig::adaptive(FlavorAxis::All));
        // Results must agree regardless of configuration.
        let tol = 1e-6 * base_ck.abs().max(1.0);
        assert!(
            (base_ck - heur_ck).abs() <= tol && (base_ck - adapt_ck).abs() <= tol,
            "Q{q}: configs disagree on results"
        );
        let h = base_t as f64 / heur_t.max(1) as f64;
        let a = base_t as f64 / adapt_t.max(1) as f64;
        hf.push(h);
        af.push(a);
        out.push_str(&format!(
            "Q{q:<5} {:>14.1} {:>12.2} {:>14.2}\n",
            base_t as f64 / 1e6,
            h,
            a
        ));
    }
    out.push_str(&format!(
        "{:<6} {:>14} {:>12.2} {:>14.2}\n",
        "GeoAvg",
        "",
        geometric_mean(&hf),
        geometric_mean(&af)
    ));
    out
}

/// Fig. 11: micro-adaptive execution tracking the per-bucket minimum —
/// five sample instances, one per flavor set.
pub fn fig11(runner: &Runner) -> String {
    let mut out = String::from("=== Figure 11: Micro Adaptive sample APHs ===\n");
    let cases: Vec<(&str, usize, FlavorAxis, Vec<&'static str>, Pick)> = vec![
        (
            "(a) Q14 Selection — branching set",
            14,
            FlavorAxis::Branching,
            vec!["branching", "no_branching"],
            Box::new(|r| r.signature.starts_with("sel_ge_i32")),
        ),
        (
            "(b) Q7 Selection — compiler set",
            7,
            FlavorAxis::Compiler,
            vec!["gcc", "icc", "clang"],
            Box::new(|r| r.signature.starts_with("sel_ge_i32")),
        ),
        (
            "(c) Q1 Projection — full computation set",
            1,
            FlavorAxis::FullComputation,
            vec!["selective", "full"],
            Box::new(|r| r.signature.starts_with("map_mul_f64")),
        ),
        (
            "(d) Q21 HashJoin — bloom fission set",
            21,
            FlavorAxis::Fission,
            vec!["fused", "fission"],
            Box::new(|r| r.signature == "sel_bloomfilter"),
        ),
        (
            "(e) Q7 Selection — unrolling set",
            7,
            FlavorAxis::Unrolling,
            vec!["unroll8", "no_unroll"],
            Box::new(|r| r.signature.starts_with("sel_ge_i32")),
        ),
    ];
    for (title, q, axis, flavors, pick) in cases {
        let mut configs: Vec<(&str, ExecConfig)> =
            flavors.iter().map(|&f| (f, ExecConfig::fixed(f))).collect();
        configs.push(("micro adaptive", ExecConfig::adaptive(axis)));
        let series = aph_for_configs(runner, q, &configs, pick);
        out.push_str(&render_aph_series(title, &series, 24));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_tpch::TpchData;
    use std::sync::OnceLock;

    fn runner() -> &'static Runner {
        static R: OnceLock<Runner> = OnceLock::new();
        R.get_or_init(|| Runner::new(Arc::new(TpchData::generate(0.004, 0xBE))))
    }

    #[test]
    fn table1_execute_dominates() {
        let txt = table1(runner());
        assert!(txt.contains("preprocess"));
        assert!(txt.contains("qualifying tuples"));
    }

    #[test]
    fn fig02_has_both_flavors() {
        let txt = fig02(runner());
        assert!(txt.contains("branching"));
        assert!(txt.contains("no_branching"));
    }

    #[test]
    fn affected_rules_are_disjoint_where_expected() {
        assert!(affected(FlavorAxis::Branching, "sel_lt_i32_col_val"));
        assert!(!affected(FlavorAxis::Branching, "sel_bloomfilter"));
        assert!(!affected(FlavorAxis::Branching, "sel_like_str_col_val"));
        assert!(affected(FlavorAxis::Fission, "sel_bloomfilter"));
        assert!(!affected(FlavorAxis::Fission, "sel_lt_i32_col_val"));
        assert!(affected(FlavorAxis::FullComputation, "map_mul_i64_col_col"));
        assert!(!affected(
            FlavorAxis::FullComputation,
            "map_div_i64_col_col"
        ));
        assert!(affected(FlavorAxis::FullComputation, "map_div_f64_col_col"));
        assert!(affected(FlavorAxis::Compiler, "mergejoin_i64_col_i64_col"));
        assert!(!affected(FlavorAxis::Compiler, "map_cast_i32_i64"));
        assert!(affected(FlavorAxis::Unrolling, "map_mul_i64_col_col"));
        assert!(!affected(FlavorAxis::Unrolling, "sel_eq_str_col_val"));
    }

    #[test]
    fn flavor_set_table_q6_branching() {
        let txt = flavor_set_table(
            runner(),
            "Table 6 (Q6 only)",
            FlavorAxis::Branching,
            "branching",
            &["no_branching"],
            &[6],
        );
        assert!(txt.contains("Always no_branching"));
        assert!(txt.contains("Micro Adaptive"));
        assert!(txt.contains("OPT"));
    }

    #[test]
    fn table11_subset_runs_and_checks_results() {
        let txt = table11(runner(), &[1, 6]);
        assert!(txt.contains("GeoAvg"));
        assert!(txt.contains("Q1"));
    }
}
