//! Join-scaling experiment: join-heavy TPC-H queries swept over worker
//! counts, with partitioned hash-join builds on and off. Not a paper
//! figure — it tracks the second Amdahl gap the unified exchange closes:
//! with `single` builds every hash join serializes its build (and its
//! probe stream) behind one instance; with `partitioned` builds the
//! two-lane hash-partitioning exchange runs P private build tables whose
//! probe work scales with the workers.
//!
//! **Hardware caveat:** on a 1-hardware-thread container (the CI runner)
//! this sweep measures routing/oversubscription overhead, not speedup —
//! the render notes the host's thread count; re-run on a multi-core box
//! for the real curve (EXPERIMENTS.md).

use ma_core::cycles::ticks_now;
use ma_executor::ExecConfig;
use ma_tpch::Runner;

/// Join-heavy queries swept (multi-join pipelines over large inputs).
pub const JOIN_QUERIES: [usize; 4] = [3, 9, 10, 18];

/// Worker counts swept by default.
pub const DEFAULT_THREADS: [usize; 3] = [1, 2, 4];

/// One swept point.
#[derive(Debug, Clone, Copy)]
pub struct JoinScalingPoint {
    /// Scan worker threads.
    pub threads: usize,
    /// Whether hash-join builds were allowed to partition.
    pub partitioned: bool,
    /// Wall ticks for the query subset.
    pub ticks: u64,
    /// Result checksum folded over the subset (cross-config validation).
    pub checksum: f64,
}

/// Runs the query subset per `(worker count, partitioning)` combination.
/// The first combination runs once extra as warmup so data is paged in
/// before anything is timed.
pub fn measure(runner: &Runner, thread_counts: &[usize]) -> Vec<JoinScalingPoint> {
    let mut out = Vec::with_capacity(2 * thread_counts.len());
    let mut warmed = false;
    for &threads in thread_counts {
        for partitioned in [false, true] {
            // `join_partitions = 1` pins every join to a single instance;
            // `0` lets the planner partition to the worker count.
            // Aggregation keeps its default in both modes so the only
            // delta between the curves is the join strategy.
            let config = ExecConfig::fixed_default()
                .with_workers(threads)
                .with_join_partitions(if partitioned { 0 } else { 1 });
            if !warmed {
                run_subset(runner, &config).expect("warmup run");
                warmed = true;
            }
            let t0 = ticks_now();
            let checksum = run_subset(runner, &config).expect("join-scaling run");
            let ticks = ticks_now().saturating_sub(t0);
            out.push(JoinScalingPoint {
                threads,
                partitioned,
                ticks,
                checksum,
            });
        }
    }
    // Hard cross-validation: a partitioned-vs-single result divergence at
    // bench scale must fail the run (and CI), not just print a note — no
    // correctness test runs at these scale factors.
    if let Some(first) = out.first() {
        for p in &out[1..] {
            assert!(
                crate::experiments::checksums_match(first.checksum, p.checksum),
                "join-scaling checksum mismatch: {} workers {} gave {}, baseline {}",
                p.threads,
                if p.partitioned {
                    "partitioned"
                } else {
                    "single"
                },
                p.checksum,
                first.checksum
            );
        }
    }
    out
}

fn run_subset(runner: &Runner, config: &ExecConfig) -> Result<f64, ma_executor::ExecError> {
    let mut checksum = 0.0;
    for &q in &JOIN_QUERIES {
        checksum += runner.run(q, config.clone())?.checksum;
    }
    Ok(checksum)
}

/// Renders the sweep with speedups relative to 1-worker single builds.
pub fn render(points: &[JoinScalingPoint]) -> String {
    let mut out =
        String::from("--- Join scaling: join-heavy queries (Q3, Q9, Q10, Q18) by workers ---\n");
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("host hardware threads: {hw}\n"));
    if points.iter().any(|p| p.threads > hw) {
        out.push_str(
            "note: worker counts above the hardware thread count measure \
             oversubscription overhead, not speedup\n",
        );
    }
    let base = points.first().map_or(0, |p| p.ticks);
    out.push_str(&format!(
        "{:>8} {:>12} {:>16} {:>9}\n",
        "workers", "join builds", "wall ticks", "speedup"
    ));
    for p in points {
        let speedup = if p.ticks > 0 {
            base as f64 / p.ticks as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:>8} {:>12} {:>16} {:>8.2}x\n",
            p.threads,
            if p.partitioned {
                "partitioned"
            } else {
                "single"
            },
            p.ticks,
            speedup
        ));
    }
    if points.len() > 1 {
        let all_match = points
            .windows(2)
            .all(|w| crate::experiments::checksums_match(w[0].checksum, w[1].checksum));
        out.push_str(if all_match {
            "checksums: identical across worker counts and join-build modes\n"
        } else {
            "checksums: MISMATCH across configurations\n"
        });
    }
    out
}

/// Runs the default sweep and renders it.
pub fn join_scaling(runner: &Runner) -> String {
    render(&measure(runner, &DEFAULT_THREADS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::make_runner;

    #[test]
    fn sweep_measures_and_validates() {
        let runner = make_runner(0.005, 0x5CA1E);
        let points = measure(&runner, &[1, 2]);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.ticks > 0));
        for w in points.windows(2) {
            assert!(
                crate::experiments::checksums_match(w[0].checksum, w[1].checksum),
                "configurations must agree on results"
            );
        }
        let txt = render(&points);
        assert!(txt.contains("partitioned"));
        assert!(txt.contains("identical"));
    }
}
