//! Trace-driven experiments: Fig. 10 (vw-greedy demonstration) and
//! Table 5 (MAB algorithm comparison on recorded TPC-H traces).

use ma_core::policy::VwGreedyParams;
use ma_core::{simulate_workload, InstanceTrace, PolicyKind, ScoreBoard, SimScore};
use ma_executor::ExecConfig;
use ma_machsim::{fig10_trace, Fig10Spec};
use ma_tpch::Runner;

use crate::report::render_aph_series;

/// Fig. 10: vw-greedy on the three-flavor non-stationary scenario.
pub fn fig10(seed: u64) -> String {
    let spec = Fig10Spec::default();
    let tr = fig10_trace(&spec, seed);
    let mut policy = PolicyKind::VwGreedy(VwGreedyParams::default()).build(3, seed ^ 0xF16);
    let result = ma_core::simulate_instance(&tr, policy.as_mut());

    let per_tuple = |ticks: u64| ticks as f64 / spec.tuples as f64;
    let flavor_series = |f: usize| -> Vec<(u64, f64)> {
        tr.costs[f]
            .iter()
            .enumerate()
            .map(|(t, &c)| (t as u64, per_tuple(c)))
            .collect()
    };
    let adaptive: Vec<(u64, f64)> = result
        .choices
        .iter()
        .enumerate()
        .map(|(t, &f)| (t as u64, per_tuple(tr.costs[f][t])))
        .collect();

    let mut out =
        String::from("=== Figure 10: vw-greedy(1024,256,32) on 3 non-stationary flavors ===\n");
    out.push_str(&render_aph_series(
        "cycles/tuple over the query lifetime",
        &[
            ("flavor 1".into(), flavor_series(0)),
            ("flavor 2".into(), flavor_series(1)),
            ("flavor 3".into(), flavor_series(2)),
            ("adaptive".into(), adaptive),
        ],
        32,
    ));
    out.push_str(&format!(
        "adaptive/OPT = {:.3}; fixed flavors vs OPT: {:.3} / {:.3} / {:.3}\n",
        result.ratio_to_opt(),
        tr.fixed_ticks(0) as f64 / tr.opt_ticks() as f64,
        tr.fixed_ticks(1) as f64 / tr.opt_ticks() as f64,
        tr.fixed_ticks(2) as f64 / tr.opt_ticks() as f64,
    ));
    out
}

/// Builds per-instance compiler-flavor traces by running the TPC-H workload
/// once per fixed compiler style and expanding the recorded APHs into
/// per-call costs (§3.2 "Simulations on traces"). Traces shorter than the
/// paper's 16K-call instances are tiled.
pub fn record_compiler_traces(runner: &Runner, queries: &[usize]) -> Vec<InstanceTrace> {
    const STYLES: [&str; 3] = ["gcc", "icc", "clang"];
    const MIN_CALLS: usize = 16 * 1024;
    let mut traces = Vec::new();
    for &q in queries {
        let runs: Vec<_> = STYLES
            .iter()
            .map(|s| {
                runner
                    .run(q, ExecConfig::fixed(s))
                    .unwrap_or_else(|e| panic!("Q{q} fixed({s}): {e}"))
            })
            .collect();
        let n_inst = runs[0].instances.len();
        for i in 0..n_inst {
            let label = &runs[0].instances[i].label;
            // Instance lists are index-aligned across runs (same plan).
            debug_assert!(runs.iter().all(|r| r.instances[i].label == *label));
            let calls = runs[0].instances[i].calls as usize;
            if calls < 8 || runs.iter().any(|r| r.instances[i].calls as usize != calls) {
                continue;
            }
            // Skip micro instances (tiny dimension tables): their per-call
            // timings are single-digit-tuple measurements whose noise makes
            // the per-call OPT an unreachable bound and drowns the policy
            // comparison. The paper's instances cover 16K–32K calls on
            // SF-100 lineitem streams.
            let avg_tuples = runs[0].instances[i].tuples / calls.max(1) as u64;
            if avg_tuples < 128 {
                continue;
            }
            // Expand APH buckets into per-call (tuples, ticks).
            let mut tuples: Vec<u64> = Vec::with_capacity(calls);
            let mut costs: Vec<Vec<u64>> = Vec::with_capacity(STYLES.len());
            let mut ok = true;
            for (si, r) in runs.iter().enumerate() {
                let Some(aph) = &r.instances[i].aph else {
                    ok = false;
                    break;
                };
                let mut flavor_costs = Vec::with_capacity(calls);
                for b in aph.buckets().iter().chain(aph.pending()) {
                    let per_call_ticks = b.ticks / b.calls.max(1);
                    let per_call_tuples = b.tuples / b.calls.max(1);
                    for _ in 0..b.calls {
                        flavor_costs.push(per_call_ticks);
                        if si == 0 {
                            tuples.push(per_call_tuples.max(1));
                        }
                    }
                }
                costs.push(flavor_costs);
            }
            if !ok {
                continue;
            }
            // Tile to the paper's instance length.
            let reps = MIN_CALLS.div_ceil(calls).min(64);
            if reps > 1 {
                tuples = tuples.repeat(reps);
                for c in &mut costs {
                    *c = c.repeat(reps);
                }
            }
            traces.push(InstanceTrace::new(format!("Q{q}/{label}"), tuples, costs));
        }
    }
    traces
}

/// Table 5: the paper's 12 algorithm/parameter rows (plus UCB1 and the
/// Fig. 10 vw-greedy setting as extensions), scored Absolute/OPT and
/// Relative/OPT over the recorded traces.
pub fn table5(runner: &Runner, queries: &[usize], seed: u64) -> String {
    let traces = record_compiler_traces(runner, queries);
    let mut out = format!(
        "=== Table 5: MAB algorithms on {} recorded primitive-instance traces ===\n",
        traces.len()
    );
    if traces.is_empty() {
        out.push_str("no traces recorded (scale factor too small?)\n");
        return out;
    }
    let horizon: usize = traces.iter().map(InstanceTrace::calls).sum::<usize>() / traces.len();
    let eps_first = |eps: f64| PolicyKind::EpsFirst {
        explore_calls: ((eps * horizon as f64) as u64).max(6),
    };
    let vw = |a: u64, b: u64, c: u64| {
        PolicyKind::VwGreedy(VwGreedyParams {
            explore_period: a,
            exploit_period: b,
            explore_length: c,
        })
    };
    let candidates: Vec<PolicyKind> = vec![
        vw(1024, 8, 2),
        eps_first(0.001),
        PolicyKind::EpsGreedy { eps: 0.001 },
        vw(2048, 8, 1),
        PolicyKind::EpsDecreasing { eps0: 1.0 },
        PolicyKind::EpsDecreasing { eps0: 0.1 },
        vw(2048, 8, 2),
        PolicyKind::EpsGreedy { eps: 0.05 },
        PolicyKind::EpsDecreasing { eps0: 5.0 },
        PolicyKind::EpsGreedy { eps: 0.1 },
        eps_first(0.05),
        eps_first(0.1),
        PolicyKind::Ucb1,
        vw(1024, 256, 32),
    ];
    let mut board = ScoreBoard::new();
    for kind in candidates {
        let results = simulate_workload(&traces, kind, seed);
        let name = kind.build(2, 0).name();
        board.push(SimScore::from_results(name, &results));
    }
    out.push_str(&board.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ma_tpch::TpchData;
    use std::sync::Arc;

    #[test]
    fn fig10_report_mentions_all_flavors() {
        let txt = fig10(1);
        for s in ["flavor 1", "flavor 2", "flavor 3", "adaptive", "OPT"] {
            assert!(txt.contains(s), "missing {s}");
        }
    }

    #[test]
    fn traces_and_table5_from_small_run() {
        let runner = Runner::new(Arc::new(TpchData::generate(0.005, 0x7A)));
        let traces = record_compiler_traces(&runner, &[6]);
        assert!(!traces.is_empty(), "Q6 should yield instance traces");
        for t in &traces {
            assert_eq!(t.flavors(), 3);
            assert!(t.calls() >= 8);
        }
        let txt = table5(&runner, &[6], 3);
        assert!(txt.contains("vw-greedy(1024,8,2)"));
        assert!(txt.contains("Absolute/OPT"));
    }
}
