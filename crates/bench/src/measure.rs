//! Host micro-measurement helpers: run a primitive repeatedly over a
//! vector and report ticks/tuple, with warmup and median-of-runs.

use ma_core::cycles::ticks_now;
use ma_core::SplitMix64;

/// Measures `f` over `reps` repetitions of a workload covering `tuples`
/// tuples per call, returning the median ticks/tuple.
pub fn ticks_per_tuple(tuples: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..3 {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = ticks_now();
        f();
        let dt = ticks_now().saturating_sub(t0);
        samples.push(dt as f64 / tuples as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Generates an i32 vector of `n` values where a fraction `selectivity` is
/// below the returned threshold — uniform data for selection sweeps.
pub fn selective_data(n: usize, selectivity: f64, seed: u64) -> (Vec<i32>, i32) {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<i32> = (0..n)
        .map(|_| (rng.next_u64() % 1_000_000) as i32)
        .collect();
    let threshold = (1_000_000.0 * selectivity) as i32;
    (data, threshold)
}

/// A strictly increasing selection vector of the given density over `n`
/// positions.
pub fn sel_vector(n: usize, density: f64, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..n as u32).filter(|_| rng.next_f64() < density).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_data_hits_target_rate() {
        let (data, thr) = selective_data(100_000, 0.3, 1);
        let frac = data.iter().filter(|&&x| x < thr).count() as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn sel_vector_is_monotonic_with_density() {
        let s = sel_vector(10_000, 0.5, 2);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        let frac = s.len() as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn ticks_per_tuple_returns_positive() {
        let data: Vec<u64> = (0..10_000).collect();
        let mut sink = 0u64;
        let t = ticks_per_tuple(10_000, 5, || {
            sink = sink.wrapping_add(data.iter().sum::<u64>());
        });
        assert!(t > 0.0);
        assert!(sink != 1); // keep the work alive
    }
}
