//! Text rendering of experiment results: aligned tables and curve series.

/// A named data series over a shared x axis.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// y values, index-aligned with the x axis.
    pub ys: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, ys: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            ys,
        }
    }
}

/// Renders `(x, series...)` as an aligned text table.
pub fn render_curves(x_label: &str, xs: &[String], series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{x_label:>14}"));
    for s in series {
        out.push_str(&format!(" {:>16}", s.name));
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(&format!("{x:>14}"));
        for s in series {
            match s.ys.get(i) {
                Some(y) => out.push_str(&format!(" {y:>16.3}")),
                None => out.push_str(&format!(" {:>16}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Downsamples `(call, cost)` points to at most `n` evenly spaced buckets,
/// averaging within each — APH series are rendered this way so every
/// figure fits a terminal.
pub fn downsample(points: &[(u64, f64)], n: usize) -> Vec<(u64, f64)> {
    if points.len() <= n || n == 0 {
        return points.to_vec();
    }
    let chunk = points.len().div_ceil(n);
    points
        .chunks(chunk)
        .map(|c| {
            let x = c[0].0;
            let y = c.iter().map(|&(_, y)| y).sum::<f64>() / c.len() as f64;
            (x, y)
        })
        .collect()
}

/// Aligns several downsampled APH series on a common per-row index.
pub fn render_aph_series(title: &str, named: &[(String, Vec<(u64, f64)>)], rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("--- {title} ---\n"));
    let ds: Vec<(String, Vec<(u64, f64)>)> = named
        .iter()
        .map(|(n, pts)| (n.clone(), downsample(pts, rows)))
        .collect();
    let max_len = ds.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
    let xs: Vec<String> = (0..max_len)
        .map(|i| {
            ds.iter()
                .find_map(|(_, p)| p.get(i).map(|&(x, _)| x.to_string()))
                .unwrap_or_default()
        })
        .collect();
    let series: Vec<Series> = ds
        .into_iter()
        .map(|(n, pts)| Series::new(n, pts.into_iter().map(|(_, y)| y).collect()))
        .collect();
    out.push_str(&render_curves("call", &xs, &series));
    out
}

/// A simple aligned key/value + factor table (the Tables 6–10 layout).
pub fn render_factor_table(
    title: &str,
    baseline_label: &str,
    baseline_ticks: u64,
    pct_of_workload: f64,
    factors: &[(String, f64)],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("--- {title} ---\n"));
    let (scaled, unit) = if baseline_ticks >= 1_000_000_000 {
        (baseline_ticks as f64 / 1e9, "bn")
    } else {
        (baseline_ticks as f64 / 1e6, "M")
    };
    out.push_str(&format!(
        "{baseline_label}: {scaled:.1} {unit} ticks ({pct_of_workload:.2}% of workload)\n",
    ));
    for (name, f) in factors {
        out.push_str(&format!("{name:<24} {f:>6.2}x\n"));
    }
    out
}

// ---------------------------------------------------------------------------
// machine-readable reports (no serde in the tree: tiny hand-rolled JSON)
// ---------------------------------------------------------------------------

/// One experiment's entry in a JSON report: id, wall ticks, named metrics.
pub type JsonEntry = (String, u64, Vec<(String, f64)>);

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a bench report as JSON: run parameters plus per-experiment wall
/// ticks and metrics. The CI bench-smoke job uploads this as an artifact,
/// so the schema string versions the layout for future comparison tooling.
pub fn json_report(sf: f64, seed: u64, entries: &[JsonEntry]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ma-bench/v1\",\n");
    out.push_str(&format!("  \"sf\": {sf},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, (id, wall, metrics)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_ticks\": {wall}, \"metrics\": {{",
            json_escape(id)
        ));
        for (j, (name, value)) in metrics.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {value}", json_escape(name)));
        }
        out.push_str("}}");
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_report_shape() {
        let entries = vec![
            ("table1".to_string(), 123u64, vec![]),
            (
                "scaling".to_string(),
                456u64,
                vec![("power_ticks_workers_1".to_string(), 99.0)],
            ),
        ];
        let j = json_report(0.05, 7, &entries);
        assert!(j.contains("\"schema\": \"ma-bench/v1\""));
        assert!(j.contains("\"id\": \"scaling\""));
        assert!(j.contains("\"power_ticks_workers_1\": 99"));
        assert!(j.contains("\"wall_ticks\": 123"));
        // Crude structural sanity: balanced braces.
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn downsample_preserves_small_inputs() {
        let pts = vec![(0u64, 1.0), (1, 2.0)];
        assert_eq!(downsample(&pts, 10), pts);
    }

    #[test]
    fn downsample_averages_chunks() {
        let pts: Vec<(u64, f64)> = (0..100).map(|i| (i as u64, i as f64)).collect();
        let ds = downsample(&pts, 10);
        assert_eq!(ds.len(), 10);
        assert_eq!(ds[0].0, 0);
        assert!((ds[0].1 - 4.5).abs() < 1e-9);
        assert!((ds[9].1 - 94.5).abs() < 1e-9);
    }

    #[test]
    fn render_curves_aligns_columns() {
        let xs = vec!["0".to_string(), "50".to_string()];
        let s = vec![
            Series::new("branching", vec![2.0, 10.5]),
            Series::new("no_branching", vec![4.8, 4.8]),
        ];
        let txt = render_curves("selectivity", &xs, &s);
        assert!(txt.contains("branching"));
        assert!(txt.contains("10.500"));
        assert_eq!(txt.lines().count(), 3);
    }

    #[test]
    fn render_factor_table_shapes() {
        let txt = render_factor_table(
            "Table 6",
            "Always Branching",
            57_000_000_000,
            8.58,
            &[
                ("No-Branching".into(), 1.12),
                ("Micro Adaptive".into(), 1.22),
            ],
        );
        assert!(txt.contains("57.0 bn"));
        let small = render_factor_table("T", "base", 5_000_000, 1.0, &[]);
        assert!(small.contains("5.0 M"));
        assert!(txt.contains("1.22x"));
    }

    #[test]
    fn render_aph_handles_unequal_lengths() {
        let a = ("a".to_string(), vec![(0u64, 1.0), (10, 2.0), (20, 3.0)]);
        let b = ("b".to_string(), vec![(0u64, 5.0)]);
        let txt = render_aph_series("t", &[a, b], 8);
        assert!(txt.contains("---"));
        assert!(txt.contains('-'));
    }
}
