//! Criterion: per-call overhead of the bandit policies — the cost Micro
//! Adaptivity adds to every primitive call (§4.2 notes this overhead).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ma_core::policy::VwGreedyParams;
use ma_core::PolicyKind;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_per_call");
    group.throughput(Throughput::Elements(1));
    let kinds = [
        ("fixed", PolicyKind::Fixed(0)),
        (
            "vw-greedy(1024,8,2)",
            PolicyKind::VwGreedy(VwGreedyParams::table5_best()),
        ),
        ("eps-greedy(0.05)", PolicyKind::EpsGreedy { eps: 0.05 }),
        ("eps-decreasing", PolicyKind::EpsDecreasing { eps0: 1.0 }),
        ("ucb1", PolicyKind::Ucb1),
    ];
    for (name, kind) in kinds {
        let mut p = kind.build(3, 42);
        group.bench_function(name, |b| {
            b.iter(|| {
                let f = p.choose();
                p.observe(f, 1024, 4096);
                std::hint::black_box(f)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
