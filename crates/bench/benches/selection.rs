//! Criterion: selection flavors across selectivities (Fig. 1's benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ma_bench::measure::selective_data;
use ma_primitives::ops::Lt;
use ma_primitives::selection::{
    sel_col_val_branching, sel_col_val_clang, sel_col_val_icc, sel_col_val_no_branching,
    sel_col_val_unroll8,
};
use ma_primitives::SelColVal;

fn bench_selection(c: &mut Criterion) {
    let n = 16 * 1024;
    let mut group = c.benchmark_group("selection");
    group.throughput(Throughput::Elements(n as u64));
    let flavors: [(&str, SelColVal<i32>); 5] = [
        ("branching", sel_col_val_branching::<i32, Lt>),
        ("no_branching", sel_col_val_no_branching::<i32, Lt>),
        ("icc", sel_col_val_icc::<i32, Lt>),
        ("clang", sel_col_val_clang::<i32, Lt>),
        ("unroll8", sel_col_val_unroll8::<i32, Lt>),
    ];
    for sel_pct in [1u32, 50, 99] {
        let (data, thr) = selective_data(n, sel_pct as f64 / 100.0, 7);
        let mut res = vec![0u32; n];
        for (name, f) in flavors {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{sel_pct}%")),
                &sel_pct,
                |b, _| b.iter(|| std::hint::black_box(f(&mut res, &data, thr, None))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
