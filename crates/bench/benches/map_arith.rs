//! Criterion: map flavors — selective vs full computation vs unrolling
//! (Table 4 / Fig. 8's benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ma_bench::measure::sel_vector;
use ma_primitives::map_arith::{
    map_col_col_full, map_col_col_icc, map_col_col_selective, map_col_col_unroll8,
};
use ma_primitives::ops::Mul;
use ma_primitives::MapColCol;

fn bench_map(c: &mut Criterion) {
    let n = 16 * 1024;
    let a: Vec<i64> = (0..n as i64).collect();
    let b2: Vec<i64> = (0..n as i64).map(|i| i * 3).collect();
    let mut res = vec![0i64; n];
    let mut group = c.benchmark_group("map_mul_i64");
    group.throughput(Throughput::Elements(n as u64));
    let flavors: [(&str, MapColCol<i64>); 4] = [
        ("selective", map_col_col_selective::<i64, Mul>),
        ("full", map_col_col_full::<i64, Mul>),
        ("unroll8", map_col_col_unroll8::<i64, Mul>),
        ("icc", map_col_col_icc::<i64, Mul>),
    ];
    for density_pct in [10u32, 50, 100] {
        let sel = sel_vector(n, density_pct as f64 / 100.0, 3);
        let sv = if density_pct == 100 {
            None
        } else {
            Some(sel.as_slice())
        };
        for (name, f) in flavors {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{density_pct}%")),
                &density_pct,
                |bch, _| {
                    bch.iter(|| {
                        f(&mut res, &a, &b2, sv);
                        std::hint::black_box(&res);
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_map);
criterion_main!(benches);
