//! Criterion: bloom-filter lookup fused vs fission across filter sizes
//! (Fig. 6's benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ma_primitives::bloom::{sel_bloomfilter_fission, sel_bloomfilter_fused, BloomFilter};
use ma_primitives::hashing::hash_u64;

fn bench_bloom(c: &mut Criterion) {
    let n = 16 * 1024;
    let hashes: Vec<u64> = (0..n as u64).map(|i| hash_u64(i * 2 + 1)).collect();
    let mut res = vec![0u32; n];
    let mut group = c.benchmark_group("sel_bloomfilter");
    group.throughput(Throughput::Elements(n as u64));
    for size_kb in [16usize, 1024, 32 * 1024] {
        let mut bf = BloomFilter::with_bytes(size_kb << 10);
        for k in 0..(size_kb as u64) << 10 {
            bf.insert_key(k * 7919);
        }
        group.bench_with_input(
            BenchmarkId::new("fused", format!("{size_kb}KB")),
            &size_kb,
            |b, _| {
                b.iter(|| std::hint::black_box(sel_bloomfilter_fused(&mut res, &bf, &hashes, None)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fission", format!("{size_kb}KB")),
            &size_kb,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(sel_bloomfilter_fission(&mut res, &bf, &hashes, None))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bloom);
criterion_main!(benches);
