//! Criterion: APH record throughput — the per-call profiling overhead
//! (§1.1 argues this is affordable under vectorized execution).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ma_core::{Aph, PrimitiveProfile};

fn bench_aph(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling_per_call");
    group.throughput(Throughput::Elements(1));
    let mut aph = Aph::default();
    group.bench_function("aph_record", |b| {
        b.iter(|| {
            aph.record(1024, 4096);
            std::hint::black_box(aph.total_calls())
        })
    });
    let mut profile = PrimitiveProfile::with_aph();
    group.bench_function("profile_record", |b| {
        b.iter(|| {
            profile.record(1024, 4096);
            std::hint::black_box(profile.calls)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_aph);
criterion_main!(benches);
