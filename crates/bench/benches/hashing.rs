//! Criterion: vectorized hashing and group-table insertcheck
//! (the Fig. 4(e) primitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ma_primitives::group_table::{
    hash_insertcheck_str_gcc, hash_insertcheck_u64_gcc, hash_insertcheck_u64_icc, GroupTable,
    StrGroupTable,
};
use ma_primitives::hashing::{hash_bytes, hash_u64, map_hash_i64_clang, map_hash_i64_gcc};
use ma_vector::StrVec;

fn bench_hashing(c: &mut Criterion) {
    let n = 16 * 1024;
    let keys: Vec<i64> = (0..n as i64).map(|i| i % 997).collect();
    let mut hashes = vec![0u64; n];
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("map_hash_i64/gcc", |b| {
        b.iter(|| {
            map_hash_i64_gcc(&mut hashes, &keys, None);
            std::hint::black_box(&hashes);
        })
    });
    group.bench_function("map_hash_i64/clang", |b| {
        b.iter(|| {
            map_hash_i64_clang(&mut hashes, &keys, None);
            std::hint::black_box(&hashes);
        })
    });

    let u64keys: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
    let khashes: Vec<u64> = u64keys.iter().map(|&k| hash_u64(k)).collect();
    let mut gids = vec![0u32; n];
    for (name, f) in [
        (
            "insertcheck_u64/gcc",
            hash_insertcheck_u64_gcc as ma_primitives::GroupInsertCheck,
        ),
        ("insertcheck_u64/icc", hash_insertcheck_u64_icc),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut t = GroupTable::new();
                t.reserve(n);
                std::hint::black_box(f(&mut t, &khashes, &u64keys, &mut gids, None));
            })
        });
    }

    let strs: Vec<String> = (0..n).map(|i| format!("key{}", i % 997)).collect();
    let skeys = StrVec::from_strings(&strs);
    let shashes: Vec<u64> = strs.iter().map(|s| hash_bytes(s.as_bytes())).collect();
    group.bench_with_input(BenchmarkId::new("insertcheck_str", "gcc"), &n, |b, _| {
        b.iter(|| {
            let mut t = StrGroupTable::new();
            t.reserve(n);
            std::hint::black_box(hash_insertcheck_str_gcc(
                &mut t, &shashes, &skeys, &mut gids, None,
            ));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
