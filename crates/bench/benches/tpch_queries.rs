//! Criterion: end-to-end TPC-H queries under the three engine modes —
//! the per-query comparison behind Table 11 (tiny scale for bench time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ma_executor::{ExecConfig, FlavorAxis};
use ma_tpch::{Runner, TpchData};
use std::sync::Arc;

fn bench_queries(c: &mut Criterion) {
    let runner = Runner::new(Arc::new(TpchData::generate(0.01, 0xBE11C4)));
    let mut group = c.benchmark_group("tpch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for q in [1usize, 6, 12] {
        for (mode, cfg) in [
            ("fixed", ExecConfig::fixed_default()),
            ("heuristic", ExecConfig::heuristic()),
            ("adaptive", ExecConfig::adaptive(FlavorAxis::All)),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("q{q}"), mode), &q, |b, &q| {
                b.iter(|| {
                    let r = runner.run(q, cfg.clone()).expect("query");
                    std::hint::black_box(r.checksum)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
