//! In-tree repo lints, run as `cargo xtask lint` (aliased in
//! `.cargo/config.toml`) and as a standalone CI job.
//!
//! Three rules, each with an explicit, justified allowlist rather than a
//! blanket escape hatch:
//!
//! 1. **Hot-path unwrap discipline.** `.unwrap()` / `.expect(` are
//!    forbidden in the non-test code of `crates/executor/src/ops/` — a
//!    panic there takes down a worker thread mid-query and surfaces as a
//!    poisoned exchange instead of a typed `ExecError`. The allowlist
//!    pins *exact* per-file counts: adding a new unwrap fails the lint,
//!    and removing one without updating the allowlist also fails, so the
//!    list can never rot into an over-approximation.
//! 2. **Sleep-free tests.** A thread sleep in test code is a flaky-test
//!    factory (sleep-based synchronization); the exchange tests prove
//!    teardown with the model checker instead. The only allowed uses are
//!    clock-advance assertions in the cycle-counter tests.
//! 3. **Operator stats registration.** Every data-processing operator in
//!    `crates/executor/src/ops/` must run its work through registered
//!    primitive instances (`PrimInstance` / `CompiledExpr` /
//!    `CompiledPred`) so micro-adaptivity statistics cover it. Pure
//!    data-movement operators (exchanges, scans, sort/materialize) are
//!    exempt and listed as such.
//!
//! No dependencies: a plain recursive walker over the repo's own sources
//! keeps the lint runnable in offline builds and fast enough for CI.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Rule 1 allowlist: exact count of `.unwrap()`/`.expect(` occurrences in
/// the non-test region of each ops file, with the justification that
/// earned the entry. Everything not listed must have zero.
const UNWRAP_ALLOWLIST: &[(&str, usize, &str)] = &[
    (
        "aggregate.rs",
        7,
        "checked i128->i64 sum narrowing (overflow must panic, not wrap) and \
         infallible write!() into an in-memory group-key String",
    ),
    (
        "exchange.rs",
        1,
        "merge-heap head invariant: a source in the heap always has a buffered head",
    ),
    (
        "hash_join.rs",
        5,
        "build-once state machine (build/built Options) and key-index back-maps \
         established at construction",
    ),
    (
        "merge_join.rs",
        2,
        "materialize-once state machine (left/payload Options)",
    ),
    ("sort.rs", 2, "run-once state machine (child/out Options)"),
];

/// Rule 2 allowlist: files whose test code may sleep a thread, with
/// exact counts. Only clock-advance assertions qualify — a test proving a
/// tick counter moves across a real wait is *measuring* the sleep, not
/// synchronizing on it.
const SLEEP_ALLOWLIST: &[(&str, usize, &str)] = &[(
    "crates/core/src/cycles.rs",
    2,
    "clock-advance assertions: the test measures that ticks advance across \
     a real wait",
)];

/// Rule 3 exemptions: ops files implementing `Operator` that legitimately
/// run no data-processing primitives.
const STATS_EXEMPT: &[(&str, &str)] = &[
    (
        "exchange.rs",
        "pure data movement: exchanges route chunks between threads and touch \
         no tuple values",
    ),
    (
        "scan.rs",
        "storage access: emits stored vectors; primitives start above it",
    ),
    (
        "sort.rs",
        "materialization: sorts a frozen row store with direct comparisons, \
         no per-vector primitive work",
    ),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();
    lint_ops_unwraps(&root, &mut violations);
    lint_test_sleeps(&root, &mut violations);
    lint_operator_stats(&root, &mut violations);
    if violations.is_empty() {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

/// The workspace root: `cargo run -p xtask` sets the cwd to the xtask
/// crate? No — cargo runs binaries from the *workspace* cwd the user
/// invoked, so resolve relative to this file's known location instead:
/// CARGO_MANIFEST_DIR is `<root>/crates/xtask` at compile time.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// The non-test prefix of a source file: everything before the first
/// line starting a `#[cfg(test)]` item (the repo convention keeps test
/// modules trailing).
fn non_test_region(src: &str) -> &str {
    match src.find("#[cfg(test)]") {
        Some(pos) => &src[..pos],
        None => src,
    }
}

fn count_matches(haystack: &str, needles: &[&str]) -> usize {
    needles.iter().map(|n| haystack.matches(n).count()).sum()
}

/// Rule 1: unwrap/expect discipline in executor ops hot paths.
fn lint_ops_unwraps(root: &Path, violations: &mut Vec<String>) {
    let ops_dir = root.join("crates/executor/src/ops");
    for file in rust_files(&ops_dir) {
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!("{}: unreadable: {e}", file.display()));
                continue;
            }
        };
        let count = count_matches(non_test_region(&src), &[".unwrap()", ".expect("]);
        let allowed = UNWRAP_ALLOWLIST
            .iter()
            .find(|(f, _, _)| *f == name)
            .map(|(_, n, _)| *n)
            .unwrap_or(0);
        if count > allowed {
            let mut msg = String::new();
            let _ = write!(
                msg,
                "{}: {count} unwrap()/expect() in non-test code, allowlist permits \
                 {allowed}; return a typed ExecError (a panic here kills a worker \
                 thread mid-query) or extend UNWRAP_ALLOWLIST with a justification",
                file.display()
            );
            violations.push(msg);
        } else if count < allowed {
            violations.push(format!(
                "{}: {count} unwrap()/expect() but the allowlist still records \
                 {allowed}; shrink its UNWRAP_ALLOWLIST entry so the list stays exact",
                file.display()
            ));
        }
    }
}

/// Rule 2: no thread sleeps anywhere in crate sources (test or not)
/// outside the justified allowlist.
fn lint_test_sleeps(root: &Path, violations: &mut Vec<String>) {
    // Built by concatenation so this file does not match itself.
    let needle = concat!("thread::", "sleep");
    for file in rust_files(&root.join("crates")) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let count = src.matches(needle).count();
        if count == 0 {
            continue;
        }
        let allowed = SLEEP_ALLOWLIST
            .iter()
            .find(|(f, _, _)| *f == rel)
            .map(|(_, n, _)| *n)
            .unwrap_or(0);
        if count != allowed {
            violations.push(format!(
                "{rel}: {count} {needle} call(s), allowlist permits {allowed}; \
                 sleep-based test synchronization flakes — drive the schedule \
                 explicitly (see the exchange model checker) or justify an \
                 allowlist entry"
            ));
        }
    }
}

/// Rule 3: ops files implementing `Operator` must run registered
/// primitive instances unless exempt as pure data movement.
fn lint_operator_stats(root: &Path, violations: &mut Vec<String>) {
    let ops_dir = root.join("crates/executor/src/ops");
    for file in rust_files(&ops_dir) {
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let body = non_test_region(&src);
        if !body.contains("impl Operator for") {
            continue;
        }
        let registered = ["PrimInstance", "CompiledExpr", "CompiledPred"]
            .iter()
            .any(|m| body.contains(m));
        let exempt = STATS_EXEMPT.iter().any(|(f, _)| *f == name);
        if !registered && !exempt {
            violations.push(format!(
                "{}: implements Operator without any registered primitive \
                 instance (PrimInstance/CompiledExpr/CompiledPred); \
                 micro-adaptivity statistics would not cover it — register its \
                 work or add a STATS_EXEMPT entry with a justification",
                file.display()
            ));
        } else if registered && exempt {
            violations.push(format!(
                "{}: listed in STATS_EXEMPT but now registers primitive \
                 instances; drop the stale exemption",
                file.display()
            ));
        }
    }
}

/// All `.rs` files under `dir`, recursively, in sorted order (stable
/// output for CI diffs). Skips `target/` just in case.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_test_region_truncates_at_cfg_test() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n";
        assert_eq!(non_test_region(src), "fn a() {}\n");
        assert_eq!(non_test_region("fn a() {}\n"), "fn a() {}\n");
    }

    #[test]
    fn count_matches_counts_all_needles() {
        assert_eq!(
            count_matches("x.unwrap(); y.expect(\"m\")", &[".unwrap()", ".expect("]),
            2
        );
    }

    #[test]
    fn lint_passes_on_this_repo() {
        let root = repo_root();
        let mut violations = Vec::new();
        lint_ops_unwraps(&root, &mut violations);
        lint_test_sleeps(&root, &mut violations);
        lint_operator_stats(&root, &mut violations);
        assert!(violations.is_empty(), "lint violations: {violations:#?}");
    }
}
