//! In-tree repo lints, run as `cargo xtask lint` (aliased in
//! `.cargo/config.toml`) and as a standalone CI job.
//!
//! Six rules, each with an explicit, justified allowlist rather than a
//! blanket escape hatch:
//!
//! 1. **Hot-path unwrap discipline.** `.unwrap()` / `.expect(` are
//!    forbidden in the non-test code of `crates/executor/src/ops/` — a
//!    panic there takes down a worker thread mid-query and surfaces as a
//!    poisoned exchange instead of a typed `ExecError`. The allowlist
//!    pins *exact* per-file counts: adding a new unwrap fails the lint,
//!    and removing one without updating the allowlist also fails, so the
//!    list can never rot into an over-approximation.
//! 2. **Sleep-free tests.** A thread sleep in test code is a flaky-test
//!    factory (sleep-based synchronization); the exchange tests prove
//!    teardown with the model checker instead. The only allowed uses are
//!    clock-advance assertions in the cycle-counter tests.
//! 3. **Operator stats registration.** Every data-processing operator in
//!    `crates/executor/src/ops/` must run its work through registered
//!    primitive instances (`PrimInstance` / `CompiledExpr` /
//!    `CompiledPred`) so micro-adaptivity statistics cover it. Pure
//!    data-movement operators (exchanges, scans, sort/materialize) are
//!    exempt and listed as such.
//! 4. **Numeric-width and row-arithmetic discipline.** In the kernel
//!    crates (`crates/primitives`, `crates/executor/src/ops`), narrowing
//!    `as` casts and bare `+`/`*` on row-count/offset lines are pinned by
//!    exact per-file counts — the abstract interpreter
//!    (`ma_executor::analyze`) vouches for expression safety, so width
//!    truncations and offset wraps below it must be individually
//!    provable.
//! 5. **Memory-facade registration.** Every operator in
//!    `crates/executor/src/ops/` that can hold data across chunks must
//!    report its resident bytes through the `MemTracker` facade so the
//!    byte-accounting oracle (`ma_executor::cost`) can check recorded
//!    high-water marks against the proven static bounds. Streaming
//!    operators with no cross-chunk state are exempt and listed as such;
//!    stale exemptions are flagged just like rule 3.
//! 6. **Decode-flavor registration.** Every decode kernel flavor in
//!    `crates/primitives/src/decode.rs` must be registered in the
//!    `PrimitiveDictionary` (`registry.rs`) under its signature, and each
//!    decode signature is pinned to an exact flavor count (≥ 3, so the
//!    per-morsel bandit always has real arms to choose between). A kernel
//!    added without registration, a registration without a kernel, and a
//!    stale allowlist count all fail.
//!
//! No dependencies: a plain recursive walker over the repo's own sources
//! keeps the lint runnable in offline builds and fast enough for CI.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Rule 1 allowlist: exact count of `.unwrap()`/`.expect(` occurrences in
/// the non-test region of each ops file, with the justification that
/// earned the entry. Everything not listed must have zero.
const UNWRAP_ALLOWLIST: &[(&str, usize, &str)] = &[
    (
        "aggregate.rs",
        7,
        "checked i128->i64 sum narrowing (overflow must panic, not wrap) and \
         infallible write!() into an in-memory group-key String",
    ),
    (
        "exchange.rs",
        1,
        "merge-heap head invariant: a source in the heap always has a buffered head",
    ),
    (
        "hash_join.rs",
        5,
        "build-once state machine (build/built Options) and key-index back-maps \
         established at construction",
    ),
    (
        "merge_join.rs",
        2,
        "materialize-once state machine (left/payload Options)",
    ),
    ("sort.rs", 2, "run-once state machine (child/out Options)"),
];

/// Rule 2 allowlist: files whose test code may sleep a thread, with
/// exact counts. Only clock-advance assertions qualify — a test proving a
/// tick counter moves across a real wait is *measuring* the sleep, not
/// synchronizing on it.
const SLEEP_ALLOWLIST: &[(&str, usize, &str)] = &[(
    "crates/core/src/cycles.rs",
    2,
    "clock-advance assertions: the test measures that ticks advance across \
     a real wait",
)];

/// Rule 3 exemptions: ops files implementing `Operator` that legitimately
/// run no data-processing primitives.
const STATS_EXEMPT: &[(&str, &str)] = &[
    (
        "exchange.rs",
        "pure data movement: exchanges route chunks between threads and touch \
         no tuple values",
    ),
    (
        "sort.rs",
        "materialization: sorts a frozen row store with direct comparisons, \
         no per-vector primitive work",
    ),
];

/// Rule 4a allowlist: exact count of narrowing `as` casts (`as i8/u8/
/// i16/u16/i32/u32`) in the non-test region of each kernel/ops file,
/// keyed by workspace-relative path. A narrowing cast silently truncates;
/// every survivor must be provably in-range at the cast site.
const NARROW_CAST_ALLOWLIST: &[(&str, usize, &str)] = &[
    (
        "crates/primitives/src/decode.rs",
        10,
        "bit-shift amounts masked to < 64 (u32 by construction), delta \
         running sums that re-materialize i32 values the codec packed, and \
         dictionary codes bounded by DICT_MAX_VALUES = 2^16",
    ),
    (
        "crates/primitives/src/selection.rs",
        24,
        "selection-vector writes: positions are < vector_size (max 2^16) by \
         the DataChunk contract, so usize -> u32 row ids cannot truncate",
    ),
    (
        "crates/primitives/src/bloom.rs",
        5,
        "u32 selection-vector writes plus bool -> u8 hit flags (0/1 by \
         definition)",
    ),
    (
        "crates/primitives/src/group_table.rs",
        3,
        "arena offsets/lengths stored as (u32, u32) views — the arena is \
         bounded far below 4 GiB by the vector-at-a-time memory model",
    ),
    (
        "crates/primitives/src/like.rs",
        2,
        "u32 selection-vector writes, positions < vector_size",
    ),
    (
        "crates/primitives/src/merge.rs",
        4,
        "u32 row-id emission over per-vector key slices (< vector_size rows)",
    ),
    (
        "crates/executor/src/ops/aggregate.rs",
        3,
        "bit-exact hex encoding of group keys: i16/i32 reinterpreted at the \
         same width, plus a u16 length tag over vector-bounded strings",
    ),
    (
        "crates/executor/src/ops/exchange.rs",
        2,
        "u32 row routing: positions come from live_positions(), bounded by \
         the vector size",
    ),
    (
        "crates/executor/src/ops/hash_join.rs",
        3,
        "u32 build-row chain links and probe ranges, bounded by the \
         materialized build size (row stores index with u32 by design)",
    ),
    (
        "crates/executor/src/ops/mod.rs",
        4,
        "row-store (offset, len) string views and u32 chunk row ranges, both \
         bounded by the store's u32 row-id design width",
    ),
    (
        "crates/executor/src/ops/sort.rs",
        2,
        "u32 sort-index construction over a frozen store (u32 row-id width)",
    ),
];

/// Rule 5 exemptions: ops files implementing `Operator` that legitimately
/// hold no cross-chunk state worth metering — nothing resident beyond the
/// single chunk in flight, which the exchanges above them already meter.
const MEM_EXEMPT: &[(&str, &str)] = &[
    (
        "merge_join.rs",
        "materializes only the sorted left side, whose exact len-based size \
         the cost pass proves directly from input cardinality; the operator \
         is serial-only, so no partitioned instance can drift from the bound",
    ),
    (
        "project.rs",
        "streaming: transforms the chunk in flight, retains nothing across \
         next() calls",
    ),
    (
        "scan.rs",
        "streaming: emits borrowed views of stored vectors, allocates no \
         resident state",
    ),
    (
        "select.rs",
        "streaming: filters the chunk in flight via selection vectors, \
         retains nothing across next() calls",
    ),
];

/// Rule 4b allowlist: exact count of bare `+`/`*` on lines manipulating
/// row counts or offsets in kernel/ops non-test code. Row math must use
/// `saturating_*`/`checked_*` (or prove the bound locally): a silent wrap
/// in an offset computation is an out-of-bounds gather waiting to happen.
const ROW_ARITH_ALLOWLIST: &[(&str, usize, &str)] = &[];

/// Rule 6 allowlist: exact flavor count per decode signature. Every
/// signature needs ≥ 3 flavors so the bandit has real arms; the exact
/// pin means adding a flavor without updating the list (or retiring one
/// and leaving the count) fails.
const DECODE_FLAVOR_ALLOWLIST: &[(&str, usize, &str)] = &[
    (
        "decode_for_i32",
        3,
        "branching/no_branching/unroll8 over frame-of-reference i32 columns",
    ),
    (
        "decode_for_i64",
        3,
        "branching/no_branching/unroll8 over frame-of-reference i64 columns",
    ),
    (
        "decode_delta_i32",
        3,
        "branching/no_branching/unroll8 over delta + bit-packed key columns",
    ),
    (
        "decode_dict_str",
        3,
        "fused/fission/unroll8 over dictionary-coded string columns",
    ),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut violations = Vec::new();
    lint_ops_unwraps(&root, &mut violations);
    lint_test_sleeps(&root, &mut violations);
    lint_operator_stats(&root, &mut violations);
    lint_narrowing_and_row_arith(&root, &mut violations);
    lint_mem_facade(&root, &mut violations);
    lint_decode_flavors(&root, &mut violations);
    if violations.is_empty() {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}

/// The workspace root: `cargo run -p xtask` sets the cwd to the xtask
/// crate? No — cargo runs binaries from the *workspace* cwd the user
/// invoked, so resolve relative to this file's known location instead:
/// CARGO_MANIFEST_DIR is `<root>/crates/xtask` at compile time.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// The non-test prefix of a source file: everything before the first
/// line starting a `#[cfg(test)]` item (the repo convention keeps test
/// modules trailing).
fn non_test_region(src: &str) -> &str {
    match src.find("#[cfg(test)]") {
        Some(pos) => &src[..pos],
        None => src,
    }
}

fn count_matches(haystack: &str, needles: &[&str]) -> usize {
    needles.iter().map(|n| haystack.matches(n).count()).sum()
}

/// Rule 1: unwrap/expect discipline in executor ops hot paths.
fn lint_ops_unwraps(root: &Path, violations: &mut Vec<String>) {
    let ops_dir = root.join("crates/executor/src/ops");
    for file in rust_files(&ops_dir) {
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                violations.push(format!("{}: unreadable: {e}", file.display()));
                continue;
            }
        };
        let count = count_matches(non_test_region(&src), &[".unwrap()", ".expect("]);
        let allowed = UNWRAP_ALLOWLIST
            .iter()
            .find(|(f, _, _)| *f == name)
            .map(|(_, n, _)| *n)
            .unwrap_or(0);
        if count > allowed {
            let mut msg = String::new();
            let _ = write!(
                msg,
                "{}: {count} unwrap()/expect() in non-test code, allowlist permits \
                 {allowed}; return a typed ExecError (a panic here kills a worker \
                 thread mid-query) or extend UNWRAP_ALLOWLIST with a justification",
                file.display()
            );
            violations.push(msg);
        } else if count < allowed {
            violations.push(format!(
                "{}: {count} unwrap()/expect() but the allowlist still records \
                 {allowed}; shrink its UNWRAP_ALLOWLIST entry so the list stays exact",
                file.display()
            ));
        }
    }
}

/// Rule 2: no thread sleeps anywhere in crate sources (test or not)
/// outside the justified allowlist.
fn lint_test_sleeps(root: &Path, violations: &mut Vec<String>) {
    // Built by concatenation so this file does not match itself.
    let needle = concat!("thread::", "sleep");
    for file in rust_files(&root.join("crates")) {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let count = src.matches(needle).count();
        if count == 0 {
            continue;
        }
        let allowed = SLEEP_ALLOWLIST
            .iter()
            .find(|(f, _, _)| *f == rel)
            .map(|(_, n, _)| *n)
            .unwrap_or(0);
        if count != allowed {
            violations.push(format!(
                "{rel}: {count} {needle} call(s), allowlist permits {allowed}; \
                 sleep-based test synchronization flakes — drive the schedule \
                 explicitly (see the exchange model checker) or justify an \
                 allowlist entry"
            ));
        }
    }
}

/// Rule 3: ops files implementing `Operator` must run registered
/// primitive instances unless exempt as pure data movement.
fn lint_operator_stats(root: &Path, violations: &mut Vec<String>) {
    let ops_dir = root.join("crates/executor/src/ops");
    for file in rust_files(&ops_dir) {
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let body = non_test_region(&src);
        if !body.contains("impl Operator for") {
            continue;
        }
        let registered = ["PrimInstance", "CompiledExpr", "CompiledPred"]
            .iter()
            .any(|m| body.contains(m));
        let exempt = STATS_EXEMPT.iter().any(|(f, _)| *f == name);
        if !registered && !exempt {
            violations.push(format!(
                "{}: implements Operator without any registered primitive \
                 instance (PrimInstance/CompiledExpr/CompiledPred); \
                 micro-adaptivity statistics would not cover it — register its \
                 work or add a STATS_EXEMPT entry with a justification",
                file.display()
            ));
        } else if registered && exempt {
            violations.push(format!(
                "{}: listed in STATS_EXEMPT but now registers primitive \
                 instances; drop the stale exemption",
                file.display()
            ));
        }
    }
}

/// Rule 5: ops files implementing `Operator` must meter resident bytes
/// through the `MemTracker` facade unless exempt as streaming/covered.
/// Without registration the byte-accounting oracle silently skips the
/// operator, and "actual ≤ proven bound" degrades to vacuous truth.
fn lint_mem_facade(root: &Path, violations: &mut Vec<String>) {
    let ops_dir = root.join("crates/executor/src/ops");
    for file in rust_files(&ops_dir) {
        let name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src = match fs::read_to_string(&file) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let body = non_test_region(&src);
        if !body.contains("impl Operator for") {
            continue;
        }
        let registered = body.contains("MemTracker");
        let exempt = MEM_EXEMPT.iter().any(|(f, _)| *f == name);
        if !registered && !exempt {
            violations.push(format!(
                "{}: implements Operator without registering with the \
                 MemTracker facade; the byte-accounting oracle cannot check \
                 its resident bytes against the proven bound — wire a tracker \
                 or add a MEM_EXEMPT entry with a justification",
                file.display()
            ));
        } else if registered && exempt {
            violations.push(format!(
                "{}: listed in MEM_EXEMPT but now registers with the \
                 MemTracker facade; drop the stale exemption",
                file.display()
            ));
        }
    }
}

/// Rule 4: numeric-width and row-arithmetic discipline in the kernel
/// crates (`crates/primitives`, `crates/executor/src/ops`) — the code
/// the abstract interpreter's safety verdicts ultimately vouch for.
/// Two sub-rules over non-test, non-comment lines:
///
/// * **4a** — narrowing `as` casts truncate silently; each one must be
///   provably in-range and is pinned by exact count.
/// * **4b** — bare `+`/`*` on lines handling row counts or offsets must
///   instead use `saturating_*`/`checked_*` (wrap in an offset is an
///   out-of-bounds gather); in-range survivors are pinned by exact count.
fn lint_narrowing_and_row_arith(root: &Path, violations: &mut Vec<String>) {
    const NARROWING: &[&str] = &["as i8", "as u8", "as i16", "as u16", "as i32", "as u32"];
    for dir in ["crates/primitives/src", "crates/executor/src/ops"] {
        for file in rust_files(&root.join(dir)) {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let src = match fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    violations.push(format!("{rel}: unreadable: {e}"));
                    continue;
                }
            };
            let code_lines: Vec<&str> = non_test_region(&src)
                .lines()
                .filter(|l| !l.trim_start().starts_with("//"))
                .collect();
            let casts: usize = code_lines.iter().map(|l| count_matches(l, NARROWING)).sum();
            check_exact(
                &rel,
                "narrowing `as` cast(s)",
                casts,
                NARROW_CAST_ALLOWLIST,
                "casts truncate silently — widen, use try_from, or justify an \
                 exact NARROW_CAST_ALLOWLIST entry",
                violations,
            );
            let row_arith = code_lines
                .iter()
                .filter(|l| {
                    (l.contains("rows") || l.contains("offset"))
                        && (l.contains(" + ") || l.contains(" * "))
                        && !l.contains("saturating_")
                        && !l.contains("checked_")
                })
                .count();
            check_exact(
                &rel,
                "bare +/* on row/offset line(s)",
                row_arith,
                ROW_ARITH_ALLOWLIST,
                "row/offset arithmetic must be saturating_/checked_ or earn an \
                 exact ROW_ARITH_ALLOWLIST entry proving the bound",
                violations,
            );
        }
    }
}

/// Rule 6: decode-flavor registration. Cross-checks the decode kernels
/// in `crates/primitives/src/decode.rs` against the dictionary
/// registrations in `crates/primitives/src/registry.rs`:
///
/// * every signature in `DECODE_FLAVOR_ALLOWLIST` must appear as a
///   registered signature string in the registry,
/// * the kernel file must define exactly the pinned number of flavor
///   functions per signature (named `<signature>_<flavor>`), each of
///   which must also appear in the registry's registration code, and
/// * any `decode_*` identifier in the kernel file that extends no known
///   signature (a new kernel family) fails until the allowlist names it.
fn lint_decode_flavors(root: &Path, violations: &mut Vec<String>) {
    let decode_src = match fs::read_to_string(root.join("crates/primitives/src/decode.rs")) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!("crates/primitives/src/decode.rs: unreadable: {e}"));
            return;
        }
    };
    let registry_src = match fs::read_to_string(root.join("crates/primitives/src/registry.rs")) {
        Ok(s) => s,
        Err(e) => {
            violations.push(format!(
                "crates/primitives/src/registry.rs: unreadable: {e}"
            ));
            return;
        }
    };
    let kernels = identifiers_with_prefix(non_test_region(&decode_src), "decode_");
    let registry = non_test_region(&registry_src);
    for (sig, pinned, _) in DECODE_FLAVOR_ALLOWLIST {
        if !registry.contains(&format!("\"{sig}\"")) {
            violations.push(format!(
                "registry.rs: decode signature \"{sig}\" is not registered in \
                 the PrimitiveDictionary; the scan layer cannot instantiate it"
            ));
        }
        let flavors: Vec<&String> = kernels
            .iter()
            .filter(|k| k.starts_with(&format!("{sig}_")))
            .collect();
        if flavors.len() != *pinned {
            violations.push(format!(
                "decode.rs: signature {sig} defines {} flavor kernel(s), \
                 DECODE_FLAVOR_ALLOWLIST pins {pinned}; keep ≥ 3 flavors per \
                 signature and the pin exact",
                flavors.len()
            ));
        }
        for f in flavors {
            if !registry.contains(f.as_str()) {
                violations.push(format!(
                    "registry.rs: decode flavor {f} is defined in decode.rs but \
                     never registered under \"{sig}\"; the bandit cannot pick \
                     an unregistered flavor"
                ));
            }
        }
    }
    for k in &kernels {
        let known = DECODE_FLAVOR_ALLOWLIST
            .iter()
            .any(|(sig, _, _)| *k == *sig || k.starts_with(&format!("{sig}_")));
        if !known {
            violations.push(format!(
                "decode.rs: kernel identifier {k} extends no signature in \
                 DECODE_FLAVOR_ALLOWLIST; add the new decode family (with ≥ 3 \
                 flavors) to the allowlist and register it"
            ));
        }
    }
}

/// All distinct identifiers in `src` starting with `prefix` (identifier
/// characters: ASCII alphanumerics and `_`), sorted. A hand-rolled
/// scanner — the lint stays dependency-free.
fn identifiers_with_prefix(src: &str, prefix: &str) -> Vec<String> {
    let bytes = src.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut out = std::collections::BTreeSet::new();
    let mut start = 0;
    while let Some(pos) = src[start..].find(prefix) {
        let begin = start + pos;
        // Reject matches inside a longer identifier (e.g. `x_decode_`).
        if begin > 0 && is_ident(bytes[begin - 1]) {
            start = begin + prefix.len();
            continue;
        }
        let mut end = begin + prefix.len();
        while end < bytes.len() && is_ident(bytes[end]) {
            end += 1;
        }
        // The bare prefix (e.g. `decode_*` in prose) is not an identifier.
        if end > begin + prefix.len() {
            out.insert(src[begin..end].to_string());
        }
        start = end;
    }
    out.into_iter().collect()
}

/// Compares a measured count against an exact-count allowlist entry
/// (default 0), reporting both overshoot and stale-allowlist undershoot.
fn check_exact(
    rel: &str,
    what: &str,
    count: usize,
    allowlist: &[(&str, usize, &str)],
    advice: &str,
    violations: &mut Vec<String>,
) {
    let allowed = allowlist
        .iter()
        .find(|(f, _, _)| *f == rel)
        .map(|(_, n, _)| *n)
        .unwrap_or(0);
    if count > allowed {
        violations.push(format!(
            "{rel}: {count} {what} in non-test code, allowlist permits {allowed}; {advice}"
        ));
    } else if count < allowed {
        violations.push(format!(
            "{rel}: {count} {what} but the allowlist still records {allowed}; \
             shrink its entry so the list stays exact"
        ));
    }
}

/// All `.rs` files under `dir`, recursively, in sorted order (stable
/// output for CI diffs). Skips `target/` just in case.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match fs::read_dir(&d) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_test_region_truncates_at_cfg_test() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n";
        assert_eq!(non_test_region(src), "fn a() {}\n");
        assert_eq!(non_test_region("fn a() {}\n"), "fn a() {}\n");
    }

    #[test]
    fn count_matches_counts_all_needles() {
        assert_eq!(
            count_matches("x.unwrap(); y.expect(\"m\")", &[".unwrap()", ".expect("]),
            2
        );
    }

    #[test]
    fn lint_passes_on_this_repo() {
        let root = repo_root();
        let mut violations = Vec::new();
        lint_ops_unwraps(&root, &mut violations);
        lint_test_sleeps(&root, &mut violations);
        lint_operator_stats(&root, &mut violations);
        lint_mem_facade(&root, &mut violations);
        lint_decode_flavors(&root, &mut violations);
        assert!(violations.is_empty(), "lint violations: {violations:#?}");
    }

    #[test]
    fn identifier_scanner_respects_boundaries() {
        let src = "fn decode_for_i32_x() {} x_decode_y(); decode_a; decoded";
        assert_eq!(
            identifiers_with_prefix(src, "decode_"),
            vec!["decode_a".to_string(), "decode_for_i32_x".to_string()]
        );
    }
}
