//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion 0.5's API that this workspace's
//! benches use: `Criterion::benchmark_group`, group configuration
//! (`throughput`, `sample_size`, `measurement_time`, `warm_up_time`),
//! `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a plain wall-clock loop:
//! warm up for the configured duration, then collect `sample_size`
//! samples (batches of iterations) within the measurement budget and
//! report mean/min per-iteration time (plus element throughput when a
//! `Throughput::Elements` is set).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many bytes per iteration (decimal multiple).
    BytesDecimal(u64),
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; lets `bench_function` accept both
/// string names and full ids, mirroring criterion's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Timing loop handle passed to benchmark routines.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target_iters: u64,
}

impl Bencher {
    /// Runs `routine` `target_iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = self.target_iters;
    }

    /// Like [`Bencher::iter`], with a per-sample setup closure whose cost is
    /// excluded from the measurement (criterion's `iter_batched` with
    /// `BatchSize::PerIteration` semantics, simplified).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.target_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters_done = self.target_iters;
    }
}

/// Batch sizing hint for `iter_batched` (ignored by the stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input batches.
    SmallInput,
    /// Large input batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            sample_size: 20,
            warm_up_time: Duration::from_millis(150),
            measurement_time: Duration::from_millis(400),
            throughput: None,
        }
    }
}

/// The benchmark manager. Created by `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration: the first non-flag argument is a
    /// substring filter on benchmark labels (as in `cargo bench -- <name>`);
    /// harness probe flags (`--bench`, `--test`, ...) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let filter = self.filter.clone();
        BenchmarkGroup {
            _parent: self,
            name: group_name.into(),
            config: GroupConfig::default(),
            filter,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        let mut group = BenchmarkGroup {
            _parent: self,
            name: String::new(),
            config: GroupConfig::default(),
            filter,
        };
        group.bench_function(id, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: GroupConfig,
    filter: Option<String>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.config.throughput = Some(throughput);
        self
    }

    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.config.warm_up_time = dur;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.config.measurement_time = dur;
        self
    }

    /// Benchmarks a routine under this group's configuration.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let label = if self.name.is_empty() {
            id.full
        } else {
            format!("{}/{}", self.name, id.full)
        };
        if self.matches(&label) {
            run_benchmark(&label, &self.config, |b| f(b));
        }
        self
    }

    /// Benchmarks a routine that takes a reference to a per-case input.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let label = if self.name.is_empty() {
            id.full
        } else {
            format!("{}/{}", self.name, id.full)
        };
        if self.matches(&label) {
            run_benchmark(&label, &self.config, |b| f(b, input));
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Ends the group (reports are emitted eagerly, so this is a no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, config: &GroupConfig, mut routine: F) {
    // Warm-up: also discovers how many iterations fit in the budget.
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        target_iters: 1,
    };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < config.warm_up_time {
        routine(&mut bencher);
        warm_iters += bencher.iters_done.max(1);
        warm_elapsed += bencher.elapsed;
        bencher.target_iters = bencher.target_iters.saturating_mul(2).min(1 << 20);
    }
    let per_iter = if warm_iters > 0 && !warm_elapsed.is_zero() {
        warm_elapsed.as_secs_f64() / warm_iters as f64
    } else {
        1e-6
    };

    // Measurement: `sample_size` samples splitting the measurement budget.
    let budget = config.measurement_time.as_secs_f64();
    let iters_per_sample = ((budget / config.sample_size as f64 / per_iter).ceil() as u64).max(1);
    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        bencher.target_iters = iters_per_sample;
        routine(&mut bencher);
        if bencher.iters_done > 0 {
            samples.push(bencher.elapsed.as_secs_f64() / bencher.iters_done as f64);
        }
    }
    if samples.is_empty() {
        println!("{label:<48} (no measurement: routine never called iter)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut line = format!(
        "{label:<48} mean {:>12}  min {:>12}  ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(min),
        samples.len(),
        iters_per_sample
    );
    if let Some(Throughput::Elements(n)) = config.throughput {
        let rate = n as f64 / mean;
        line.push_str(&format!("  thrpt {:.3} Melem/s", rate / 1e6));
    }
    println!("{line}");
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id().full, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").full, "x");
    }

    #[test]
    fn group_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            calls += 1;
        });
        group.finish();
        assert!(calls > 0);
    }
}
