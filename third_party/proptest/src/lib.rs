//! Offline stand-in for the `proptest` property-testing framework.
//!
//! Implements the subset used by this workspace's `tests/props.rs`:
//! the `proptest!` test-declaration macro, `prop_assert!` /
//! `prop_assert_eq!`, `any::<T>()` for primitives, integer-range
//! strategies, tuple strategies, `prop::collection::vec`, and string
//! strategies given as simple character-class regexes like
//! `"[a-c%_]{0,12}"`.
//!
//! Each test runs `PROPTEST_CASES` (default 64) cases. Values are drawn
//! from a SplitMix64 generator seeded deterministically from the case
//! index, so every run explores the same inputs and failures are
//! reproducible without persistence files. Failing inputs are not
//! shrunk: the panic message carries the case seed instead.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value using `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                Strategy::sample(&self.len, rng)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `&str` strategies are simple regexes: a sequence of literal
    /// characters and character classes, each optionally repeated with
    /// `{m,n}`, `*`, `+`, or `?`.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    enum Atom {
        Class(Vec<char>),
        Literal(char),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut members = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated character class in regex strategy"));
            match c {
                ']' => break,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().unwrap();
                    let hi = chars.next().unwrap();
                    assert!(lo <= hi, "invalid range {lo}-{hi} in regex strategy");
                    members.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                }
                c => {
                    if let Some(p) = prev.replace(c) {
                        members.push(p);
                    }
                }
            }
        }
        if let Some(p) = prev {
            members.push(p);
        }
        assert!(
            !members.is_empty(),
            "empty character class in regex strategy"
        );
        members
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in regex strategy")),
                ),
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' => {
                    panic!("unsupported regex construct {c:?} in strategy {pattern:?}")
                }
                c => Atom::Literal(c),
            };
            // Optional repetition suffix.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    let (lo, hi) = match spec.split_once(',') {
                        Some((lo, "")) => (lo.parse().unwrap(), usize::MAX),
                        Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                        None => {
                            let n = spec.parse().unwrap();
                            (n, n)
                        }
                    };
                    (lo, if hi == usize::MAX { lo + 8 } else { hi })
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            let count = if lo == hi {
                lo
            } else {
                lo + (rng.next_u64() as usize) % (hi - lo + 1)
            };
            for _ in 0..count {
                match &atom {
                    Atom::Class(members) => {
                        out.push(members[(rng.next_u64() as usize) % members.len()]);
                    }
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait backing it.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly unit-scale values: good enough for properties.
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    //! Deterministic RNG and runner configuration.

    /// SplitMix64: tiny, fast, and plenty random for test-case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn with_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Number of cases each `proptest!` test runs (`PROPTEST_CASES`,
    /// default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::test_runner::cases() {
                    // Distinct odd multiplier per case: consecutive seeds
                    // would otherwise overlap SplitMix64 streams.
                    let mut rng = $crate::test_runner::TestRng::with_seed(
                        (case + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::with_seed(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-5i32..17), &mut rng);
            assert!((-5..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::with_seed(9);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(any::<bool>(), 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn regex_strategy_generates_class_strings() {
        let mut rng = TestRng::with_seed(11);
        for _ in 0..500 {
            let s = Strategy::sample(&"[a-c%_]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '%' | '_')));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0i64..10, b in any::<u64>(), v in prop::collection::vec(0u32..3, 0..4)) {
            prop_assert!((0..10).contains(&a));
            prop_assert_eq!(b, b);
            prop_assert!(v.len() < 4);
        }
    }
}
