//! Golden-model cross-validation: every operator family checked against a
//! naive reference implementation on randomized inputs, and MergeJoin
//! checked against HashJoin on the same inputs.

use std::collections::BTreeMap;
use std::sync::Arc;

use micro_adaptivity::core::SplitMix64;
use micro_adaptivity::executor::ops::{
    collect, AggSpec, HashAggregate, HashJoin, JoinKind, MergeJoin, Scan, Select,
};
use micro_adaptivity::executor::{
    BoxOp, CmpKind, ExecConfig, FlavorAxis, Pred, QueryContext, Value,
};
use micro_adaptivity::primitives::build_dictionary;
use micro_adaptivity::vector::{ColumnBuilder, DataChunk, DataType, Table};

fn ctx() -> QueryContext {
    QueryContext::new(
        Arc::new(build_dictionary()),
        ExecConfig::adaptive(FlavorAxis::All).with_seed(99),
    )
}

/// Sorted unique-key table `(k, payload)`.
fn left_table(n: usize, seed: u64) -> (Arc<Table>, Vec<(i64, i64)>) {
    let mut rng = SplitMix64::new(seed);
    let mut rows: Vec<(i64, i64)> = Vec::new();
    let mut k = 0i64;
    for _ in 0..n {
        k += 1 + (rng.next_u64() % 3) as i64;
        rows.push((k, (rng.next_u64() % 1000) as i64));
    }
    let mut kb = ColumnBuilder::with_capacity(DataType::I64, n);
    let mut pb = ColumnBuilder::with_capacity(DataType::I64, n);
    for &(k, p) in &rows {
        kb.push_i64(k);
        pb.push_i64(p);
    }
    let t = Table::new(
        "l",
        vec![("k".into(), kb.finish()), ("p".into(), pb.finish())],
    )
    .unwrap();
    (Arc::new(t), rows)
}

/// Sorted many-key table `(k, v)` with duplicates.
fn right_table(n: usize, key_range: i64, seed: u64) -> (Arc<Table>, Vec<(i64, i64)>) {
    let mut rng = SplitMix64::new(seed);
    let mut rows: Vec<(i64, i64)> = (0..n)
        .map(|i| ((rng.next_u64() as i64).rem_euclid(key_range), i as i64))
        .collect();
    rows.sort_unstable();
    let mut kb = ColumnBuilder::with_capacity(DataType::I64, n);
    let mut vb = ColumnBuilder::with_capacity(DataType::I64, n);
    for &(k, v) in &rows {
        kb.push_i64(k);
        vb.push_i64(v);
    }
    let t = Table::new(
        "r",
        vec![("k".into(), kb.finish()), ("v".into(), vb.finish())],
    )
    .unwrap();
    (Arc::new(t), rows)
}

/// Collects `(right key, right v, left payload)` triples from join output.
fn join_rows(chunks: &[DataChunk]) -> Vec<(i64, i64, i64)> {
    let mut out = Vec::new();
    for ch in chunks {
        for p in ch.live_positions() {
            out.push((
                ch.column(0).as_i64()[p],
                ch.column(1).as_i64()[p],
                ch.column(2).as_i64()[p],
            ));
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn merge_join_equals_hash_join_and_reference() {
    let (lt, lrows) = left_table(500, 1);
    let (rt, rrows) = right_table(3000, 1200, 2);

    let c = ctx();
    let scan = |t: &Arc<Table>, cols: &[&str]| -> BoxOp {
        Box::new(Scan::new(Arc::clone(t), cols, 256).unwrap())
    };
    // MergeJoin: output = right cols ++ left payload.
    let mut mj = MergeJoin::new(
        scan(&lt, &["k", "p"]),
        scan(&rt, &["k", "v"]),
        0,
        0,
        vec![1],
        &c,
        "mj",
    )
    .unwrap();
    let mj_rows = join_rows(&collect(&mut mj).unwrap());

    // HashJoin (build = left, probe = right), same output layout.
    let mut hj = HashJoin::new(
        scan(&lt, &["k", "p"]),
        scan(&rt, &["k", "v"]),
        vec![0],
        vec![0],
        vec![1],
        JoinKind::Inner,
        true,
        vec![],
        &c,
        "hj",
    )
    .unwrap();
    let hj_rows = join_rows(&collect(&mut hj).unwrap());

    // Naive reference.
    let lmap: BTreeMap<i64, i64> = lrows.iter().copied().collect();
    let mut expect: Vec<(i64, i64, i64)> = rrows
        .iter()
        .filter_map(|&(k, v)| lmap.get(&k).map(|&p| (k, v, p)))
        .collect();
    expect.sort_unstable();

    assert_eq!(mj_rows, expect, "merge join vs reference");
    assert_eq!(hj_rows, expect, "hash join vs reference");
}

#[test]
fn hash_aggregate_equals_reference_under_selection() {
    let (rt, rrows) = right_table(5000, 40, 3);
    let c = ctx();
    let scan: BoxOp = Box::new(Scan::new(Arc::clone(&rt), &["k", "v"], 512).unwrap());
    // Filter v % ... — use v < 2500 to exercise the selection vector.
    let sel = Select::new(
        scan,
        &Pred::cmp_val(1, CmpKind::Lt, Value::I64(2500)),
        &c,
        "sel",
    )
    .unwrap();
    let mut agg = HashAggregate::new(
        Box::new(sel),
        vec![0],
        vec![
            AggSpec::CountStar,
            AggSpec::SumI64(1),
            AggSpec::MinI64(1),
            AggSpec::MaxI64(1),
        ],
        &c,
        "agg",
    )
    .unwrap();
    let chunks = collect(&mut agg).unwrap();
    let mut got: Vec<(i64, i64, i64, i64, i64)> = Vec::new();
    for ch in &chunks {
        for p in ch.live_positions() {
            got.push((
                ch.column(0).as_i64()[p],
                ch.column(1).as_i64()[p],
                ch.column(2).as_i64()[p],
                ch.column(3).as_i64()[p],
                ch.column(4).as_i64()[p],
            ));
        }
    }
    got.sort_unstable();

    let mut expect: BTreeMap<i64, (i64, i64, i64, i64)> = BTreeMap::new();
    for &(k, v) in rrows.iter().filter(|&&(_, v)| v < 2500) {
        let e = expect.entry(k).or_insert((0, 0, i64::MAX, i64::MIN));
        e.0 += 1;
        e.1 += v;
        e.2 = e.2.min(v);
        e.3 = e.3.max(v);
    }
    let expect: Vec<(i64, i64, i64, i64, i64)> = expect
        .into_iter()
        .map(|(k, (c, s, mn, mx))| (k, c, s, mn, mx))
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn semi_anti_partition_is_exact() {
    let (lt, lrows) = left_table(200, 7);
    let (rt, rrows) = right_table(2000, 800, 8);
    let c = ctx();
    let scan = |t: &Arc<Table>, cols: &[&str]| -> BoxOp {
        Box::new(Scan::new(Arc::clone(t), cols, 128).unwrap())
    };
    let run = |kind: JoinKind| -> Vec<i64> {
        let mut j = HashJoin::new(
            scan(&lt, &["k"]),
            scan(&rt, &["k", "v"]),
            vec![0],
            vec![0],
            vec![],
            kind,
            true,
            vec![],
            &c,
            "j",
        )
        .unwrap();
        let mut vs: Vec<i64> = collect(&mut j)
            .unwrap()
            .iter()
            .flat_map(|ch| {
                ch.live_positions()
                    .into_iter()
                    .map(|p| ch.column(1).as_i64()[p])
                    .collect::<Vec<_>>()
            })
            .collect();
        vs.sort_unstable();
        vs
    };
    let semi = run(JoinKind::Semi);
    let anti = run(JoinKind::Anti);
    let keys: std::collections::BTreeSet<i64> = lrows.iter().map(|&(k, _)| k).collect();
    let mut expect_semi: Vec<i64> = rrows
        .iter()
        .filter(|&&(k, _)| keys.contains(&k))
        .map(|&(_, v)| v)
        .collect();
    expect_semi.sort_unstable();
    assert_eq!(semi, expect_semi);
    // Semi ∪ Anti = everything, disjoint.
    assert_eq!(semi.len() + anti.len(), rrows.len());
    let mut all = semi.clone();
    all.extend(&anti);
    all.sort_unstable();
    let mut expect_all: Vec<i64> = rrows.iter().map(|&(_, v)| v).collect();
    expect_all.sort_unstable();
    assert_eq!(all, expect_all);
}
