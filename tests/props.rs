//! Property-based tests (proptest) over the public API: flavor
//! extensional equivalence, APH invariants, selection-vector algebra, LIKE
//! semantics, merging-exchange order restoration, and bandit sanity.

use micro_adaptivity::core::policy::{Policy, VwGreedy, VwGreedyParams};
use micro_adaptivity::core::{Aph, SplitMix64};
use micro_adaptivity::primitives::map_arith::{
    map_col_col_clang, map_col_col_full, map_col_col_icc, map_col_col_selective,
    map_col_col_unroll8,
};
use micro_adaptivity::primitives::merge::{
    mergejoin_i64_clang, mergejoin_i64_gcc, mergejoin_i64_icc,
};
use micro_adaptivity::primitives::ops::{Add, Mul, Sub};
use micro_adaptivity::primitives::ops::{EqOp, Ge, Gt, Le, Lt, NeOp};
use micro_adaptivity::primitives::selection::{
    sel_col_val_branching, sel_col_val_clang, sel_col_val_icc, sel_col_val_no_branching,
    sel_col_val_unroll8,
};
use micro_adaptivity::primitives::LikePattern;
use micro_adaptivity::vector::SelVec;
use proptest::prelude::*;

/// Naive LIKE semantics to check the compiled matcher against.
fn like_naive(s: &str, pat: &str) -> bool {
    // Translate into a regex-free recursive matcher over chars.
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => (0..=s.len()).any(|i| rec(&s[i..], &p[1..])),
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => !s.is_empty() && s[0] == c && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pat.as_bytes())
}

proptest! {
    #[test]
    fn selection_flavors_are_extensionally_equal(
        col in prop::collection::vec(-1000i32..1000, 0..300),
        val in -1000i32..1000,
        sel_mask in prop::collection::vec(any::<bool>(), 0..300),
    ) {
        let sel: Vec<u32> = sel_mask
            .iter()
            .take(col.len())
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        macro_rules! check_op {
            ($op:ty) => {{
                for sv in [None, Some(sel.as_slice())] {
                    let cap = sv.map_or(col.len(), <[u32]>::len);
                    let mut r0 = vec![0u32; cap];
                    let k0 = sel_col_val_branching::<i32, $op>(&mut r0, &col, val, sv);
                    for f in [
                        sel_col_val_no_branching::<i32, $op>
                            as micro_adaptivity::primitives::SelColVal<i32>,
                        sel_col_val_icc::<i32, $op>,
                        sel_col_val_clang::<i32, $op>,
                        sel_col_val_unroll8::<i32, $op>,
                    ] {
                        let mut r = vec![0u32; cap];
                        let k = f(&mut r, &col, val, sv);
                        prop_assert_eq!(k, k0);
                        prop_assert_eq!(&r[..k], &r0[..k0]);
                    }
                }
            }};
        }
        check_op!(Lt);
        check_op!(Le);
        check_op!(Gt);
        check_op!(Ge);
        check_op!(EqOp);
        check_op!(NeOp);
    }

    #[test]
    fn map_flavors_agree_on_live_positions(
        a in prop::collection::vec(-10_000i64..10_000, 1..300),
        b_seed in any::<u64>(),
        sel_mask in prop::collection::vec(any::<bool>(), 0..300),
    ) {
        let n = a.len();
        let mut rng = SplitMix64::new(b_seed);
        let b: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 20_000) as i64 - 10_000).collect();
        let sel: Vec<u32> = sel_mask
            .iter()
            .take(n)
            .enumerate()
            .filter_map(|(i, &x)| x.then_some(i as u32))
            .collect();
        macro_rules! check_op {
            ($op:ty) => {{
                for sv in [None, Some(sel.as_slice())] {
                    let mut expect = vec![0i64; n];
                    map_col_col_selective::<i64, $op>(&mut expect, &a, &b, sv);
                    for f in [
                        map_col_col_full::<i64, $op>
                            as micro_adaptivity::primitives::MapColCol<i64>,
                        map_col_col_unroll8::<i64, $op>,
                        map_col_col_icc::<i64, $op>,
                        map_col_col_clang::<i64, $op>,
                    ] {
                        let mut got = vec![0i64; n];
                        f(&mut got, &a, &b, sv);
                        match sv {
                            None => prop_assert_eq!(&got, &expect),
                            Some(s) => {
                                for &i in s {
                                    prop_assert_eq!(got[i as usize], expect[i as usize]);
                                }
                            }
                        }
                    }
                }
            }};
        }
        check_op!(Add);
        check_op!(Sub);
        check_op!(Mul);
    }

    #[test]
    fn mergejoin_flavors_agree(
        lraw in prop::collection::vec(0i64..500, 0..200),
        rraw in prop::collection::vec(0i64..500, 0..200),
    ) {
        let mut lkeys = lraw.clone();
        lkeys.sort_unstable();
        lkeys.dedup();
        let mut rkeys = rraw.clone();
        rkeys.sort_unstable();
        let cap = rkeys.len();
        let run = |f: micro_adaptivity::primitives::MergeJoinFn| {
            let mut rpos = vec![0u32; cap];
            let mut lidx = vec![0u32; cap];
            let mut cursor = 0;
            let k = f(&mut cursor, &lkeys, &rkeys, None, &mut rpos, &mut lidx);
            rpos.truncate(k);
            lidx.truncate(k);
            (rpos, lidx)
        };
        let expect = run(mergejoin_i64_gcc);
        prop_assert_eq!(run(mergejoin_i64_icc), expect.clone());
        prop_assert_eq!(run(mergejoin_i64_clang), expect.clone());
        // Semantics: exactly the right positions whose key is in lkeys.
        let (rpos, lidx) = expect;
        let in_left: Vec<u32> = rkeys
            .iter()
            .enumerate()
            .filter(|(_, k)| lkeys.binary_search(k).is_ok())
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(rpos.clone(), in_left);
        for (r, l) in rpos.iter().zip(&lidx) {
            prop_assert_eq!(rkeys[*r as usize], lkeys[*l as usize]);
        }
    }

    #[test]
    fn aph_conserves_totals_and_bounds_buckets(
        calls in prop::collection::vec((1u64..5000, 1u64..100_000), 1..2000),
    ) {
        let mut aph = Aph::new(64);
        let (mut tt, mut tk) = (0u64, 0u64);
        for &(tuples, ticks) in &calls {
            aph.record(tuples, ticks);
            tt += tuples;
            tk += ticks;
        }
        prop_assert_eq!(aph.total_calls(), calls.len() as u64);
        prop_assert_eq!(aph.total_tuples(), tt);
        prop_assert_eq!(aph.total_ticks(), tk);
        prop_assert!(aph.buckets().len() < 64);
        prop_assert!(aph.calls_per_bucket().is_power_of_two());
        // Full buckets all cover the same number of calls.
        for b in aph.buckets() {
            prop_assert_eq!(b.calls, aph.calls_per_bucket());
        }
    }

    #[test]
    fn selvec_compose_is_associative_with_identity(
        base in prop::collection::vec(any::<bool>(), 0..200),
        inner_mask in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let positions: Vec<u32> = base
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        let s = SelVec::from_positions(positions);
        let id = SelVec::identity(s.len());
        prop_assert_eq!(s.compose(&id), s.clone());
        // Compose with an arbitrary inner selection: results are a subset
        // in the same order.
        let inner: Vec<u32> = inner_mask
            .iter()
            .take(s.len())
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        let inner = SelVec::from_positions(inner);
        let composed = s.compose(&inner);
        prop_assert_eq!(composed.len(), inner.len());
        for p in composed.iter() {
            prop_assert!(s.iter().any(|q| q == p));
        }
    }

    #[test]
    fn selvec_roundtrips_through_sharded_range_splits(
        mask in prop::collection::vec(any::<bool>(), 0..400),
        cut_a in 0usize..400,
        cut_b in 0usize..400,
    ) {
        // Split a selection vector at two arbitrary boundaries, rebase each
        // shard locally, then concat-shift back: must equal the original.
        let n = mask.len();
        let positions: Vec<u32> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        let s = SelVec::from_positions(positions);
        let (lo, hi) = if cut_a <= cut_b { (cut_a, cut_b) } else { (cut_b, cut_a) };
        let (lo, hi) = (lo.min(n) as u32, hi.min(n) as u32);
        let a = s.slice_range(0, lo);
        let b = s.slice_range(lo, hi);
        let c = s.slice_range(hi, n as u32);
        prop_assert_eq!(a.len() + b.len() + c.len(), s.len());
        let back = SelVec::concat_shifted(&[(&a, 0), (&b, lo), (&c, hi)]);
        prop_assert_eq!(back, s);
    }

    #[test]
    fn sharded_selection_equals_unsharded_selection(
        col in prop::collection::vec(-1000i32..1000, 1..400),
        val in -1000i32..1000,
        sel_mask in prop::collection::vec(any::<bool>(), 0..400),
        cut in 0usize..400,
    ) {
        // The parallel-scan contract: applying a selection primitive per
        // range shard (with the incoming selection vector sliced to the
        // shard and rebased) and concatenating shard outputs must equal one
        // unsharded application. Checked for every selection flavor, with
        // and without an incoming selection vector.
        let n = col.len();
        let cut = cut.min(n);
        let sel: Vec<u32> = sel_mask
            .iter()
            .take(n)
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        let sel = SelVec::from_positions(sel);
        let flavors: [micro_adaptivity::primitives::SelColVal<i32>; 5] = [
            sel_col_val_branching::<i32, Lt>,
            sel_col_val_no_branching::<i32, Lt>,
            sel_col_val_icc::<i32, Lt>,
            sel_col_val_clang::<i32, Lt>,
            sel_col_val_unroll8::<i32, Lt>,
        ];
        for f in flavors {
            for use_sel in [false, true] {
                // Unsharded reference.
                let full_sel = use_sel.then(|| sel.as_slice().to_vec());
                let cap = full_sel.as_ref().map_or(n, Vec::len);
                let mut full = vec![0u32; cap];
                let k = f(&mut full, &col, val, full_sel.as_deref());
                full.truncate(k);

                // Two shards: [0, cut) and [cut, n), each applied locally.
                let mut pieces: Vec<(SelVec, u32)> = Vec::new();
                for (start, end) in [(0u32, cut as u32), (cut as u32, n as u32)] {
                    if start == end {
                        continue;
                    }
                    let shard_col = &col[start as usize..end as usize];
                    let local = sel.slice_range(start, end);
                    let local_sel = use_sel.then(|| local.as_slice().to_vec());
                    let cap = local_sel.as_ref().map_or(shard_col.len(), Vec::len);
                    let mut out = vec![0u32; cap];
                    let k = f(&mut out, shard_col, val, local_sel.as_deref());
                    out.truncate(k);
                    pieces.push((SelVec::from_positions(out), start));
                }
                let refs: Vec<(&SelVec, u32)> =
                    pieces.iter().map(|(s, o)| (s, *o)).collect();
                let merged = SelVec::concat_shifted(&refs);
                prop_assert_eq!(
                    merged.as_slice(),
                    full.as_slice(),
                    "flavor output diverged at cut {} (use_sel={})",
                    cut,
                    use_sel
                );
            }
        }
    }

    #[test]
    fn like_matches_naive_semantics(
        s in "[a-c%_]{0,12}",
        pat in "[a-c%_]{0,8}",
    ) {
        let compiled = LikePattern::compile(&pat);
        prop_assert_eq!(compiled.matches(&s), like_naive(&s, &pat), "s={} pat={}", s, pat);
    }

    #[test]
    fn merging_exchange_restores_global_order(
        raw_streams in prop::collection::vec(
            prop::collection::vec(-500i64..500, 0..120),
            1..5,
        ),
        chunk_rows in 1usize..9,
    ) {
        use micro_adaptivity::executor::ops::{collect, BoxOp, MergeExchange, Operator};
        use micro_adaptivity::executor::ExecError;
        use micro_adaptivity::vector::{DataChunk, DataType, Vector};
        use std::sync::Arc;

        /// Replays fixed chunks: an arbitrary (but sorted) worker stream.
        struct Replay {
            chunks: std::collections::VecDeque<DataChunk>,
            types: Vec<DataType>,
        }
        impl Operator for Replay {
            fn next(&mut self) -> Result<Option<DataChunk>, ExecError> {
                Ok(self.chunks.pop_front())
            }
            fn out_types(&self) -> &[DataType] {
                &self.types
            }
        }

        // Each producer stream must be internally sorted (the exchange's
        // precondition — the planner guarantees it via clustering-key
        // chains); across streams values overlap and repeat arbitrarily.
        let mut streams = raw_streams;
        for s in &mut streams {
            s.sort_unstable();
        }
        let producers: Vec<BoxOp> = streams
            .iter()
            .map(|s| {
                Box::new(Replay {
                    chunks: s
                        .chunks(chunk_rows)
                        .map(|c| {
                            DataChunk::new(vec![Arc::new(Vector::I64(c.to_vec()))])
                        })
                        .collect(),
                    types: vec![DataType::I64],
                }) as BoxOp
            })
            .collect();
        let mut ex = MergeExchange::new(producers, 0).unwrap();
        let chunks = collect(&mut ex).unwrap();
        let merged: Vec<i64> = chunks
            .iter()
            .flat_map(|c| {
                c.live_positions()
                    .into_iter()
                    .map(|p| c.column(0).as_i64()[p])
                    .collect::<Vec<_>>()
            })
            .collect();
        // Globally sorted...
        prop_assert!(merged.windows(2).all(|w| w[0] <= w[1]), "not sorted: {:?}", merged);
        // ... and a multiset-equal union of the inputs.
        let mut want: Vec<i64> = streams.iter().flatten().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(merged, want);
    }

    #[test]
    fn vw_greedy_total_cost_bounded_by_worst_flavor(
        costs in prop::collection::vec(1u64..100, 2..5),
        seed in any::<u64>(),
    ) {
        // On stationary costs the bandit can never exceed the worst fixed
        // flavor's total (it would have to choose the worst arm always).
        let mut p = VwGreedy::new(
            costs.len(),
            VwGreedyParams {
                explore_period: 64,
                exploit_period: 16,
                explore_length: 4,
            },
            SplitMix64::new(seed),
        );
        let calls = 4096;
        let mut total = 0u64;
        for _ in 0..calls {
            let f = p.choose();
            let c = costs[f] * 1000;
            p.observe(f, 1000, c);
            total += c;
        }
        let worst = *costs.iter().max().unwrap() * 1000 * calls;
        let best = *costs.iter().min().unwrap() * 1000 * calls;
        prop_assert!(total <= worst);
        prop_assert!(total >= best);
    }
}
