//! Parallel-execution determinism: every TPC-H query must produce the same
//! *result set* no matter how many scan workers run it, and per-worker
//! primitive statistics must merge to the single-threaded totals.
//!
//! Chunk *order* is allowed to differ (a morsel union interleaves worker
//! streams), so rows are compared sort-normalized: each row serialized with
//! floats rounded well above f64 ulp noise (parallel aggregation reorders
//! float additions), then the sorted row lists compared exactly.

use std::sync::{Arc, OnceLock};

use micro_adaptivity::executor::{ExecConfig, FlavorAxis, QueryContext};
use micro_adaptivity::primitives::build_dictionary;
use micro_adaptivity::tpch::queries::QueryOutput;
use micro_adaptivity::tpch::{run_query, Params, TpchData};
use micro_adaptivity::vector::Vector;

const SF: f64 = 0.05;

fn db() -> &'static TpchData {
    static DB: OnceLock<TpchData> = OnceLock::new();
    DB.get_or_init(|| TpchData::generate(SF, 0x9A8A11E1))
}

fn run(q: usize, config: ExecConfig) -> (QueryOutput, QueryContext) {
    let ctx = QueryContext::new(Arc::new(build_dictionary()), config);
    let out =
        run_query(q, db(), &ctx, &Params::default()).unwrap_or_else(|e| panic!("Q{q} failed: {e}"));
    (out, ctx)
}

/// Rows of a result store, serialized and sorted. Floats are rounded to 6
/// significant digits: far coarser than the ulp-level differences parallel
/// float summation introduces, far finer than any genuine result change.
fn normalized_rows(out: &QueryOutput) -> Vec<String> {
    let store = &out.store;
    let mut rows = Vec::with_capacity(store.rows());
    for r in 0..store.rows() {
        let mut row = String::new();
        for c in 0..store.types().len() {
            match store.col(c) {
                Vector::I16(v) => row.push_str(&format!("{}|", v[r])),
                Vector::I32(v) => row.push_str(&format!("{}|", v[r])),
                Vector::I64(v) => row.push_str(&format!("{}|", v[r])),
                Vector::F64(v) => row.push_str(&format!("{:.6e}|", v[r])),
                Vector::Str(s) => {
                    row.push_str(s.get(r));
                    row.push('|');
                }
            }
        }
        rows.push(row);
    }
    rows.sort_unstable();
    rows
}

#[test]
fn every_query_is_worker_count_invariant_under_fixed_flavors() {
    // 1 worker runs single aggregate and join instances; 2 and 4 workers
    // run hash-partitioned aggregation AND hash-partitioned join builds
    // (both planner defaults when workers shard), with Q12's merge-join
    // inputs sharded behind merging exchanges — results must be identical
    // either way.
    for q in 1..=22 {
        let (one, _) = run(q, ExecConfig::fixed_default());
        for workers in [2, 4] {
            let (par, _) = run(q, ExecConfig::fixed_default().with_workers(workers));
            assert_eq!(one.rows, par.rows, "Q{q} row count at {workers} workers");
            let tol = 1e-9 * one.checksum.abs().max(1.0);
            assert!(
                (one.checksum - par.checksum).abs() <= tol,
                "Q{q} checksum at {workers} workers: {} vs {}",
                one.checksum,
                par.checksum
            );
            assert_eq!(
                normalized_rows(&one),
                normalized_rows(&par),
                "Q{q} sort-normalized rows differ between 1 and {workers} workers"
            );
        }
    }
}

/// The planner must actually engage partitioned aggregation on the
/// aggregation-heavy queries (one private `HashAggregate` per partition,
/// all under the plan node's label), and per-partition statistics must
/// merge to the single-thread totals for tuple counts (call counts differ:
/// routing splits chunks).
#[test]
fn partitioned_aggregation_engages_with_private_instances() {
    let (_, ctx1) = run(1, ExecConfig::fixed_default());
    let (_, ctx4) = run(1, ExecConfig::fixed_default().with_workers(4));
    let count_instances =
        |ctx: &QueryContext, label: &str| ctx.reports().iter().filter(|r| r.label == label).count();
    assert_eq!(count_instances(&ctx1, "Q1/agg/aggr_count"), 1);
    assert_eq!(
        count_instances(&ctx4, "Q1/agg/aggr_count"),
        4,
        "Q1's aggregate should run one instance per partition"
    );
    let agg_tuples = |ctx: &QueryContext| {
        ctx.merged_reports()
            .into_iter()
            .filter(|r| r.signature.starts_with("aggr_") || r.signature.starts_with("hash_"))
            .map(|r| (r.label, r.signature, r.tuples))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        agg_tuples(&ctx1),
        agg_tuples(&ctx4),
        "merged per-partition aggregate tuple totals must equal single-thread totals"
    );
}

/// Forcing `agg_partitions = 1` disables partitioning even on sharded
/// scans — and the results still match, so the partitioned and single
/// paths are interchangeable.
#[test]
fn partitioning_can_be_disabled_per_config() {
    for (q, probe_label) in [(1, "Q1/agg/aggr_count"), (10, "Q10/agg/aggr_sum_f64")] {
        let (single, ctx_s) = run(
            q,
            ExecConfig::fixed_default()
                .with_workers(4)
                .with_agg_partitions(1),
        );
        let (part, _) = run(q, ExecConfig::fixed_default().with_workers(4));
        assert_eq!(
            normalized_rows(&single),
            normalized_rows(&part),
            "Q{q} partitioned vs single aggregation"
        );
        let agg_instances = ctx_s
            .reports()
            .iter()
            .filter(|r| r.label == probe_label)
            .count();
        assert_eq!(agg_instances, 1, "Q{q} should run a single aggregate");
    }
}

/// The planner must actually engage partitioned join builds on the
/// join-heavy queries: one private `HashJoin` instance per partition
/// (visible as per-partition probe-hash and bloom instances under the
/// plan node's label), with merged `hash_*`/fetch tuple totals equal to
/// the single-thread run (calls differ: routing splits chunks).
#[test]
fn partitioned_join_builds_engage_with_private_instances() {
    let (_, ctx1) = run(3, ExecConfig::fixed_default());
    let (_, ctx4) = run(3, ExecConfig::fixed_default().with_workers(4));
    let count_instances =
        |ctx: &QueryContext, label: &str| ctx.reports().iter().filter(|r| r.label == label).count();
    for label in [
        "Q3/join_orders/map_hash",
        "Q3/join_orders/sel_bloomfilter",
        "Q3/join_cust/map_hash",
    ] {
        assert_eq!(count_instances(&ctx1, label), 1, "{label} single-thread");
        assert_eq!(
            count_instances(&ctx4, label),
            4,
            "{label}: expected one instance per join partition"
        );
    }
    let join_tuples = |ctx: &QueryContext| {
        ctx.merged_reports()
            .into_iter()
            .filter(|r| r.label.starts_with("Q3/join_"))
            .map(|r| (r.label, r.signature, r.tuples))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        join_tuples(&ctx1),
        join_tuples(&ctx4),
        "merged per-partition join tuple totals must equal single-thread totals"
    );
}

/// Forcing `join_partitions = 1` disables join partitioning even when the
/// inputs shard — and the results still match, so the partitioned and
/// single join paths are interchangeable.
#[test]
fn join_partitioning_can_be_disabled_per_config() {
    for (q, probe_label) in [
        (3, "Q3/join_orders/map_hash"),
        (10, "Q10/join_cust/map_hash"),
    ] {
        let (single, ctx_s) = run(
            q,
            ExecConfig::fixed_default()
                .with_workers(4)
                .with_join_partitions(1),
        );
        let (part, _) = run(q, ExecConfig::fixed_default().with_workers(4));
        assert_eq!(
            normalized_rows(&single),
            normalized_rows(&part),
            "Q{q} partitioned vs single join"
        );
        let join_instances = ctx_s
            .reports()
            .iter()
            .filter(|r| r.label == probe_label)
            .count();
        assert_eq!(join_instances, 1, "Q{q} should run a single join");
    }
}

#[test]
fn adaptive_runs_are_worker_count_invariant() {
    // Flavor choices race across workers, but flavors are extensionally
    // equal — results must not move. Exercise the paper's full flavor set.
    for q in [1, 3, 6, 9, 12, 18, 21] {
        let base = ExecConfig::adaptive(FlavorAxis::All).with_seed(q as u64);
        let (one, _) = run(q, base.clone());
        let (four, _) = run(q, base.with_workers(4));
        assert_eq!(one.rows, four.rows, "Q{q} rows");
        assert_eq!(
            normalized_rows(&one),
            normalized_rows(&four),
            "Q{q} adaptive rows differ between 1 and 4 workers"
        );
    }
}

#[test]
fn two_parallel_runs_agree_with_each_other() {
    // Morsel scheduling differs run to run; results must not.
    for q in [1, 6, 13] {
        let (a, _) = run(q, ExecConfig::fixed_default().with_workers(4));
        let (b, _) = run(q, ExecConfig::fixed_default().with_workers(4));
        assert_eq!(normalized_rows(&a), normalized_rows(&b), "Q{q} unstable");
    }
}

/// Per-worker flavor statistics, merged over the shared registry, must
/// equal the single-threaded totals: vector-aligned morsels make the chunk
/// boundary multiset thread-count-invariant, and under fixed flavors every
/// call lands on flavor 0, so calls/tuples/flavor-calls line up exactly.
/// The one exception is `sel_bloomfilter`, which lives *inside* joins:
/// when a join partitions, routing splits its probe chunks by key hash,
/// so the bloom filter sees more, smaller calls — tuple totals still
/// merge exactly, call counts don't (the same chunk-granularity caveat as
/// partitioned aggregation).
#[test]
fn merged_worker_stats_equal_single_thread_totals() {
    for q in [1, 4, 6, 10] {
        let (_, ctx1) = run(q, ExecConfig::fixed_default());
        let (_, ctx4) = run(q, ExecConfig::fixed_default().with_workers(4));
        let sel_only = |ctx: &QueryContext| {
            ctx.merged_reports()
                .into_iter()
                .filter(|r| r.signature.starts_with("sel_"))
                .collect::<Vec<_>>()
        };
        let one = sel_only(&ctx1);
        let four = sel_only(&ctx4);
        assert_eq!(one.len(), four.len(), "Q{q} instance groups");
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.label, b.label, "Q{q}");
            assert_eq!(a.signature, b.signature, "Q{q}");
            assert_eq!(a.tuples, b.tuples, "Q{q} {} tuples", a.label);
            if a.signature != "sel_bloomfilter" {
                assert_eq!(a.calls, b.calls, "Q{q} {} calls", a.label);
                assert_eq!(
                    a.flavor_calls, b.flavor_calls,
                    "Q{q} {} flavor calls",
                    a.label
                );
            }
        }
    }
}

#[test]
fn parallel_scan_reads_every_lineitem_row_once() {
    // A raw count(*) through the sharded scan path: Q1-style aggregation
    // over all of lineitem must see exactly the table's row count.
    let (out, _) = run(1, ExecConfig::fixed_default().with_workers(4));
    let counts = out.store.col(9).as_i64();
    let total: i64 = counts.iter().sum();
    let expected = db().lineitem.column("l_shipdate").unwrap().len();
    // Q1 filters by shipdate cutoff, so total ≤ rows but must be > 90%
    // of the table (the cutoff keeps all but the last ~3 months).
    assert!(total as usize <= expected);
    assert!(
        total as usize > expected * 9 / 10,
        "Q1 aggregated {total} of {expected} rows"
    );
}
