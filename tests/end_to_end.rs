//! Cross-crate integration: dbgen → all 22 query plans → executor, under
//! every engine configuration. The core guarantee: **flavor choice never
//! changes results** — only cost.

use std::sync::{Arc, OnceLock};

use micro_adaptivity::executor::{ExecConfig, FlavorAxis};
use micro_adaptivity::tpch::{Runner, TpchData};

fn runner() -> &'static Runner {
    static R: OnceLock<Runner> = OnceLock::new();
    R.get_or_init(|| Runner::new(Arc::new(TpchData::generate(0.004, 0xE2E))))
}

fn assert_close(a: f64, b: f64, what: &str) {
    let tol = 1e-6 * a.abs().max(1.0);
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
}

#[test]
fn all_queries_run_under_stock_engine() {
    for q in 1..=22 {
        let r = runner()
            .run(q, ExecConfig::fixed_default())
            .unwrap_or_else(|e| panic!("Q{q}: {e}"));
        assert!(r.stages.execute > 0, "Q{q} did no work");
        assert!(
            !r.instances.is_empty(),
            "Q{q} created no primitive instances"
        );
    }
}

#[test]
fn adaptive_engine_matches_stock_results_on_all_queries() {
    for q in 1..=22 {
        let base = runner().run(q, ExecConfig::fixed_default()).unwrap();
        let adapt = runner()
            .run(q, ExecConfig::adaptive(FlavorAxis::All).with_seed(q as u64))
            .unwrap();
        assert_eq!(base.rows, adapt.rows, "Q{q} row count");
        assert_close(base.checksum, adapt.checksum, &format!("Q{q} checksum"));
    }
}

#[test]
fn heuristic_engine_matches_stock_results_on_all_queries() {
    for q in 1..=22 {
        let base = runner().run(q, ExecConfig::fixed_default()).unwrap();
        let heur = runner().run(q, ExecConfig::heuristic()).unwrap();
        assert_eq!(base.rows, heur.rows, "Q{q} row count");
        assert_close(base.checksum, heur.checksum, &format!("Q{q} checksum"));
    }
}

#[test]
fn every_fixed_flavor_matches_stock_results() {
    // Forcing any single flavor engine-wide must never change results —
    // the extensional-equivalence contract of a flavor set (§1).
    for flavor in [
        "branching",
        "no_branching",
        "gcc",
        "icc",
        "clang",
        "unroll8",
        "no_unroll",
        "selective",
        "full",
        "fused",
        "fission",
    ] {
        for q in [1, 4, 6, 12, 13, 16, 21] {
            let base = runner().run(q, ExecConfig::fixed_default()).unwrap();
            let fixed = runner().run(q, ExecConfig::fixed(flavor)).unwrap();
            assert_eq!(base.rows, fixed.rows, "Q{q} fixed({flavor}) rows");
            assert_close(
                base.checksum,
                fixed.checksum,
                &format!("Q{q} fixed({flavor})"),
            );
        }
    }
}

#[test]
fn adaptive_runs_have_deterministic_structure() {
    // Flavor *decisions* react to measured time and are not expected to be
    // bit-identical across runs; the plan structure, per-instance call
    // counts and results are.
    let a = runner()
        .run(6, ExecConfig::adaptive(FlavorAxis::All).with_seed(5))
        .unwrap();
    let b = runner()
        .run(6, ExecConfig::adaptive(FlavorAxis::All).with_seed(5))
        .unwrap();
    assert_eq!(a.rows, b.rows);
    assert!((a.checksum - b.checksum).abs() <= 1e-9 * a.checksum.abs().max(1.0));
    let sa: Vec<_> = a
        .instances
        .iter()
        .map(|i| (i.label.clone(), i.signature.clone(), i.calls, i.tuples))
        .collect();
    let sb: Vec<_> = b
        .instances
        .iter()
        .map(|i| (i.label.clone(), i.signature.clone(), i.calls, i.tuples))
        .collect();
    assert_eq!(sa, sb);
}

#[test]
fn instance_profiles_cover_primitive_families() {
    // A power run exercises every family the paper's flavor sets target.
    let mut seen_families: Vec<&str> = Vec::new();
    for q in [1, 2, 12, 16, 21] {
        let r = runner().run(q, ExecConfig::fixed_default()).unwrap();
        for i in &r.instances {
            for fam in [
                "sel_",
                "map_add",
                "map_mul",
                "map_fetch",
                "map_hash",
                "aggr_",
                "aggr0_",
                "hash_insertcheck",
                "mergejoin",
                "sel_bloomfilter",
            ] {
                if i.signature.starts_with(fam) && !seen_families.contains(&fam) {
                    seen_families.push(fam);
                }
            }
        }
    }
    for fam in [
        "sel_",
        "map_mul",
        "map_fetch",
        "map_hash",
        "aggr_",
        "hash_insertcheck",
        "mergejoin",
        "sel_bloomfilter",
    ] {
        assert!(
            seen_families.contains(&fam),
            "family {fam} never exercised; got {seen_families:?}"
        );
    }
}

#[test]
fn aphs_account_for_all_primitive_ticks() {
    let r = runner().run(1, ExecConfig::fixed_default()).unwrap();
    for i in &r.instances {
        if let Some(aph) = &i.aph {
            assert_eq!(aph.total_calls(), i.calls, "{}", i.label);
            assert_eq!(aph.total_ticks(), i.ticks, "{}", i.label);
            assert_eq!(aph.total_tuples(), i.tuples, "{}", i.label);
        }
    }
}
