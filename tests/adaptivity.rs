//! Behavioural integration tests for Micro Adaptivity itself: the bandit
//! must avoid catastrophic flavors, track non-stationary optima, and cost
//! little when there is nothing to learn.

use std::sync::Arc;

use micro_adaptivity::core::policy::VwGreedyParams;
use micro_adaptivity::core::{simulate_instance, PolicyKind};
use micro_adaptivity::executor::ops::{collect, Scan, Select};
use micro_adaptivity::executor::{
    BoxOp, CmpKind, ExecConfig, FlavorAxis, Pred, QueryContext, Value,
};
use micro_adaptivity::machsim::{fig10_trace, Fig10Spec};
use micro_adaptivity::primitives::build_dictionary;
use micro_adaptivity::vector::{ColumnBuilder, DataType, Table};

/// A table whose selectivity for `v < 500` changes phase mid-scan.
fn phased_table(n: usize) -> Arc<Table> {
    let mut col = ColumnBuilder::with_capacity(DataType::I32, n);
    let mut state = 7u64;
    for i in 0..n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let r = (state >> 40) as i32 % 1000;
        // First 40%: ~100% selective; middle 40%: ~50%; last 20%: ~0%.
        let v = if i < n * 2 / 5 {
            r / 100
        } else if i < n * 4 / 5 {
            r
        } else {
            500 + r / 2
        };
        col.push_i32(v);
    }
    Arc::new(Table::new("t", vec![("v".into(), col.finish())]).unwrap())
}

fn run_selection_once(table: &Arc<Table>, config: ExecConfig) -> (u64, usize) {
    let dict = Arc::new(build_dictionary());
    let ctx = QueryContext::new(dict, config);
    let scan: BoxOp = Box::new(Scan::new(Arc::clone(table), &["v"], 1024).unwrap());
    let mut sel = Select::new(
        scan,
        &Pred::cmp_val(0, CmpKind::Lt, Value::I32(500)),
        &ctx,
        "t",
    )
    .unwrap();
    let chunks = collect(&mut sel).unwrap();
    let rows = chunks.iter().map(|c| c.live_count()).sum();
    // Stats publish at batch granularity; drop the operator so the final
    // partial batch lands before the tick readout.
    drop(sel);
    (ctx.total_primitive_ticks(), rows)
}

/// Minimum total ticks over several runs. The tick totals are wall-clock
/// rdtsc sums, so one OS preemption mid-run adds millions of spurious
/// ticks; the minimum is the standard noise-robust estimator when
/// comparing implementations on a shared machine.
fn run_selection(table: &Arc<Table>, config: ExecConfig) -> (u64, usize) {
    let mut best: Option<(u64, usize)> = None;
    for _ in 0..3 {
        let (ticks, rows) = run_selection_once(table, config.clone());
        if let Some((_, prev_rows)) = best {
            assert_eq!(rows, prev_rows, "row count must not vary across runs");
        }
        best = Some(match best {
            Some((t, r)) => (t.min(ticks), r),
            None => (ticks, rows),
        });
    }
    best.unwrap()
}

#[test]
fn adaptive_selection_beats_worst_fixed_flavor_on_phased_data() {
    let table = phased_table(2_000_000);
    let (t_br, r1) = run_selection(&table, ExecConfig::fixed("branching"));
    let (t_nb, r2) = run_selection(&table, ExecConfig::fixed("no_branching"));
    let (t_ma, r3) = run_selection(
        &table,
        ExecConfig::adaptive(FlavorAxis::Branching).with_seed(42),
    );
    assert_eq!(r1, r2);
    assert_eq!(r1, r3);
    let worst = t_br.max(t_nb);
    let best = t_br.min(t_nb);
    // "Beat the worst flavor" is only a meaningful claim when the flavors
    // actually differ: on a loaded machine the branching/no_branching gap
    // can collapse into measurement noise, where an adaptive policy can at
    // best match the (≈equal) flavors plus its exploration overhead.
    if worst as f64 > best as f64 * 1.10 {
        assert!(
            t_ma < worst,
            "adaptive ({t_ma}) must beat the worst fixed flavor ({worst})"
        );
    }
    // Always: stay within 25% of the best fixed flavor (it usually beats
    // it; noise margin for CI-grade machines).
    assert!(
        (t_ma as f64) < best as f64 * 1.25,
        "adaptive ({t_ma}) too far from best fixed ({best})"
    );
}

#[test]
fn vw_greedy_is_near_oracle_on_the_paper_demo() {
    let tr = fig10_trace(&Fig10Spec::default(), 0xAB);
    let mut p = PolicyKind::VwGreedy(VwGreedyParams::default()).build(3, 1);
    let r = simulate_instance(&tr, p.as_mut());
    assert!(r.ratio_to_opt() < 1.1, "ratio {}", r.ratio_to_opt());
}

#[test]
fn exploration_overhead_is_bounded_on_stationary_data() {
    // With one clearly-best flavor and no change, Micro Adaptivity's regret
    // is just the periodic exploration — bounded by the
    // EXPLORE_LENGTH/EXPLORE_PERIOD ratio (§3.2).
    let tr =
        micro_adaptivity::machsim::stationary_trace("s", 64 * 1024, 1024, &[3.0, 9.0, 9.0], 0.1, 3);
    let mut p = PolicyKind::VwGreedy(VwGreedyParams::table5_best()).build(3, 2);
    let r = simulate_instance(&tr, p.as_mut());
    // EXPLORE_LENGTH(2)/EXPLORE_PERIOD(1024) · E[regret] ≈ 0.4%; allow 3%.
    assert!(r.ratio_to_opt() < 1.03, "ratio {}", r.ratio_to_opt());
}

#[test]
fn all_policies_agree_on_results_not_costs() {
    // Replaying different policies over the same trace never changes what
    // would be computed — only the cost paid. (Trivially true by
    // construction; this pins the API contract.)
    let tr = fig10_trace(
        &Fig10Spec {
            calls: 8192,
            ..Fig10Spec::default()
        },
        9,
    );
    for kind in [
        PolicyKind::Fixed(0),
        PolicyKind::VwGreedy(VwGreedyParams::table5_best()),
        PolicyKind::EpsGreedy { eps: 0.05 },
        PolicyKind::Ucb1,
    ] {
        let mut p = kind.build(3, 4);
        let r = simulate_instance(&tr, p.as_mut());
        assert_eq!(r.choices.len(), tr.calls());
        assert!(r.policy_ticks >= tr.opt_ticks());
    }
}
