//! Smoke test for the umbrella crate's public API surface: every
//! re-exported module must resolve, and the primitive dictionary must be
//! buildable and populated.

use micro_adaptivity::core::policy::VwGreedyParams;
use micro_adaptivity::core::{PolicyKind, SplitMix64};
use micro_adaptivity::executor::ExecConfig;
use micro_adaptivity::machsim::ALL_MACHINES;
use micro_adaptivity::primitives::build_dictionary;
use micro_adaptivity::tpch::Params;
use micro_adaptivity::vector::{SelVec, VECTOR_SIZE};

#[test]
fn all_reexported_modules_resolve() {
    // Touch one item per re-exported crate; compiling this test is most of
    // the assertion.
    let _cfg: ExecConfig = ExecConfig::fixed_default();
    let _params: Params = Params::default();
    const { assert!(VECTOR_SIZE > 0) };
    assert_eq!(SelVec::identity(3).len(), 3);
    assert_eq!(ALL_MACHINES.len(), 4);
    let mut policy = PolicyKind::VwGreedy(VwGreedyParams::default()).build(2, 7);
    assert!(policy.choose() < 2);
    let _rng = SplitMix64::new(1);
}

#[test]
fn build_dictionary_returns_nonempty_dictionary() {
    let dict = build_dictionary();
    let signatures: Vec<&str> = dict.signatures().collect();
    assert!(
        !signatures.is_empty(),
        "primitive dictionary must not be empty"
    );
    // The paper's headline primitive families must all be registered.
    for family in ["sel_", "map_", "hash", "aggr_"] {
        assert!(
            signatures.iter().any(|s| s.contains(family)),
            "no {family}* signature registered; got {} signatures",
            signatures.len()
        );
    }
    // Adaptivity requires actual flavor alternatives: at least one
    // signature must carry more than one flavor.
    let multi = signatures
        .iter()
        .filter(|s| dict.flavor_names(s).is_some_and(|n| n.len() > 1))
        .count();
    assert!(multi > 0, "no signature has more than one flavor");
}
